"""The service wire protocol: versioned JSONL frames.

One frame per line, UTF-8 JSON, newline-terminated.  Requests carry a
protocol version ``v``, a client-chosen correlation id ``id`` (echoed
verbatim in the reply, so clients may pipeline and match out-of-order
replies), an ``op`` and the op's arguments::

    {"v": 1, "id": 7, "op": "open", "session": "u1", "seed": 42}
    {"v": 1, "id": 8, "op": "step", "session": "u1", "cell": 17}

Replies are either ``ok`` frames carrying the op's payload or typed
error frames::

    {"v": 1, "id": 8, "ok": true, "op": "step", "t": 1, ...}
    {"v": 1, "id": 9, "ok": false, "error": {"code": "busy", "message": "..."}}

Error codes are a closed vocabulary mapped one-to-one onto the
:mod:`repro.errors` hierarchy (see :data:`ERROR_CODES`), so a client can
re-raise the exact exception type the server caught --
:func:`error_code_for` and :func:`exception_for` are inverses.

Ops
---
``open``
    ``session`` (optional name), ``seed`` (optional int), ``scenario``
    (optional inline :class:`~repro.scenario.ScenarioSpec` JSON object)
    -> the session id, its horizon and (when a scenario was given) the
    scenario digest.  Rejected with ``busy`` at the server's
    open-session cap and with ``scenario`` for specs that are malformed
    or not on the server's allowlist.
``step``
    ``session``, ``cell`` -> one release record (the engine's
    :meth:`~repro.engine.ReleaseRecord.to_json` form).
``peek_budget``
    ``session`` -> the budget the next step would calibrate from.
``finish``
    ``session`` -> the sealed log's summary.
``checkpoint``
    ``session`` -> the session's JSON state (also persisted server-side).
``stats``
    -> server metrics snapshot (see :mod:`repro.service.metrics`).
    Optional ``spans`` (a non-negative int) additionally returns up to
    that many recent trace spans plus the slow-span log under a
    ``"spans"`` key (see :mod:`repro.obs.trace`).
``migrate``
    ``worker`` (a ``tcp://host:port`` address) -> drain that cluster
    worker: its live sessions checkpoint and restore onto the ring's
    remaining workers with no dropped stream (cluster backends only;
    see :meth:`repro.cluster.ClusterBackend.drain_worker`).  Replies
    with the migration summary.
``join``
    ``worker`` -> admit that worker into the cluster at runtime: the
    ring re-forms and exactly the moved arcs live-migrate onto the
    newcomer (cluster backends only; see
    :meth:`repro.cluster.ClusterBackend.join_worker`).  Replies with
    the join summary.
``leave``
    ``worker`` -> remove that worker from the cluster: a live member
    drains first, a dead one is dropped with its stranded sessions
    reported (cluster backends only; see
    :meth:`repro.cluster.ClusterBackend.leave_worker`).  Replies with
    the leave summary.
``cluster_status``
    -> the membership snapshot: per-worker liveness/draining/residency
    rows, the placement ring, and (under a supervisor) recovery
    counters.  Cluster backends only.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from ..errors import (
    CalibrationError,
    FrameTooLargeError,
    MechanismError,
    OverloadedError,
    ProtocolError,
    QuantificationError,
    ReproError,
    ScenarioError,
    ServiceBusyError,
    ServiceError,
    SessionError,
    ShardDownError,
    SolverError,
    ValidationError,
    WorkerDownError,
)

PROTOCOL_VERSION = 1

#: Maximum bytes in one frame; longer lines are a protocol error.
MAX_FRAME_BYTES = 1 << 20

OPS = frozenset(
    {
        "open",
        "step",
        "peek_budget",
        "finish",
        "checkpoint",
        "stats",
        "migrate",
        "join",
        "leave",
        "cluster_status",
    }
)

#: Ops that address one session and therefore require a ``session`` field.
SESSION_OPS = frozenset({"step", "peek_budget", "finish", "checkpoint"})

#: Ops that address one cluster worker and require a ``worker`` field.
WORKER_OPS = frozenset({"migrate", "join", "leave"})

#: code -> exception type; the wire vocabulary of failures.  Order of
#: :data:`_CODES_BY_TYPE` below decides how server-side exceptions map
#: back (most-derived first).
ERROR_CODES: dict[str, type[ReproError]] = {
    "overloaded": OverloadedError,
    "busy": ServiceBusyError,
    "worker_down": WorkerDownError,
    "shard_down": ShardDownError,
    "frame_too_large": FrameTooLargeError,
    "protocol": ProtocolError,
    "session": SessionError,
    "quantification": QuantificationError,
    "calibration": CalibrationError,
    "solver": SolverError,
    "mechanism": MechanismError,
    "scenario": ScenarioError,
    "validation": ValidationError,
    "service": ServiceError,
    "internal": ReproError,
}

_CODES_BY_TYPE: tuple[tuple[type[BaseException], str], ...] = tuple(
    (exc_type, code) for code, exc_type in ERROR_CODES.items()
)


def error_code_for(error: BaseException) -> str:
    """The wire code for an exception (``internal`` for anything else)."""
    for exc_type, code in _CODES_BY_TYPE:
        if isinstance(error, exc_type):
            return code
    return "internal"


def exception_for(
    code: str, message: str, retry_after_ms: int | None = None
) -> ReproError:
    """Rebuild the server-side exception from an error frame (client side)."""
    if code == "overloaded":
        return OverloadedError(message, retry_after_ms=retry_after_ms)
    return ERROR_CODES.get(code, ReproError)(message)


@dataclass(frozen=True)
class Request:
    """One parsed, validated request frame."""

    op: str
    request_id: object = None
    session: str | None = None
    cell: int | None = None
    seed: int | None = None
    scenario: dict | None = None
    worker: str | None = None
    deadline_ms: int | None = None
    extra: dict = field(default_factory=dict)

    def to_frame(self) -> bytes:
        """Encode back to wire form (used by the clients)."""
        frame: dict = {"v": PROTOCOL_VERSION, "id": self.request_id, "op": self.op}
        if self.session is not None:
            frame["session"] = self.session
        if self.cell is not None:
            frame["cell"] = self.cell
        if self.seed is not None:
            frame["seed"] = self.seed
        if self.scenario is not None:
            frame["scenario"] = self.scenario
        if self.worker is not None:
            frame["worker"] = self.worker
        if self.deadline_ms is not None:
            frame["deadline_ms"] = self.deadline_ms
        frame.update(self.extra)
        return encode_frame(frame)


def encode_frame(payload: dict) -> bytes:
    """One JSON object as a newline-terminated wire frame."""
    return json.dumps(payload, separators=(",", ":")).encode() + b"\n"


def decode_frame(line: bytes | str) -> dict:
    """Parse one wire line into a dict, raising :class:`ProtocolError`."""
    if isinstance(line, bytes):
        if len(line) > MAX_FRAME_BYTES:
            raise ProtocolError(
                f"frame of {len(line)} bytes exceeds the {MAX_FRAME_BYTES} limit"
            )
        try:
            line = line.decode()
        except UnicodeDecodeError as error:
            raise ProtocolError(f"frame is not UTF-8: {error}") from None
    try:
        frame = json.loads(line)
    except json.JSONDecodeError as error:
        raise ProtocolError(f"frame is not valid JSON: {error}") from None
    if not isinstance(frame, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(frame).__name__}"
        )
    return frame


def parse_request(line: bytes | str) -> Request:
    """Decode and validate one request frame.

    Raises :class:`ProtocolError` for malformed frames.  The offending
    frame's ``id`` (when present) is attached as ``error.request_id`` so
    the server can still correlate the error reply.
    """
    frame = decode_frame(line)
    request_id = frame.get("id")
    try:
        version = frame.get("v")
        if version != PROTOCOL_VERSION:
            raise ProtocolError(
                f"unsupported protocol version {version!r}; "
                f"this server speaks v{PROTOCOL_VERSION}"
            )
        op = frame.get("op")
        if op not in OPS:
            raise ProtocolError(
                f"unknown op {op!r}; expected one of {sorted(OPS)}"
            )
        session = frame.get("session")
        if session is not None:
            session = str(session)
            if not session:
                raise ProtocolError("session id must be a non-empty string")
        elif op in SESSION_OPS:
            raise ProtocolError(f"op {op!r} requires a 'session' field")
        cell = frame.get("cell")
        if op == "step":
            if not isinstance(cell, int) or isinstance(cell, bool):
                raise ProtocolError(
                    f"op 'step' requires an integer 'cell', got {cell!r}"
                )
        else:
            cell = None
        seed = frame.get("seed")
        if seed is not None:
            if op != "open":
                raise ProtocolError(f"'seed' is only valid for op 'open', not {op!r}")
            if not isinstance(seed, int) or isinstance(seed, bool):
                raise ProtocolError(f"'seed' must be an integer, got {seed!r}")
        scenario = frame.get("scenario")
        if scenario is not None:
            if op != "open":
                raise ProtocolError(
                    f"'scenario' is only valid for op 'open', not {op!r}"
                )
            if not isinstance(scenario, dict):
                raise ProtocolError(
                    f"'scenario' must be a JSON object, got "
                    f"{type(scenario).__name__}"
                )
        worker = frame.get("worker")
        if worker is not None:
            if op not in WORKER_OPS:
                raise ProtocolError(
                    f"'worker' is only valid for ops "
                    f"{sorted(WORKER_OPS)}, not {op!r}"
                )
            worker = str(worker)
            if not worker:
                raise ProtocolError("'worker' must be a non-empty address")
        elif op in WORKER_OPS:
            raise ProtocolError(f"op {op!r} requires a 'worker' field")
        deadline_ms = frame.get("deadline_ms")
        if deadline_ms is not None:
            if (
                not isinstance(deadline_ms, int)
                or isinstance(deadline_ms, bool)
                or deadline_ms <= 0
            ):
                raise ProtocolError(
                    f"'deadline_ms' must be a positive integer, got {deadline_ms!r}"
                )
        extra = {}
        spans = frame.get("spans")
        if spans is not None:
            if op != "stats":
                raise ProtocolError(
                    f"'spans' is only valid for op 'stats', not {op!r}"
                )
            if not isinstance(spans, int) or isinstance(spans, bool) or spans < 0:
                raise ProtocolError(
                    f"'spans' must be a non-negative integer, got {spans!r}"
                )
            extra["spans"] = spans
    except ProtocolError as error:
        error.request_id = request_id  # type: ignore[attr-defined]
        raise
    return Request(
        op=op,
        request_id=request_id,
        session=session,
        cell=cell,
        seed=seed,
        scenario=scenario,
        worker=worker,
        deadline_ms=deadline_ms,
        extra=extra,
    )


def ok_frame(request_id: object, op: str, payload: dict) -> bytes:
    """A success reply carrying ``payload``."""
    frame = {"v": PROTOCOL_VERSION, "id": request_id, "ok": True, "op": op}
    frame.update(payload)
    return encode_frame(frame)


def error_frame(request_id: object, error: BaseException) -> bytes:
    """A typed error reply for ``error``."""
    body: dict = {"code": error_code_for(error), "message": str(error)}
    retry_after_ms = getattr(error, "retry_after_ms", None)
    if retry_after_ms is not None:
        body["retry_after_ms"] = int(retry_after_ms)
    return encode_frame(
        {
            "v": PROTOCOL_VERSION,
            "id": request_id,
            "ok": False,
            "error": body,
        }
    )


def parse_reply(line: bytes | str) -> dict:
    """Decode a reply frame (client side); raises on error replies.

    Returns the payload dict of ``ok`` frames; re-raises the server's
    typed exception for error frames (with the frame's ``id`` attached
    as ``error.request_id`` so pipelining clients can still match it).
    """
    frame = decode_frame(line)
    if frame.get("ok"):
        return frame
    error = frame.get("error")
    if not isinstance(error, dict):
        raise ProtocolError(f"reply is neither ok nor a typed error: {frame!r}")
    retry_after_ms = error.get("retry_after_ms")
    if not isinstance(retry_after_ms, int) or isinstance(retry_after_ms, bool):
        retry_after_ms = None
    exception = exception_for(
        str(error.get("code")), str(error.get("message")), retry_after_ms
    )
    exception.request_id = frame.get("id")  # type: ignore[attr-defined]
    raise exception
