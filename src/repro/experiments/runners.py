"""Experiment runners: one per paper figure/table family.

* :func:`run_budget_over_time` -- Figs. 7, 8, 9, 10 (budget at each
  timestamp for PriSTE with geo-indistinguishability or delta-location
  set privacy).
* :func:`run_utility_sweep` -- Figs. 11, 12, 13 and the appendix PATTERN
  plots (average budget and Euclidean error against epsilon for families
  of mechanisms / deltas / sigmas).
* :func:`run_runtime_scaling` -- Fig. 14 (naive exponential baseline vs
  the two-world method against event length and width).
* :func:`run_conservative_release_table` -- Table III (the conservative-
  release threshold trade-off).

All runners take explicit run counts and RNG seeds; the paper aggregates
over 100 runs, benchmarks default lower to keep wall-clock sane (the run
count is always recorded in the result).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from .._validation import resolve_rng
from ..core.baseline import pattern_joint_naive, pattern_prior_naive
from ..core.joint import EventQuantifier, joint_probability
from ..core.priste import PriSTE, PriSTEConfig, PriSTEDeltaLocationSet, ReleaseLog
from ..core.qp import SolverOptions
from ..engine import VerdictCache
from ..core.two_world import TwoWorldModel
from ..errors import ValidationError
from ..events.events import PatternEvent, SpatiotemporalEvent
from ..lppm.registry import canonical_mechanism_name
from ..geo.regions import Region
from ..lppm.planar_laplace import PlanarLaplaceMechanism
from ..metrics.utility import aggregate_logs, average_budget_over_time
from .report import format_series_table, format_table
from .scenarios import GeolifeScenario, SyntheticScenario


# ----------------------------------------------------------------------
# Figs. 7-10: budget over time
# ----------------------------------------------------------------------
@dataclass
class BudgetOverTimeResult:
    """Per-timestamp budget curves for a family of settings."""

    label: str
    timestamps: np.ndarray
    curves: dict[str, np.ndarray] = field(default_factory=dict)
    deviations: dict[str, np.ndarray] = field(default_factory=dict)
    n_runs: int = 0

    def to_text(self) -> str:
        """Render the curves as the textual analogue of the figure."""
        return format_series_table(
            "t",
            [int(t) for t in self.timestamps],
            {name: list(np.round(curve, 4)) for name, curve in self.curves.items()},
            title=self.label,
        )


def _build_priste(
    scenario,
    events,
    alpha: float,
    config: PriSTEConfig,
    mechanism: str,
    delta: float,
):
    # Resolve through the LPPM registry (aliases included) so a mistyped
    # mechanism fails with the typed UnknownMechanismError and the list
    # of registered names, not an ad-hoc string comparison.
    name = canonical_mechanism_name(mechanism)
    if name == "planar_laplace":
        lppm = PlanarLaplaceMechanism(scenario.grid, alpha)
        return PriSTE(scenario.chain, events, lppm, config, scenario.horizon)
    if name == "delta_location_set":
        return PriSTEDeltaLocationSet(
            scenario.chain,
            events,
            scenario.grid,
            alpha,
            delta,
            scenario.initial,
            config,
            scenario.horizon,
        )
    raise ValidationError(
        f"experiment runners support 'geoind' or 'delta' mechanisms, got {mechanism!r}"
    )


def run_budget_over_time(
    scenario: SyntheticScenario | GeolifeScenario,
    events: SpatiotemporalEvent | Sequence[SpatiotemporalEvent],
    settings: Sequence[tuple[str, float, float]],
    n_runs: int = 20,
    mechanism: str = "geoind",
    delta: float = 0.2,
    prior_mode: str = "fixed",
    seed: int = 0,
    label: str = "budget over time",
) -> BudgetOverTimeResult:
    """Figs. 7-10: per-timestamp average budget for several settings.

    Parameters
    ----------
    scenario:
        Synthetic or Geolife scenario.
    events:
        The protected event(s); a list protects all simultaneously
        (Fig. 9).
    settings:
        ``(curve_name, alpha, epsilon)`` triples; each becomes one curve
        (e.g. fixed alpha=0.2 with epsilon in {0.1, 0.5, 1} for Fig. 7a).
    n_runs:
        Trajectories per curve (paper: 100).
    mechanism:
        ``"geoind"`` (Algorithm 2, Figs. 7-9) or ``"delta"`` (Algorithm 3,
        Fig. 10).
    prior_mode:
        Forwarded to :class:`PriSTEConfig` (see its docstring).
    """
    result = BudgetOverTimeResult(
        label=label,
        timestamps=np.arange(1, scenario.horizon + 1),
        n_runs=n_runs,
    )
    rng = resolve_rng(seed)
    trajectories = [scenario.sample_trajectory(rng) for _ in range(n_runs)]
    for name, alpha, epsilon in settings:
        config = PriSTEConfig(
            epsilon=epsilon,
            prior_mode=prior_mode,
            prior=scenario.initial if prior_mode == "fixed" else None,
        )
        priste = _build_priste(scenario, events, alpha, config, mechanism, delta)
        # One verdict cache per curve: all runs share chain/event/epsilon
        # and unlimited solver options, so hits are exact (not merely
        # conservative) and repeated early-timestamp checks are free.
        cache = VerdictCache()
        logs = [priste.run(trajectory, rng, cache=cache) for trajectory in trajectories]
        means, stds = average_budget_over_time(logs)
        result.curves[name] = means
        result.deviations[name] = stds
    return result


# ----------------------------------------------------------------------
# Figs. 11-13 (+ appendix): utility sweeps
# ----------------------------------------------------------------------
@dataclass
class UtilitySweepResult:
    """Average budget and Euclidean error over an epsilon sweep."""

    label: str
    epsilons: tuple[float, ...]
    budget_series: dict[str, list[float]] = field(default_factory=dict)
    error_series: dict[str, list[float]] = field(default_factory=dict)
    n_runs: int = 0

    def to_text(self) -> str:
        budgets = format_series_table(
            "eps",
            list(self.epsilons),
            self.budget_series,
            title=f"{self.label} -- ave. PLM budget (higher = better)",
        )
        errors = format_series_table(
            "eps",
            list(self.epsilons),
            self.error_series,
            title=f"{self.label} -- ave. Euclidean dist. km (lower = better)",
        )
        return budgets + "\n\n" + errors


def run_utility_sweep(
    scenario_for,
    events_for,
    curve_settings: Sequence[tuple[str, dict]],
    epsilons: Sequence[float],
    n_runs: int = 10,
    prior_mode: str = "fixed",
    seed: int = 0,
    label: str = "utility sweep",
) -> UtilitySweepResult:
    """Figs. 11-13: sweep epsilon for a family of curves.

    ``scenario_for(params)`` and ``events_for(scenario, params)`` build
    the setting per curve, where ``params`` is the dict from
    ``curve_settings``; recognized params:

    * ``alpha`` -- the PLM budget (required),
    * ``mechanism`` -- "geoind" (default) or "delta",
    * ``delta`` -- delta-location set parameter,
    * anything else the callbacks want (e.g. ``sigma`` for Fig. 13).
    """
    result = UtilitySweepResult(
        label=label, epsilons=tuple(float(e) for e in epsilons), n_runs=n_runs
    )
    for name, params in curve_settings:
        scenario = scenario_for(params)
        events = events_for(scenario, params)
        rng = resolve_rng(seed)
        trajectories = [scenario.sample_trajectory(rng) for _ in range(n_runs)]
        budgets: list[float] = []
        errors: list[float] = []
        for epsilon in result.epsilons:
            config = PriSTEConfig(
                epsilon=epsilon,
                prior_mode=prior_mode,
                prior=scenario.initial if prior_mode == "fixed" else None,
            )
            priste = _build_priste(
                scenario,
                events,
                params["alpha"],
                config,
                params.get("mechanism", "geoind"),
                params.get("delta", 0.2),
            )
            cache = VerdictCache()  # per-setting: exact hits, shared across runs
            logs = [priste.run(trajectory, rng, cache=cache) for trajectory in trajectories]
            aggregate = aggregate_logs(logs, scenario.grid, trajectories)
            budgets.append(round(aggregate.mean_budget, 4))
            errors.append(round(aggregate.mean_error_km, 4))
        result.budget_series[name] = budgets
        result.error_series[name] = errors
    return result


# ----------------------------------------------------------------------
# Fig. 14: runtime scaling
# ----------------------------------------------------------------------
@dataclass
class RuntimeScalingResult:
    """Baseline vs two-world runtimes against an event-size axis."""

    label: str
    axis_name: str
    axis_values: tuple[int, ...]
    baseline_s: list[float] = field(default_factory=list)
    priste_s: list[float] = field(default_factory=list)

    def to_text(self) -> str:
        return format_series_table(
            self.axis_name,
            list(self.axis_values),
            {
                "baseline (Pattern) s": [round(v, 5) for v in self.baseline_s],
                "PriSTE (Pattern) s": [round(v, 5) for v in self.priste_s],
            },
            title=self.label,
        )

    def speedup_at_max(self) -> float:
        """Baseline/PriSTE runtime ratio at the largest axis value."""
        if not self.baseline_s or self.priste_s[-1] <= 0:
            return float("nan")
        return self.baseline_s[-1] / self.priste_s[-1]


def _random_pattern(
    n_cells: int, length: int, width: int, start: int, rng
) -> PatternEvent:
    regions = []
    for _ in range(length):
        cells = rng.choice(n_cells, size=width, replace=False)
        regions.append(Region.from_cells(n_cells, (int(c) for c in cells)))
    return PatternEvent(regions, start=start)


def _time_pattern_methods(
    scenario, pattern: PatternEvent, rng, run_baseline: bool = True
) -> tuple[float, float]:
    """(baseline_seconds, priste_seconds) for prior+joint of one pattern.

    ``run_baseline=False`` skips the exponential enumeration and returns
    ``nan`` for it.
    """
    pi = scenario.initial
    chain = scenario.chain
    m = scenario.grid.n_cells
    # A released column per window timestamp (any valid emission works --
    # runtime is what is measured).
    lppm = PlanarLaplaceMechanism(scenario.grid, 1.0)
    matrix = lppm.emission_matrix()
    outputs = [int(rng.integers(m)) for _ in range(pattern.length)]
    window_cols = np.stack([matrix[:, o] for o in outputs])

    baseline_s = float("nan")
    if run_baseline:
        t0 = time.perf_counter()
        pattern_prior_naive(chain, pattern, pi)
        pattern_joint_naive(chain, pattern, pi, window_cols)
        baseline_s = time.perf_counter() - t0

    horizon = pattern.end
    full_cols = np.ones((horizon, m))
    full_cols[pattern.start - 1 :] = window_cols
    t0 = time.perf_counter()
    model = TwoWorldModel(chain, pattern, horizon)
    model.prior_probability(pi)
    joint_probability(model, pi, full_cols)
    priste_s = time.perf_counter() - t0
    return baseline_s, priste_s


def run_runtime_scaling(
    scenario: SyntheticScenario,
    axis: str,
    values: Sequence[int],
    fixed: int = 5,
    n_events: int = 5,
    start: int = 2,
    seed: int = 0,
    max_baseline_s: float = 30.0,
) -> RuntimeScalingResult:
    """Fig. 14: runtime vs event length (width fixed) or width (length fixed).

    ``n_events`` random PATTERN events are timed per axis value and the
    mean is reported.  The exponential baseline is skipped (recorded as
    ``nan``) once a single evaluation exceeds ``max_baseline_s`` --
    mirroring the paper's log-scale plot cut-off without burning hours.
    """
    if axis not in ("length", "width"):
        raise ValidationError(f"axis must be 'length' or 'width', got {axis!r}")
    rng = resolve_rng(seed)
    result = RuntimeScalingResult(
        label=(
            f"Fig. 14 runtime vs event {axis} "
            f"({'width' if axis == 'length' else 'length'} = {fixed})"
        ),
        axis_name=f"event {axis}",
        axis_values=tuple(int(v) for v in values),
    )
    baseline_alive = True
    for value in result.axis_values:
        length = value if axis == "length" else fixed
        width = value if axis == "width" else fixed
        baseline_times: list[float] = []
        priste_times: list[float] = []
        for _ in range(n_events):
            pattern = _random_pattern(
                scenario.grid.n_cells, length, width, start, rng
            )
            baseline_s, priste_s = _time_pattern_methods(
                scenario, pattern, rng, run_baseline=baseline_alive
            )
            if baseline_alive:
                baseline_times.append(baseline_s)
            priste_times.append(priste_s)
        if baseline_times:
            mean_baseline = float(np.mean(baseline_times))
            result.baseline_s.append(mean_baseline)
            if mean_baseline > max_baseline_s / max(1, n_events):
                baseline_alive = False
        else:
            result.baseline_s.append(float("nan"))
        result.priste_s.append(float(np.mean(priste_times)))
    return result


# ----------------------------------------------------------------------
# Table III: conservative release
# ----------------------------------------------------------------------
def run_conservative_release_table(
    scenario: SyntheticScenario,
    event: SpatiotemporalEvent,
    thresholds: Sequence[float | None],
    alpha: float = 0.5,
    epsilon: float = 0.5,
    n_runs: int = 5,
    work_unit: int = 40_000,
    seed: int = 0,
) -> tuple[str, list[dict]]:
    """Table III: the conservative-release threshold trade-off.

    Thresholds are interpreted as the paper's per-check time budget in
    seconds; because our exact solver is far faster than CPLEX, each
    threshold is additionally mapped to a per-check *work limit*
    (``threshold * work_unit`` edge evaluations) so the conservative-
    release regime is actually exercised.  ``None`` means unlimited
    (the paper's "none" row).

    Returns the rendered table plus the raw row dicts.
    """
    rng = resolve_rng(seed)
    trajectories = [scenario.sample_trajectory(rng) for _ in range(n_runs)]
    rows = []
    for threshold in thresholds:
        if threshold is None:
            solver = SolverOptions(constraint="simplex")
            threshold_label = "none"
        else:
            solver = SolverOptions(
                constraint="simplex",
                time_limit_s=float(threshold),
                work_limit=max(1, int(threshold * work_unit)),
            )
            threshold_label = str(threshold)
        config = PriSTEConfig(epsilon=epsilon, solver=solver)
        lppm = PlanarLaplaceMechanism(scenario.grid, alpha)
        priste = PriSTE(scenario.chain, event, lppm, config, scenario.horizon)
        logs: list[ReleaseLog] = [
            priste.run(trajectory, rng) for trajectory in trajectories
        ]
        aggregate = aggregate_logs(logs, scenario.grid, trajectories)
        rows.append(
            {
                "threshold": threshold_label,
                "ave. total runtime (s)": round(aggregate.mean_runtime_s, 4),
                "# conservative release": round(aggregate.mean_conservative, 2),
                "ave. privacy budget": round(aggregate.mean_budget, 4),
                "ave. Euclidean dist. (km)": round(aggregate.mean_error_km, 3),
            }
        )
    headers = list(rows[0].keys())
    table = format_table(
        headers,
        [[row[h] for h in headers] for row in rows],
        title="Table III: runtime vs conservative-release threshold",
    )
    return table, rows
