"""ASCII reporting for experiment results.

The harness prints the same rows/series the paper reports, so a run's
output can be compared side-by-side with the published tables and
figures.  Everything returns strings (callers decide where they go).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """A plain monospaced table with one header row."""
    rendered_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(str(h)) for h in headers]
    for row in rendered_rows:
        for idx, cell in enumerate(row):
            widths[idx] = max(widths[idx], len(cell))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in rendered_rows:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_series_table(
    x_label: str,
    x_values: Sequence[object],
    series: dict[str, Sequence[float]],
    title: str = "",
) -> str:
    """A table with one x column and one column per named series.

    This is the textual analogue of the paper's line plots: each figure
    panel becomes one table with the same x axis and one line per curve.
    """
    headers = [x_label] + list(series.keys())
    rows = []
    for idx, x in enumerate(x_values):
        row: list[object] = [x]
        for values in series.values():
            row.append(values[idx] if idx < len(values) else "")
        rows.append(row)
    return format_table(headers, rows, title=title)


def sparkline(values: Sequence[float], width: int = 50) -> str:
    """A coarse unicode sparkline, for eyeballing per-timestamp budgets."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return ""
    if arr.size > width:
        # Downsample by averaging consecutive chunks.
        chunks = np.array_split(arr, width)
        arr = np.array([chunk.mean() for chunk in chunks])
    lo, hi = float(arr.min()), float(arr.max())
    ticks = "▁▂▃▄▅▆▇█"
    if hi <= lo:
        return ticks[0] * arr.size
    scaled = (arr - lo) / (hi - lo)
    return "".join(ticks[min(len(ticks) - 1, int(s * len(ticks)))] for s in scaled)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 1e-3:
            return f"{cell:.3e}"
        return f"{cell:.4f}"
    return str(cell)
