"""Scenario builders for the paper's two evaluation settings.

Section V-A: "a map with 20*20 cells is generated.  Then, the transition
probability from one cell to another is proportional to the two-
dimensional Gaussian distribution with scale parameter sigma. ...  we
produced trajectories with 50 timestamps"; and the Geolife dataset, whose
"entire trajectory is used to train the transition matrix M".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import resolve_rng
from ..datasets.discretize import discretize_trace, grid_for_traces
from ..datasets.geolife import GeolifeSimulator, load_geolife_directory
from ..errors import DatasetError
from ..geo.grid import GridMap
from ..geo.regions import Region
from ..markov.simulate import sample_trajectory
from ..markov.training import fit_initial_distribution, fit_transition_matrix
from ..markov.transition import TransitionMatrix
from ..scenario import ChainSpec, EventSpec, GridSpec, ScenarioSpec


@dataclass(frozen=True)
class SyntheticScenario:
    """The synthetic evaluation setting (20x20 Gaussian-kernel map)."""

    grid: GridMap
    chain: TransitionMatrix
    initial: np.ndarray
    horizon: int
    sigma: float

    def presence_event(self, first: int, last: int, start: int, end: int):
        """PRESENCE over the paper's ``S = {first+1 : last+1}`` cell range."""
        from ..events.events import PresenceEvent

        region = Region.from_range(self.grid.n_cells, first, last)
        return PresenceEvent(region, start=start, end=end)

    def pattern_event(self, cell_ranges, start: int):
        """PATTERN over a sequence of inclusive cell ranges."""
        from ..events.events import PatternEvent

        regions = [
            Region.from_range(self.grid.n_cells, lo, hi) for lo, hi in cell_ranges
        ]
        return PatternEvent(regions, start=start)

    def sample_trajectory(self, rng=None) -> list[int]:
        """One true trajectory of ``horizon`` steps."""
        return sample_trajectory(self.chain, self.horizon, initial=self.initial, rng=rng)

    def to_spec(
        self, events, mechanism, epsilon: float, **overrides
    ) -> ScenarioSpec:
        """This setting as a portable :class:`~repro.scenario.ScenarioSpec`.

        ``events`` is one :class:`~repro.scenario.EventSpec` or a
        sequence of them, ``mechanism`` a
        :class:`~repro.scenario.MechanismSpec`; remaining spec fields
        (``calibration``, ``prior_mode``, ...) pass through as keyword
        overrides.  The spec compiles to bit-identical grid/chain/initial
        objects, so a session built from it reproduces one built from
        this scenario directly.
        """
        if isinstance(events, EventSpec):
            events = (events,)
        return ScenarioSpec(
            grid=GridSpec(
                rows=self.grid.n_rows,
                cols=self.grid.n_cols,
                cell_size_km=self.grid.cell_size_km,
            ),
            chain=ChainSpec.gaussian(sigma=self.sigma),
            events=tuple(events),
            mechanism=mechanism,
            epsilon=epsilon,
            horizon=overrides.pop("horizon", self.horizon),
            **overrides,
        )


def synthetic_scenario(
    n_rows: int = 20,
    n_cols: int = 20,
    sigma: float = 1.0,
    horizon: int = 50,
    cell_size_km: float = 1.0,
) -> SyntheticScenario:
    """Build the paper's synthetic setting.

    ``sigma`` is the mobility-pattern strength knob of Fig. 13 (smaller =
    more significant pattern).  The initial distribution is uniform.

    Thin wrapper over the declarative layer: the grid and chain are
    compiled from :class:`~repro.scenario.GridSpec` /
    :class:`~repro.scenario.ChainSpec`, the same primitives a
    ``--scenario FILE`` spec goes through, so both paths produce
    bit-identical models.
    """
    grid = GridSpec(rows=n_rows, cols=n_cols, cell_size_km=cell_size_km).build()
    chain = ChainSpec.gaussian(sigma=sigma).build(grid)
    initial = np.full(grid.n_cells, 1.0 / grid.n_cells)
    return SyntheticScenario(
        grid=grid, chain=chain, initial=initial, horizon=horizon, sigma=sigma
    )


@dataclass(frozen=True)
class GeolifeScenario:
    """The Geolife evaluation setting: a chain trained on GPS traces."""

    grid: GridMap
    chain: TransitionMatrix
    initial: np.ndarray
    horizon: int
    trajectories: tuple[tuple[int, ...], ...]
    source: str

    def presence_event(self, first: int, last: int, start: int, end: int):
        """PRESENCE over an inclusive cell range (paper's ``S={a:b}``)."""
        from ..events.events import PresenceEvent

        region = Region.from_range(self.grid.n_cells, first, last)
        return PresenceEvent(region, start=start, end=end)

    def sample_trajectory(self, rng=None) -> list[int]:
        """A true trajectory: a training trace segment, or a chain sample.

        Using real trace segments keeps the evaluation honest (the chain
        is the *adversary's* model, the user walks the data); when no
        segment is long enough the chain itself is sampled.
        """
        generator = resolve_rng(rng)
        usable = [t for t in self.trajectories if len(t) >= self.horizon]
        if usable:
            trace = usable[int(generator.integers(len(usable)))]
            offset = int(generator.integers(len(trace) - self.horizon + 1))
            return list(trace[offset : offset + self.horizon])
        return sample_trajectory(
            self.chain, self.horizon, initial=self.initial, rng=generator
        )

    def to_spec(
        self, events, mechanism, epsilon: float, **overrides
    ) -> ScenarioSpec:
        """This trained setting as a portable spec.

        The fitted chain travels as an explicit matrix and the fitted
        initial distribution as an explicit vector, so the spec is
        self-contained: a server (or shard worker) compiles the same
        models without access to the GPS traces.  The grid's km origin
        is dropped -- distances (all the engine uses) are translation
        invariant.
        """
        if isinstance(events, EventSpec):
            events = (events,)
        return ScenarioSpec(
            grid=GridSpec(
                rows=self.grid.n_rows,
                cols=self.grid.n_cols,
                cell_size_km=self.grid.cell_size_km,
            ),
            chain=ChainSpec.explicit(self.chain.matrix),
            initial=tuple(float(v) for v in self.initial),
            events=tuple(events),
            mechanism=mechanism,
            epsilon=epsilon,
            horizon=overrides.pop("horizon", self.horizon),
            **overrides,
        )


def geolife_scenario(
    root: str | None = None,
    n_users: int = 8,
    n_days: int = 4,
    cell_size_km: float = 1.0,
    interval_s: float = 300.0,
    horizon: int = 50,
    smoothing: float = 0.05,
    max_cells: int = 900,
    rng=None,
) -> GeolifeScenario:
    """Build the Geolife setting, from real data or the simulator.

    Parameters
    ----------
    root:
        Path to a real Geolife dataset root; ``None`` (the default in this
        offline reproduction) uses :class:`GeolifeSimulator` (DESIGN.md
        §4 documents the substitution).
    n_users, n_days:
        Simulator scale (ignored for real data).
    cell_size_km, interval_s:
        Discretization grid and resampling interval.
    smoothing:
        Dirichlet pseudo-count for the trained chain; keeps it ergodic.
    """
    generator = resolve_rng(rng)
    if root is not None:
        traces = load_geolife_directory(root, max_users=n_users)
        source = f"geolife:{root}"
    else:
        simulator = GeolifeSimulator(interval_s=interval_s)
        traces = simulator.simulate_users(n_users, n_days=n_days, rng=generator)
        source = "geolife-simulator"
    grid, reference = grid_for_traces(
        traces, cell_size_km=cell_size_km, max_cells=max_cells
    )
    cell_trajectories = [
        tuple(discretize_trace(trace, grid, reference, interval_s=interval_s))
        for trace in traces
    ]
    cell_trajectories = [t for t in cell_trajectories if len(t) >= 2]
    if not cell_trajectories:
        raise DatasetError("no usable discretized trajectories")
    chain = fit_transition_matrix(
        cell_trajectories, grid.n_cells, smoothing=smoothing
    )
    initial = fit_initial_distribution(
        cell_trajectories, grid.n_cells, smoothing=smoothing
    )
    return GeolifeScenario(
        grid=grid,
        chain=chain,
        initial=initial,
        horizon=horizon,
        trajectories=tuple(cell_trajectories),
        source=source,
    )
