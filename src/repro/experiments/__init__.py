"""Experiment harness reproducing the paper's evaluation (Section V).

One runner per figure/table; each returns structured results and can
print the same rows/series the paper reports.  The benchmarks in
``benchmarks/`` are thin wrappers around these runners; the CLI
(``python -m repro.cli``) exposes them interactively.

Scenario builders:

* :func:`synthetic_scenario` -- the paper's 20x20 Gaussian-kernel map
  with 50-step trajectories.
* :func:`geolife_scenario` -- Markov model trained on Geolife-like traces
  (real Geolife if a local copy is supplied, simulator otherwise).
"""

from .report import format_series_table, format_table
from .runners import (
    BudgetOverTimeResult,
    RuntimeScalingResult,
    UtilitySweepResult,
    run_budget_over_time,
    run_conservative_release_table,
    run_runtime_scaling,
    run_utility_sweep,
)
from .scenarios import (
    GeolifeScenario,
    SyntheticScenario,
    geolife_scenario,
    synthetic_scenario,
)

__all__ = [
    "SyntheticScenario",
    "GeolifeScenario",
    "synthetic_scenario",
    "geolife_scenario",
    "run_budget_over_time",
    "run_utility_sweep",
    "run_runtime_scaling",
    "run_conservative_release_table",
    "BudgetOverTimeResult",
    "UtilitySweepResult",
    "RuntimeScalingResult",
    "format_table",
    "format_series_table",
]
