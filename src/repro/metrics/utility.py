"""Aggregating release logs into the paper's utility metrics."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.priste import ReleaseLog
from ..errors import ValidationError
from ..geo.grid import GridMap


def mean_and_std(values) -> tuple[float, float]:
    """Mean and (population) standard deviation of a sequence."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValidationError("mean_and_std needs at least one value")
    return float(arr.mean()), float(arr.std())


def average_budget_over_time(logs: Sequence[ReleaseLog]) -> tuple[np.ndarray, np.ndarray]:
    """Per-timestamp mean and std of released budgets across runs.

    This is the quantity plotted on the y-axis of Figs. 7-10 ("ave.
    budgets of noisy trajectories").
    """
    if not logs:
        raise ValidationError("need at least one release log")
    lengths = {len(log) for log in logs}
    if len(lengths) != 1:
        raise ValidationError(f"logs have mixed lengths: {sorted(lengths)}")
    stacked = np.stack([log.budgets for log in logs])
    return stacked.mean(axis=0), stacked.std(axis=0)


@dataclass(frozen=True)
class RunAggregate:
    """Aggregate utility of repeated PriSTE runs on the same setting.

    Attributes
    ----------
    mean_budget, std_budget:
        Budget averaged over timestamps then over runs (Figs. 11-13 left).
    mean_error_km, std_error_km:
        Euclidean error in km averaged likewise (Figs. 11-13 right).
    mean_conservative:
        Average count of conservative-release timestamps (Table III).
    mean_runtime_s:
        Average wall-clock per run (Table III).
    n_runs:
        Number of aggregated runs.
    """

    mean_budget: float
    std_budget: float
    mean_error_km: float
    std_error_km: float
    mean_conservative: float
    mean_runtime_s: float
    n_runs: int


def aggregate_logs(
    logs: Sequence[ReleaseLog],
    grid: GridMap,
    true_trajectories: Sequence[Sequence[int]],
) -> RunAggregate:
    """Collapse release logs + ground truth into a :class:`RunAggregate`."""
    if not logs:
        raise ValidationError("need at least one release log")
    if len(logs) != len(true_trajectories):
        raise ValidationError(
            f"{len(logs)} logs but {len(true_trajectories)} true trajectories"
        )
    budgets = [log.average_budget for log in logs]
    errors = [
        log.euclidean_error_km(grid, truth)
        for log, truth in zip(logs, true_trajectories)
    ]
    mean_budget, std_budget = mean_and_std(budgets)
    mean_error, std_error = mean_and_std(errors)
    return RunAggregate(
        mean_budget=mean_budget,
        std_budget=std_budget,
        mean_error_km=mean_error,
        std_error_km=std_error,
        mean_conservative=float(np.mean([log.n_conservative for log in logs])),
        mean_runtime_s=float(np.mean([log.total_elapsed_s for log in logs])),
        n_runs=len(logs),
    )
