"""Adversary-side privacy metrics.

Complements the paper's utility metrics with the attacker-centric view
used throughout the location-privacy literature (Shokri et al.'s
"Quantifying Location Privacy", cited as the paper's [24]): expected
inference error, posterior entropy, and the event-level advantage that
epsilon-spatiotemporal event privacy bounds.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_float_array
from ..errors import ValidationError
from ..geo.grid import GridMap


def expected_inference_error_km(
    posteriors, true_cells, grid: GridMap
) -> float:
    """Adversary's expected localization error in km.

    ``sum_t sum_c posterior_t[c] * d(c, u_t) / T`` -- the expected
    distance between the adversary's belief and the truth, the standard
    "correctness" metric of location privacy.
    """
    arr = as_float_array(posteriors, "posteriors")
    cells = [int(c) for c in true_cells]
    if arr.ndim != 2 or arr.shape[0] != len(cells):
        raise ValidationError(
            f"posteriors {arr.shape} do not match {len(cells)} true cells"
        )
    if arr.shape[1] != grid.n_cells:
        raise ValidationError(
            f"posteriors have {arr.shape[1]} columns, grid has {grid.n_cells} cells"
        )
    distances = grid.distance_matrix_km
    total = 0.0
    for t, cell in enumerate(cells):
        total += float(arr[t] @ distances[:, cell])
    return total / len(cells)


def posterior_entropy_bits(posteriors) -> np.ndarray:
    """Shannon entropy (bits) of each per-timestamp posterior.

    High entropy = the adversary remains uncertain (more privacy).
    """
    arr = as_float_array(posteriors, "posteriors")
    if arr.ndim != 2:
        raise ValidationError(f"posteriors must be 2-D, got {arr.shape}")
    with np.errstate(divide="ignore", invalid="ignore"):
        logs = np.where(arr > 0, np.log2(arr), 0.0)
    return -(arr * logs).sum(axis=1)


def top1_accuracy(posteriors, true_cells) -> float:
    """Fraction of timestamps where the MAP cell equals the truth."""
    arr = as_float_array(posteriors, "posteriors")
    cells = [int(c) for c in true_cells]
    if arr.ndim != 2 or arr.shape[0] != len(cells):
        raise ValidationError(
            f"posteriors {arr.shape} do not match {len(cells)} true cells"
        )
    hits = sum(int(np.argmax(arr[t])) == cell for t, cell in enumerate(cells))
    return hits / len(cells)


def event_advantage(prior: float, posterior: float) -> float:
    """The adversary's advantage on the event: |posterior - prior|.

    Definition II.4's guarantee bounds the *odds ratio* by e^epsilon,
    which caps this advantage at
    ``prior * (e^eps - 1) * (1 - prior) / (1 - prior + prior * e^eps)``
    (see :func:`max_event_advantage`).
    """
    for name, value in (("prior", prior), ("posterior", posterior)):
        if not 0.0 <= value <= 1.0:
            raise ValidationError(f"{name} must be in [0, 1], got {value!r}")
    return abs(posterior - prior)


def max_event_advantage(prior: float, epsilon: float) -> float:
    """Largest |posterior - prior| permitted by the epsilon guarantee.

    With prior odds ``o = p / (1-p)``, the posterior odds are bounded in
    ``[o e^-eps, o e^eps]``; converting back gives the advantage cap.
    """
    if not 0.0 < prior < 1.0:
        raise ValidationError(f"prior must be in (0, 1), got {prior!r}")
    if epsilon < 0:
        raise ValidationError(f"epsilon must be >= 0, got {epsilon!r}")
    odds = prior / (1.0 - prior)
    up = odds * np.exp(epsilon)
    down = odds * np.exp(-epsilon)
    upper = up / (1.0 + up)
    lower = down / (1.0 + down)
    return float(max(upper - prior, prior - lower))
