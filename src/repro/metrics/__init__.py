"""Utility metrics and aggregation helpers for the experiments.

The paper evaluates utility with two metrics (Section V-A): the privacy
budget alpha the PLM ends up using (per timestamp and averaged) and the
Euclidean distance between perturbed and true locations, both aggregated
over repeated runs.
"""

from .privacy import (
    event_advantage,
    expected_inference_error_km,
    max_event_advantage,
    posterior_entropy_bits,
    top1_accuracy,
)
from .utility import (
    RunAggregate,
    aggregate_logs,
    average_budget_over_time,
    mean_and_std,
)

__all__ = [
    "RunAggregate",
    "aggregate_logs",
    "average_budget_over_time",
    "mean_and_std",
    "expected_inference_error_km",
    "posterior_entropy_bits",
    "top1_accuracy",
    "event_advantage",
    "max_event_advantage",
]
