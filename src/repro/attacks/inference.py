"""Bayesian inference attacks on released location traces.

Everything here takes the adversary's view: the mobility chain ``M`` and
the emission matrices of the mechanism are public (or learned), the true
trajectory is hidden, and the released trace is observed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import as_float_array, check_probability_vector
from ..core.automaton_engine import AutomatonModel
from ..core.forward_backward import smoothed_posteriors
from ..core.joint import joint_probability, observation_probability
from ..core.two_world import TwoWorldModel
from ..errors import QuantificationError
from ..events.events import PatternEvent, PresenceEvent
from ..lppm.base import LPPM
from ..markov.transition import TimeVaryingChain, TransitionMatrix


def _as_chain(chain) -> TimeVaryingChain:
    if isinstance(chain, TimeVaryingChain):
        return chain
    if isinstance(chain, TransitionMatrix):
        return TimeVaryingChain.homogeneous(chain)
    return TimeVaryingChain.homogeneous(TransitionMatrix(np.asarray(chain)))


def _emission_columns(lppm_or_matrices, observations, m: int) -> np.ndarray:
    observations = [int(o) for o in observations]
    if isinstance(lppm_or_matrices, LPPM):
        matrices = [lppm_or_matrices.emission_matrix()] * len(observations)
    else:
        arr = np.asarray(lppm_or_matrices, dtype=np.float64)
        if arr.ndim == 2:
            matrices = [arr] * len(observations)
        elif arr.ndim == 3:
            if arr.shape[0] != len(observations):
                raise QuantificationError(
                    f"{arr.shape[0]} emission matrices for "
                    f"{len(observations)} observations"
                )
            matrices = list(arr)
        else:
            raise QuantificationError(
                f"emissions must be an LPPM or a 2-D/3-D array, got {arr.shape}"
            )
    columns = np.empty((len(observations), m), dtype=np.float64)
    for t, (matrix, output) in enumerate(zip(matrices, observations)):
        if not 0 <= output < matrix.shape[1]:
            raise QuantificationError(
                f"observation {output} at t={t + 1} outside [0, {matrix.shape[1]})"
            )
        columns[t] = matrix[:, output]
    return columns


@dataclass(frozen=True)
class EventBelief:
    """The adversary's belief about an event before and after a release."""

    prior: float
    posterior: float

    @property
    def log_odds_shift(self) -> float:
        """``|log( posterior-odds / prior-odds )|``.

        This is exactly the quantity epsilon-spatiotemporal event privacy
        bounds: under the Definition II.4 guarantee it is at most
        epsilon for the modeled adversary.
        """
        for name, value in (("prior", self.prior), ("posterior", self.posterior)):
            if not 0.0 < value < 1.0:
                raise QuantificationError(
                    f"{name} belief {value} is degenerate; odds undefined"
                )
        prior_odds = self.prior / (1.0 - self.prior)
        posterior_odds = self.posterior / (1.0 - self.posterior)
        return abs(float(np.log(posterior_odds / prior_odds)))


class EventInferenceAttack:
    """Optimal Bayesian inference of a spatiotemporal event.

    Parameters
    ----------
    chain:
        The adversary's mobility model.
    event:
        A PRESENCE/PATTERN event (two-world engine) or any expression /
        compiled event (automaton engine).
    horizon:
        Length of traces the attack will see.
    """

    def __init__(self, chain, event, horizon: int):
        self._chain = _as_chain(chain)
        if isinstance(event, (PresenceEvent, PatternEvent)):
            self._model = TwoWorldModel(self._chain, event, horizon)
            self._engine = "two-world"
        else:
            self._model = AutomatonModel(self._chain, event, horizon)
            self._engine = "automaton"
        self._horizon = int(horizon)

    @property
    def engine(self) -> str:
        """Which engine backs the attack ("two-world" or "automaton")."""
        return self._engine

    @property
    def n_states(self) -> int:
        """Number of map cells."""
        return self._model.n_states

    def prior(self, pi) -> float:
        """``Pr(EVENT)`` before seeing anything."""
        return self._model.prior_probability(pi)

    def infer(self, pi, lppm_or_matrices, observations) -> EventBelief:
        """Posterior ``Pr(EVENT | o_1..o_t)`` for a released trace."""
        pi = check_probability_vector(pi, "pi")
        columns = _emission_columns(lppm_or_matrices, observations, self.n_states)
        if self._engine == "two-world":
            joint = joint_probability(self._model, pi, columns)
            total = observation_probability(self._model, pi, columns)
        else:
            joint = self._model.joint_probability(pi, columns)
            total = self._model.observation_probability(pi, columns)
        if total <= 0.0:
            raise QuantificationError(
                "released trace has zero probability under the model"
            )
        return EventBelief(prior=self.prior(pi), posterior=joint / total)


def location_posteriors(chain, pi, lppm_or_matrices, observations) -> np.ndarray:
    """``Pr(u_t | o_1..o_T)`` for every t: the classic localization attack."""
    model = _as_chain(chain)
    columns = _emission_columns(lppm_or_matrices, observations, model.n_states)
    return smoothed_posteriors(model, pi, columns)


def top_k_locations(posteriors, k: int = 3) -> list[tuple[tuple[int, float], ...]]:
    """Per-timestamp top-k (cell, probability) guesses from posteriors."""
    arr = as_float_array(posteriors, "posteriors")
    if arr.ndim != 2:
        raise QuantificationError(f"posteriors must be (T, m), got {arr.shape}")
    out = []
    for row in arr:
        order = np.argsort(row)[::-1][:k]
        out.append(tuple((int(i), float(row[i])) for i in order))
    return out


def viterbi_map_trajectory(chain, pi, lppm_or_matrices, observations) -> list[int]:
    """Most likely true trajectory given a released one (MAP decoding).

    Standard Viterbi in log-space over the mobility chain with the
    mechanism's emission columns.  Ties break toward the lower cell
    index (argmax convention), making the output deterministic.
    """
    model = _as_chain(chain)
    m = model.n_states
    pi = check_probability_vector(pi, "pi")
    if pi.size != m:
        raise QuantificationError(f"pi has {pi.size} entries, chain has {m}")
    columns = _emission_columns(lppm_or_matrices, observations, m)
    horizon = columns.shape[0]

    with np.errstate(divide="ignore"):
        log_pi = np.log(pi)
        log_cols = np.log(columns)
    scores = log_pi + log_cols[0]
    back_pointers = np.zeros((horizon, m), dtype=np.int64)
    for t in range(2, horizon + 1):
        with np.errstate(divide="ignore"):
            log_m = np.log(model.array_at(t - 1))
        candidates = scores[:, None] + log_m  # (from, to)
        back_pointers[t - 1] = np.argmax(candidates, axis=0)
        scores = candidates[back_pointers[t - 1], np.arange(m)] + log_cols[t - 1]
    if not np.isfinite(scores.max()):
        raise QuantificationError(
            "released trace has zero probability under the model"
        )
    path = [int(np.argmax(scores))]
    for t in range(horizon - 1, 0, -1):
        path.append(int(back_pointers[t][path[-1]]))
    path.reverse()
    return path
