"""Adversary toolkit: the inference attacks PriSTE defends against.

The paper's threat model is "attackers who have knowledge of user's
mobility pattern" running Bayesian inference on the released locations.
This package makes that adversary concrete:

* :class:`EventInferenceAttack` -- posterior belief about a
  spatiotemporal event given a released trace (what Definition II.4
  bounds relative to the prior),
* :func:`location_posteriors` -- per-timestamp location inference
  (forward-backward smoothing, Eqs. 10-12),
* :func:`viterbi_map_trajectory` -- the most likely true trajectory
  given the released one (MAP decoding).

These are used by the examples to *show* the protection and by tests to
validate the privacy semantics end to end.
"""

from .inference import (
    EventInferenceAttack,
    location_posteriors,
    top_k_locations,
    viterbi_map_trajectory,
)

__all__ = [
    "EventInferenceAttack",
    "location_posteriors",
    "viterbi_map_trajectory",
    "top_k_locations",
]
