"""Setuptools shim: adds an explicit native-kernel build step.

The package itself is pure Python (metadata in ``pyproject.toml``); the
compiled rank-one-simplex kernel is *optional* and normally compiled
lazily on first use (see :mod:`repro.core.native`).  This shim adds

    python setup.py build_native

which compiles ``src/repro/core/_kernels.c`` eagerly and drops the
shared object next to the source, where the loader picks it up before
consulting the user cache -- the hook CI and container images use to
ship a prebuilt kernel.  A missing or broken compiler fails this
command loudly, while the runtime path degrades silently to NumPy.
"""

import sys
from pathlib import Path

from setuptools import Command, setup


class BuildNative(Command):
    """Compile the native solver kernel next to its C source."""

    description = "compile the rank-one-simplex C kernel (optional speedup)"
    user_options = []

    def initialize_options(self) -> None:
        pass

    def finalize_options(self) -> None:
        pass

    def run(self) -> None:
        sys.path.insert(0, str(Path(__file__).parent / "src"))
        from repro.core import native

        output = (
            Path(__file__).parent
            / "src"
            / "repro"
            / "core"
            / f"_kernels_c{native._shared_suffix()}"
        )
        native.compile_kernel(output)
        native.reset()
        if not native.native_available():
            raise SystemExit(
                f"built {output} but it failed to load: "
                f"{native.native_detail()['error']}"
            )
        print(f"native kernel built: {output}")


setup(cmdclass={"build_native": BuildNative})
