"""Unit tests for trace discretization."""

import pytest

from repro.datasets.discretize import _project_km, discretize_trace, grid_for_traces
from repro.datasets.trace import GPSPoint, GPSTrace
from repro.errors import DatasetError


def _line_trace(n_points: int = 5, step_deg: float = 0.01) -> GPSTrace:
    points = [
        GPSPoint(60.0 * k, 39.9 + step_deg * k, 116.4) for k in range(n_points)
    ]
    return GPSTrace(points)


class TestProjection:
    def test_reference_maps_to_origin(self):
        assert _project_km(39.9, 116.4, 39.9, 116.4) == (0.0, 0.0)

    def test_one_degree_north_is_111km(self):
        x, y = _project_km(40.9, 116.4, 39.9, 116.4)
        assert x == pytest.approx(0.0)
        assert y == pytest.approx(111.19, rel=1e-2)


class TestGridForTraces:
    def test_covers_trace(self):
        trace = _line_trace()
        grid, ref = grid_for_traces([trace], cell_size_km=0.5)
        cells = discretize_trace(trace, grid, ref)
        assert len(cells) == len(trace)
        assert all(0 <= c < grid.n_cells for c in cells)

    def test_rejects_empty(self):
        with pytest.raises(DatasetError):
            grid_for_traces([])

    def test_rejects_oversized_grid(self):
        trace = _line_trace(n_points=3, step_deg=1.0)
        with pytest.raises(DatasetError, match="max_cells"):
            grid_for_traces([trace], cell_size_km=0.1, max_cells=100)

    def test_rejects_bad_cell_size(self):
        with pytest.raises(DatasetError):
            grid_for_traces([_line_trace()], cell_size_km=0.0)


class TestDiscretize:
    def test_monotone_path_gives_monotone_cells(self):
        trace = _line_trace(n_points=6, step_deg=0.02)
        grid, ref = grid_for_traces([trace], cell_size_km=1.0)
        cells = discretize_trace(trace, grid, ref)
        rows = [grid.cell_position(c)[0] for c in cells]
        assert rows == sorted(rows)

    def test_resampling_changes_length(self):
        trace = _line_trace(n_points=5)  # 60 s sampling
        grid, ref = grid_for_traces([trace], cell_size_km=1.0)
        coarse = discretize_trace(trace, grid, ref, interval_s=120.0)
        assert len(coarse) == 3

    def test_stationary_trace_single_cell(self):
        points = [GPSPoint(60.0 * k, 39.9, 116.4) for k in range(4)]
        trace = GPSTrace(points)
        grid, ref = grid_for_traces([trace], cell_size_km=1.0)
        cells = discretize_trace(trace, grid, ref)
        assert len(set(cells)) == 1
