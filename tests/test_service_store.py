"""SessionStore backends: round-trip fidelity, atomicity, resolution."""

import json
import os
import threading

import numpy as np
import pytest

from repro.engine import SessionBuilder
from repro.errors import ServiceError, ValidationError
from repro.geo.grid import GridMap
from repro.lppm.planar_laplace import PlanarLaplaceMechanism
from repro.markov.synthetic import gaussian_kernel_transitions
from repro.service.store import (
    DirectorySessionStore,
    MemorySessionStore,
    SQLiteSessionStore,
    resolve_store,
)

BACKENDS = ("memory", "dir", "sqlite")


def make_store(kind: str, tmp_path):
    if kind == "memory":
        return MemorySessionStore()
    if kind == "dir":
        return DirectorySessionStore(str(tmp_path / "sessions"))
    return SQLiteSessionStore(str(tmp_path / "sessions.db"))


@pytest.fixture(scope="module")
def session_factory():
    from repro.events.events import PresenceEvent
    from repro.geo.regions import Region

    grid = GridMap(4, 4, cell_size_km=1.0)
    chain = gaussian_kernel_transitions(grid, sigma=1.0)
    initial = np.full(grid.n_cells, 1.0 / grid.n_cells)
    return (
        SessionBuilder()
        .with_grid(grid)
        .with_chain(chain)
        .protecting(
            PresenceEvent(Region.from_range(grid.n_cells, 0, 5), start=2, end=4)
        )
        .with_mechanism(PlanarLaplaceMechanism(grid, 0.5))
        .with_epsilon(0.5)
        .with_fixed_prior(initial)
        .with_horizon(8)
    )


def stepped_state(builder, session_id: str, n_steps: int = 3, seed: int = 0):
    session = builder.build(rng=seed, session_id=session_id)
    for cell in range(n_steps):
        session.step(cell)
    return session.to_state()


@pytest.mark.parametrize("kind", BACKENDS)
class TestBackends:
    def test_put_get_roundtrip_is_exact(self, kind, tmp_path, session_factory):
        store = make_store(kind, tmp_path)
        state = stepped_state(session_factory, "user a/1", n_steps=3)
        store.put(state)
        loaded = store.get("user a/1")
        assert loaded is not None
        assert loaded.to_json() == state.to_json()
        store.close()

    def test_roundtripped_state_resumes_bit_identically(
        self, kind, tmp_path, session_factory
    ):
        from repro.engine import ReleaseSession

        store = make_store(kind, tmp_path)
        reference = session_factory.build(rng=11, session_id="ref")
        for cell in (0, 1, 2):
            reference.step(cell)
        store.put(reference.to_state())
        resumed = ReleaseSession.from_state(
            session_factory.build_config(), store.get("ref")
        )
        for cell in (3, 4):
            expected = reference.step(cell).to_json()
            actual = resumed.step(cell).to_json()
            expected.pop("elapsed_s"), actual.pop("elapsed_s")
            assert expected == actual
        store.close()

    def test_get_absent_returns_none(self, kind, tmp_path, session_factory):
        store = make_store(kind, tmp_path)
        assert store.get("ghost") is None
        assert "ghost" not in store
        store.close()

    def test_delete_and_ids(self, kind, tmp_path, session_factory):
        store = make_store(kind, tmp_path)
        for name in ("a", "b", "c"):
            store.put(stepped_state(session_factory, name, n_steps=1))
        assert sorted(store.ids()) == ["a", "b", "c"]
        assert len(store) == 3
        store.delete("b")
        store.delete("b")  # idempotent
        assert sorted(store.ids()) == ["a", "c"]
        store.close()

    def test_put_replaces(self, kind, tmp_path, session_factory):
        store = make_store(kind, tmp_path)
        store.put(stepped_state(session_factory, "u", n_steps=1))
        newer = stepped_state(session_factory, "u", n_steps=4)
        store.put(newer)
        assert store.get("u").committed_t == 4
        assert len(store) == 1
        store.close()

    def test_concurrent_puts_do_not_corrupt(self, kind, tmp_path, session_factory):
        store = make_store(kind, tmp_path)
        states = [
            stepped_state(session_factory, f"s{i}", n_steps=1, seed=i)
            for i in range(8)
        ]

        def put_all(offset):
            for state in states[offset::2]:
                store.put(state)

        threads = [threading.Thread(target=put_all, args=(k,)) for k in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(store) == 8
        for i in range(8):
            assert store.get(f"s{i}").session_id == f"s{i}"
        store.close()


class TestDirectoryStore:
    def test_filenames_are_reversible_for_odd_ids(self, tmp_path, session_factory):
        store = DirectorySessionStore(str(tmp_path))
        odd = "../we ird/é漢?*"
        store.put(stepped_state(session_factory, odd, n_steps=1))
        assert store.ids() == [odd]
        assert store.get(odd) is not None
        # the file lives inside the root, nothing escaped upward
        (name,) = os.listdir(tmp_path)
        assert name.endswith(".json")

    def test_foreign_files_are_ignored(self, tmp_path, session_factory):
        store = DirectorySessionStore(str(tmp_path))
        (tmp_path / "README.txt").write_text("not a session")
        (tmp_path / "zz-not-hex.json").write_text("{}")
        store.put(stepped_state(session_factory, "u", n_steps=1))
        assert store.ids() == ["u"]

    def test_corrupt_checkpoint_is_a_typed_error(self, tmp_path, session_factory):
        store = DirectorySessionStore(str(tmp_path))
        store.put(stepped_state(session_factory, "u", n_steps=1))
        (path,) = [p for p in os.listdir(tmp_path) if p.endswith(".json")]
        (tmp_path / path).write_text('{"truncated": true}')
        with pytest.raises(ServiceError, match="corrupt"):
            store.get("u")

    def test_truncated_file_is_loud_and_a_re_put_repairs_it(
        self, tmp_path, session_factory
    ):
        # The crash-mid-write scenario the atomic-rename write path
        # exists for: a torn file must never parse as a valid (older)
        # checkpoint, and the next put must heal it in place.
        store = DirectorySessionStore(str(tmp_path))
        state = stepped_state(session_factory, "u", n_steps=3)
        store.put(state)
        (name,) = [p for p in os.listdir(tmp_path) if p.endswith(".json")]
        full = (tmp_path / name).read_text()
        (tmp_path / name).write_text(full[: len(full) // 2])
        with pytest.raises(ServiceError, match="corrupt"):
            store.get("u")
        store.put(state)
        loaded = store.get("u")
        assert loaded is not None
        assert loaded.to_json() == state.to_json()
        # the write path left no temp litter, and ids() never saw any
        assert os.listdir(tmp_path) == [name]
        assert store.ids() == ["u"]

    def test_failed_put_leaves_no_temp_files(
        self, tmp_path, session_factory, monkeypatch
    ):
        store = DirectorySessionStore(str(tmp_path))
        state = stepped_state(session_factory, "u", n_steps=1)

        def exploding_replace(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError, match="disk full"):
            store.put(state)
        monkeypatch.undo()
        assert os.listdir(tmp_path) == []  # tmp file cleaned up
        assert store.get("u") is None


class TestSQLiteStore:
    def test_survives_reopen(self, tmp_path, session_factory):
        path = str(tmp_path / "fleet.db")
        store = SQLiteSessionStore(path)
        store.put(stepped_state(session_factory, "durable", n_steps=2))
        store.close()
        reopened = SQLiteSessionStore(path)
        assert reopened.get("durable").committed_t == 2
        reopened.close()

    def test_corrupt_row_is_a_typed_error(self, tmp_path, session_factory):
        path = str(tmp_path / "fleet.db")
        store = SQLiteSessionStore(path)
        store.put(stepped_state(session_factory, "u", n_steps=1))
        store._conn.execute(
            "UPDATE sessions SET state = ? WHERE session_id = ?", ("{}", "u")
        )
        store._conn.commit()
        with pytest.raises(ServiceError, match="corrupt"):
            store.get("u")
        store.close()


class TestResolveStore:
    def test_kinds(self, tmp_path):
        assert isinstance(resolve_store("memory"), MemorySessionStore)
        assert isinstance(
            resolve_store("dir", str(tmp_path / "d")), DirectorySessionStore
        )
        sqlite_store = resolve_store("sqlite", str(tmp_path / "s.db"))
        assert isinstance(sqlite_store, SQLiteSessionStore)
        sqlite_store.close()

    def test_missing_path_rejected(self):
        with pytest.raises(ValidationError):
            resolve_store("dir")
        with pytest.raises(ValidationError):
            resolve_store("sqlite", "")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValidationError, match="unknown store"):
            resolve_store("redis", "x")
