"""The declarative scenario layer: spec round-trip, digest, interning.

Covers the :mod:`repro.scenario` subsystem itself (JSON round-trip
producing bit-identical sessions, digest stability across processes,
typed validation errors), the LPPM name registry, the checkpoint schema
version gate, and :class:`~repro.engine.SessionManager`'s spec-keyed
model interning (one digest = shared models/ladder/cache; distinct
digests = disjoint cores).
"""

import json
import subprocess
import sys

import numpy as np
import pytest

from repro.engine import STATE_SCHEMA_VERSION, ReleaseSession, SessionManager, SessionState
from repro.errors import (
    CheckpointVersionError,
    MechanismError,
    ScenarioError,
    SessionError,
    UnknownMechanismError,
)
from repro.lppm import (
    MECHANISMS,
    PlanarLaplaceMechanism,
    canonical_mechanism_name,
    register_mechanism,
    resolve_mechanism,
)
from repro.scenario import (
    CalibrationSpec,
    ChainSpec,
    EventSpec,
    GridSpec,
    MechanismSpec,
    ScenarioRegistry,
    ScenarioSpec,
)

HORIZON = 8


def make_spec(**overrides) -> ScenarioSpec:
    fields = dict(
        grid=GridSpec(rows=4, cols=4),
        chain=ChainSpec.gaussian(sigma=1.0),
        events=(EventSpec.presence_range(0, 5, start=2, end=4),),
        mechanism=MechanismSpec("planar_laplace", {"alpha": 0.5}),
        epsilon=0.5,
        horizon=HORIZON,
        prior_mode="fixed",
    )
    fields.update(overrides)
    return ScenarioSpec(**fields)


def other_spec() -> ScenarioSpec:
    """A second scenario: different map, mechanism and epsilon."""
    return make_spec(
        grid=GridSpec(rows=5, cols=3),
        chain=ChainSpec.lazy_walk(stay_probability=0.3),
        events=(EventSpec.presence_range(0, 4, start=2, end=3),),
        mechanism=MechanismSpec("randomized_response", {"budget": 2.0}),
        epsilon=0.8,
    )


def run_session(spec: ScenarioSpec, cells, rng=3):
    session = ReleaseSession(spec.compile().engine_config, rng=rng)
    return [session.step(cell).to_json() for cell in cells]


def strip_elapsed(record: dict) -> dict:
    return {k: v for k, v in record.items() if k != "elapsed_s"}


class TestRoundTrip:
    def test_spec_json_round_trip_is_identity(self):
        spec = make_spec()
        wire = json.loads(json.dumps(spec.to_json()))
        again = ScenarioSpec.from_json(wire)
        assert again == spec
        assert again.digest() == spec.digest()
        # and a second round trip is a fixed point
        assert ScenarioSpec.from_json(again.to_json()) == again

    @pytest.mark.parametrize(
        "spec",
        [
            make_spec(),
            other_spec(),
            make_spec(
                chain=ChainSpec.explicit(np.full((16, 16), 1.0 / 16)),
                prior_mode="worst_case",
            ),
            make_spec(
                chain=ChainSpec.from_traces([[0, 1, 2, 1], [3, 3, 2, 0]]),
                initial="fit",
                mechanism=MechanismSpec("delta_location_set", {"alpha": 0.5, "delta": 0.2}),
            ),
            make_spec(
                events=(
                    EventSpec.pattern([[0, 1], [4, 5]], start=2),
                    EventSpec.presence_range(0, 3, start=5, end=6),
                ),
                calibration=CalibrationSpec("binary-search", {"max_probes": 4}),
            ),
        ],
        ids=["gaussian", "lazy-rr", "matrix", "trace-delta", "pattern-binary"],
    )
    def test_round_tripped_spec_compiles_to_bit_identical_sessions(self, spec):
        again = ScenarioSpec.from_json(json.loads(json.dumps(spec.to_json())))
        cells = [1, 0, 2, 3, 1]
        assert list(map(strip_elapsed, run_session(again, cells))) == list(
            map(strip_elapsed, run_session(spec, cells))
        )

    def test_from_json_rejects_unknown_fields_and_missing_fields(self):
        with pytest.raises(ScenarioError, match="unknown fields"):
            ScenarioSpec.from_json({**make_spec().to_json(), "wat": 1})
        broken = make_spec().to_json()
        del broken["mechanism"]
        with pytest.raises(ScenarioError, match="mechanism"):
            ScenarioSpec.from_json(broken)

    def test_component_validation_is_typed(self):
        with pytest.raises(ScenarioError):
            GridSpec(rows=0, cols=4)
        with pytest.raises(ScenarioError):
            ChainSpec.gaussian(sigma=-1.0)
        with pytest.raises(ScenarioError):
            EventSpec(kind="presence", cells=(), window=(1, 2))
        with pytest.raises(ScenarioError):
            CalibrationSpec("halvsies")
        with pytest.raises(ScenarioError, match="does not accept"):
            CalibrationSpec("halving", {"max_probes": 3})
        with pytest.raises(ScenarioError):
            make_spec(epsilon=0.0)
        with pytest.raises(ScenarioError, match="trace chain"):
            make_spec(initial="fit")

    def test_compile_errors_are_typed(self):
        # matrix wrong shape for the grid
        bad = make_spec(chain=ChainSpec.explicit(np.eye(4)))
        with pytest.raises(ScenarioError, match="shape"):
            bad.compile()
        # missing mechanism parameter
        with pytest.raises(ScenarioError, match="missing parameter"):
            make_spec(mechanism=MechanismSpec("planar_laplace", {})).compile()
        # event outside the map
        with pytest.raises(ScenarioError, match="invalid presence event"):
            make_spec(
                events=(EventSpec.presence([99], start=1, end=2),)
            ).compile()


class TestDigest:
    def test_digest_ignores_construction_spelling(self):
        a = make_spec(mechanism=MechanismSpec("geoind", {"alpha": 0.5}))
        b = make_spec(mechanism=MechanismSpec("planar_laplace", {"alpha": 0.5}))
        assert a.digest() == b.digest()

    def test_digest_separates_different_settings(self):
        digests = {
            make_spec().digest(),
            make_spec(epsilon=0.6).digest(),
            make_spec(grid=GridSpec(rows=4, cols=5)).digest(),
            make_spec(mechanism=MechanismSpec("planar_laplace", {"alpha": 0.7})).digest(),
            other_spec().digest(),
        }
        assert len(digests) == 5

    def test_digest_is_stable_across_processes(self, tmp_path):
        spec = make_spec()
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec.to_json()))
        script = (
            "import json, sys\n"
            "from repro.scenario import ScenarioSpec\n"
            "spec = ScenarioSpec.from_file(sys.argv[1])\n"
            "print(spec.digest())\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", script, str(path)],
            capture_output=True,
            text=True,
            check=True,
            env={"PYTHONPATH": "src", "PYTHONHASHSEED": "12345"},
            cwd=".",
        )
        assert out.stdout.strip() == spec.digest()


class TestLppmRegistry:
    def test_every_mechanism_resolves_by_canonical_name(self):
        for name, cls in MECHANISMS.items():
            assert resolve_mechanism(name) is cls
            assert canonical_mechanism_name(name) == name

    def test_aliases_resolve_to_canonical_classes(self):
        assert resolve_mechanism("geoind") is PlanarLaplaceMechanism
        assert canonical_mechanism_name("delta") == "delta_location_set"

    def test_unknown_name_raises_typed_error_listing_names(self):
        with pytest.raises(UnknownMechanismError, match="registered names"):
            resolve_mechanism("laplace_but_wrong")
        # the typed error is still a MechanismError (and a ValueError)
        assert issubclass(UnknownMechanismError, MechanismError)
        assert issubclass(UnknownMechanismError, ValueError)

    def test_register_refuses_duplicates_and_non_lppms(self):
        with pytest.raises(MechanismError, match="already registered"):
            register_mechanism("uniform", PlanarLaplaceMechanism)
        with pytest.raises(MechanismError, match="LPPM subclass"):
            register_mechanism("not-a-mechanism", dict)


class TestCheckpointSchema:
    def test_states_carry_the_schema_version(self):
        manager = SessionManager(make_spec())
        manager.open("u", rng=1)
        manager.step("u", 1)
        state_json = manager.checkpoint("u").to_json()
        assert state_json["schema"] == STATE_SCHEMA_VERSION

    def test_newer_schema_raises_typed_error(self):
        manager = SessionManager(make_spec())
        manager.open("u", rng=1)
        state_json = manager.checkpoint("u").to_json()
        state_json["schema"] = STATE_SCHEMA_VERSION + 1
        with pytest.raises(CheckpointVersionError, match="upgrade"):
            SessionState.from_json(state_json)

    def test_v1_states_without_schema_still_restore(self):
        manager = SessionManager(make_spec())
        manager.open("u", rng=1)
        manager.step("u", 1)
        state_json = manager.checkpoint("u").to_json()
        del state_json["schema"]
        del state_json["scenario"]  # v1 had neither field
        restored = SessionState.from_json(state_json)
        assert restored.scenario is None
        manager2 = SessionManager(make_spec())
        manager2.resume(restored)
        assert manager2.step("u", 2).t == 2


class TestManagerInterning:
    def test_same_digest_shares_models_and_cache(self):
        manager = SessionManager(ScenarioSpec.from_json(make_spec().to_json()))
        manager.open("a", rng=1)
        manager.open("b", rng=2, scenario=make_spec())
        session_a = manager.session("a")
        session_b = manager.session("b")
        assert session_a._core is session_b._core
        assert session_a._core.models[0] is session_b._core.models[0]
        assert session_a._cache is session_b._cache
        assert manager.scenario_digests() == [make_spec().digest()]

    def test_different_digests_get_disjoint_cores(self):
        manager = SessionManager(make_spec())
        manager.open("a", rng=1)
        manager.open("c", rng=3, scenario=other_spec())
        assert manager.session("a")._core is not manager.session("c")._core
        assert manager.n_states_of("a") == 16
        assert manager.n_states_of("c") == 15
        assert manager.scenario_of("a") == make_spec().digest()
        assert manager.scenario_of("c") == other_spec().digest()

    def test_open_by_digest_string_requires_registration(self):
        manager = SessionManager(make_spec())
        with pytest.raises(ScenarioError, match="not registered"):
            manager.open("x", scenario=other_spec().digest())
        digest = manager.register_scenario(other_spec())
        manager.open("x", rng=1, scenario=digest)
        assert manager.horizon_of("x") == HORIZON

    def test_mixed_step_many_matches_step_all(self):
        spec_a, spec_b = make_spec(), other_spec()
        cells = {"a1": 1, "a2": 2, "b1": 3}

        def drive(step):
            manager = SessionManager(spec_a)
            manager.open("a1", rng=1)
            manager.open("a2", rng=2)
            manager.open("b1", rng=3, scenario=spec_b)
            out = []
            for _ in range(4):
                records = step(manager, cells)
                out.append(
                    {sid: strip_elapsed(r.to_json()) for sid, r in records.items()}
                )
            return out

        assert drive(SessionManager.step_many) == drive(SessionManager.step_all)

    def test_scenario_checkpoint_restores_into_a_fresh_manager(self):
        spec_b = other_spec()
        manager = SessionManager(make_spec())
        manager.open("u", rng=5, scenario=spec_b)
        first = strip_elapsed(manager.step("u", 1).to_json())
        state = manager.suspend("u")
        assert state.scenario["digest"] == spec_b.digest()

        # continuous reference
        reference = SessionManager(make_spec())
        reference.open("u", rng=5, scenario=spec_b)
        ref_records = [
            strip_elapsed(reference.step("u", cell).to_json()) for cell in (1, 2, 0)
        ]
        assert ref_records[0] == first

        # a manager that has never seen spec_b re-materializes it
        fresh = SessionManager(make_spec())
        fresh.resume(state)
        assert [
            strip_elapsed(fresh.step("u", cell).to_json()) for cell in (2, 0)
        ] == ref_records[1:]
        assert fresh.scenario_of("u") == spec_b.digest()

    def test_resume_rejects_mismatched_digest(self):
        manager = SessionManager(make_spec())
        manager.open("u", rng=5, scenario=other_spec())
        state = manager.suspend("u")
        state.scenario = dict(state.scenario, digest="0" * 32)
        with pytest.raises(SessionError, match="mismatched"):
            SessionManager(make_spec()).resume(state)

    def test_default_sessions_checkpoint_without_binding(self):
        manager = SessionManager(make_spec())
        manager.open("u", rng=1)
        assert manager.checkpoint("u").scenario is None

    def test_explicit_scenario_matching_default_still_embeds_binding(self):
        # Opened *explicitly* with a spec that happens to equal the
        # manager's default: the binding must survive, because a
        # restarted manager may have a different default config.
        manager = SessionManager(make_spec())
        manager.open("u", rng=5, scenario=make_spec())
        manager.step("u", 1)
        state = manager.suspend("u")
        assert state.scenario is not None
        assert state.scenario["digest"] == make_spec().digest()
        restarted = SessionManager(other_spec())  # different default
        restarted.resume(state)
        assert restarted.n_states_of("u") == 16  # still the 4x4 world
        assert restarted.step("u", 2).t == 2

    def test_idle_cores_evicted_beyond_max_scenarios(self):
        manager = SessionManager(make_spec(), max_scenarios=2)
        manager.open("busy", rng=1, scenario=other_spec())
        # a stream of one-off scenarios must not grow the core table
        for k in range(5):
            manager.register_scenario(make_spec(epsilon=0.6 + 0.01 * k))
        digests = manager.scenario_digests()
        # the default and the in-use scenario are never evicted
        assert make_spec().digest() in digests
        assert other_spec().digest() in digests
        # idle one-off cores were dropped as new ones arrived
        assert len(digests) <= 3
        # an evicted scenario simply recompiles on its next use
        manager.open("back", rng=2, scenario=make_spec(epsilon=0.6))
        assert manager.step("back", 1).t == 1


class TestScenarioRegistry:
    def test_allowlist_admits_only_preloaded_digests(self):
        registry = ScenarioRegistry([make_spec()])
        admitted = registry.admit(make_spec().to_json())
        assert admitted.digest() == make_spec().digest()
        with pytest.raises(ScenarioError, match="allowlist"):
            registry.admit(other_spec().to_json())

    def test_allow_any_bypasses_the_allowlist(self):
        registry = ScenarioRegistry([], allow_any=True)
        assert registry.admit(other_spec().to_json()).digest() == other_spec().digest()

    def test_lru_caches_validated_specs(self):
        registry = ScenarioRegistry([], allow_any=True, max_cached=2)
        payloads = [make_spec().to_json(), other_spec().to_json()]
        first = registry.admit(payloads[0])
        assert registry.admit(payloads[0]) is first  # cache hit
        registry.admit(payloads[1])
        third = make_spec(epsilon=0.9)
        registry.admit(third.to_json())  # evicts the LRU entry
        assert registry.cached_count() == 2
        # evicted spec is re-validated, not rejected
        assert registry.admit(payloads[0]).digest() == first.digest()

    def test_malformed_payloads_are_typed_errors(self):
        registry = ScenarioRegistry([], allow_any=True)
        with pytest.raises(ScenarioError):
            registry.admit({"grid": "nope"})
