"""Unit tests for privacy quantification and verification."""

import numpy as np
import pytest

from repro.core.qp import SolverStatus
from repro.core.quantify import quantify_fixed_prior, verify_event_privacy
from repro.errors import DegeneratePriorError, QuantificationError
from repro.events.events import PresenceEvent
from repro.geo.regions import Region
from repro.lppm.uniform import UniformMechanism

from conftest import random_chain, random_emission


class TestQuantifyFixedPrior:
    def test_uniform_mechanism_zero_loss(self, rng):
        chain = random_chain(3, rng)
        event = PresenceEvent(Region.from_cells(3, [0]), start=2, end=3)
        pi = np.array([0.3, 0.3, 0.4])
        result = quantify_fixed_prior(
            chain, event, UniformMechanism(3), [0, 1, 2, 0], pi
        )
        assert result.epsilon == pytest.approx(0.0, abs=1e-12)
        assert all(r == pytest.approx(1.0) for r in result.ratios)

    def test_identity_mechanism_reveals_event(self, rng):
        """A noiseless release inside the region certainly reveals PRESENCE."""
        chain = random_chain(3, rng)
        event = PresenceEvent(Region.from_cells(3, [0]), start=2, end=2)
        pi = np.array([1 / 3, 1 / 3, 1 / 3])
        identity = np.eye(3)
        result = quantify_fixed_prior(chain, event, identity, [1, 0], pi)
        assert result.epsilon == float("inf")

    def test_ratio_consistency_with_lemmas(self, rng):
        chain = random_chain(3, rng)
        emission = random_emission(3, rng)
        event = PresenceEvent(Region.from_cells(3, [1]), start=2, end=3)
        pi = np.array([0.25, 0.5, 0.25])
        observations = [0, 2, 1, 0]
        result = quantify_fixed_prior(chain, event, emission, observations, pi)

        from repro.core.joint import joint_probability, observation_probability
        from repro.core.two_world import TwoWorldModel

        model = TwoWorldModel(chain, event, horizon=4)
        cols = np.stack([emission[:, o] for o in observations])
        prior = model.prior_probability(pi)
        for t, ratio in enumerate(result.ratios, start=1):
            joint = joint_probability(model, pi, cols, upto_t=t)
            total = observation_probability(model, pi, cols, upto_t=t)
            expected = (joint / prior) / ((total - joint) / (1 - prior))
            assert ratio == pytest.approx(expected, rel=1e-9)

    def test_epsilon_is_max_abs_log_ratio(self, rng):
        chain = random_chain(3, rng)
        emission = random_emission(3, rng)
        event = PresenceEvent(Region.from_cells(3, [2]), start=2, end=2)
        pi = np.array([0.4, 0.3, 0.3])
        result = quantify_fixed_prior(chain, event, emission, [0, 1, 2], pi)
        assert result.epsilon == pytest.approx(
            max(abs(np.log(r)) for r in result.ratios)
        )

    def test_degenerate_prior_rejected(self, paper_chain):
        # Event at t=1 on a region the prior avoids entirely.
        event = PresenceEvent(Region.from_cells(3, [0]), start=1, end=1)
        pi = np.array([0.0, 0.5, 0.5])
        with pytest.raises(DegeneratePriorError):
            quantify_fixed_prior(
                paper_chain, event, UniformMechanism(3), [0], pi
            )

    def test_requires_observations(self, paper_chain, paper_presence):
        with pytest.raises(QuantificationError):
            quantify_fixed_prior(
                paper_chain, paper_presence, UniformMechanism(3), [], [0.4, 0.3, 0.3]
            )

    def test_per_timestep_matrices(self, rng):
        chain = random_chain(3, rng)
        event = PresenceEvent(Region.from_cells(3, [0]), start=2, end=2)
        pi = np.array([0.3, 0.3, 0.4])
        mats = np.stack([random_emission(3, rng) for _ in range(3)])
        result = quantify_fixed_prior(chain, event, mats, [0, 1, 2], pi)
        assert len(result.ratios) == 3

    def test_matrix_count_mismatch(self, rng):
        chain = random_chain(3, rng)
        event = PresenceEvent(Region.from_cells(3, [0]), start=2, end=2)
        mats = np.stack([random_emission(3, rng) for _ in range(2)])
        with pytest.raises(QuantificationError):
            quantify_fixed_prior(chain, event, mats, [0, 1, 2], [0.3, 0.3, 0.4])


class TestVerifyEventPrivacy:
    def test_uniform_mechanism_always_safe(self, rng):
        chain = random_chain(3, rng)
        event = PresenceEvent(Region.from_cells(3, [0]), start=2, end=3)
        check = verify_event_privacy(
            chain, event, UniformMechanism(3), [0, 1, 2, 0], epsilon=0.1
        )
        assert check.holds
        assert check.first_violation is None

    def test_identity_mechanism_violates(self, rng):
        chain = random_chain(3, rng)
        event = PresenceEvent(Region.from_cells(3, [0]), start=1, end=2)
        check = verify_event_privacy(
            chain, event, np.eye(3), [0, 1], epsilon=1.0, horizon=3
        )
        assert not check.holds
        assert check.first_violation is not None

    def test_worst_case_stricter_than_fixed(self, rng):
        """A sequence safe for uniform pi can fail the arbitrary-pi check."""
        chain = random_chain(4, rng)
        emission = random_emission(4, rng)
        event = PresenceEvent(Region.from_cells(4, [0]), start=2, end=3)
        pi = np.full(4, 0.25)
        observations = [0, 1, 2, 3]
        epsilon = 1.0
        fixed = quantify_fixed_prior(chain, event, emission, observations, pi)
        check = verify_event_privacy(chain, event, emission, observations, epsilon)
        if check.holds:
            # Soundness direction: arbitrary-pi safe implies fixed-pi safe.
            assert fixed.epsilon <= epsilon + 1e-9

    def test_statuses_per_prefix(self, rng):
        chain = random_chain(3, rng)
        event = PresenceEvent(Region.from_cells(3, [0]), start=2, end=2)
        check = verify_event_privacy(
            chain, event, UniformMechanism(3), [0, 0, 0], epsilon=0.5
        )
        assert len(check.statuses) == 3
        assert all(s is SolverStatus.SAFE for s in check.statuses)
