"""Unit tests for the two-possible-world lifted chain."""

import numpy as np
import pytest

from repro.core.baseline import enumerate_prior
from repro.core.two_world import TwoWorldModel
from repro.errors import EventError
from repro.events.events import PatternEvent, PresenceEvent
from repro.geo.regions import Region
from repro.markov.transition import TimeVaryingChain, TransitionMatrix

from conftest import PAPER_M, random_chain


class TestPaperExample:
    def test_appendix_c_prior_vector(self, paper_chain, paper_presence):
        """Example C.1: Pr(PRESENCE) = pi . [0.28, 0.298, 0.226]."""
        model = TwoWorldModel(paper_chain, paper_presence, horizon=6)
        assert np.allclose(model.prior_vector(), [0.28, 0.298, 0.226])

    def test_appendix_c_lifted_matrices(self, paper_chain, paper_presence):
        """Eq. (22): the lifted matrices at t=2,3 vs t=1,4,5."""
        model = TwoWorldModel(paper_chain, paper_presence, horizon=6)
        inside = model.lifted_matrix(2)
        expected_inside = np.array(
            [
                [0, 0, 0.7, 0.1, 0.2, 0],
                [0, 0, 0.5, 0.4, 0.1, 0],
                [0, 0, 0.9, 0.0, 0.1, 0],
                [0, 0, 0, 0.1, 0.2, 0.7],
                [0, 0, 0, 0.4, 0.1, 0.5],
                [0, 0, 0, 0.0, 0.1, 0.9],
            ]
        )
        assert np.allclose(inside, expected_inside)
        assert np.allclose(model.lifted_matrix(3), expected_inside)
        outside = model.lifted_matrix(1)
        expected_outside = np.block(
            [[PAPER_M, np.zeros((3, 3))], [np.zeros((3, 3)), PAPER_M]]
        )
        assert np.allclose(outside, expected_outside)
        assert np.allclose(model.lifted_matrix(4), expected_outside)
        assert np.allclose(model.lifted_matrix(5), expected_outside)


class TestLiftedStructure:
    def test_lifted_matrices_row_stochastic(self, paper_chain, paper_pattern):
        model = TwoWorldModel(paper_chain, paper_pattern, horizon=8)
        for t in range(1, 8):
            lifted = model.lifted_matrix(t)
            assert np.allclose(lifted.sum(axis=1), 1.0), f"t={t}"
            assert np.all(lifted >= 0)

    def test_blocks_match_dense(self, paper_chain, paper_pattern):
        model = TwoWorldModel(paper_chain, paper_pattern, horizon=8)
        for t in range(1, 8):
            ff, ft, tf, tt = model.transition_blocks(t)
            dense = model.lifted_matrix(t)
            m = 3
            assert np.allclose(dense[:m, :m], ff if ff is not None else 0.0)
            assert np.allclose(dense[:m, m:], ft if ft is not None else 0.0)
            assert np.allclose(dense[m:, :m], tf if tf is not None else 0.0)
            assert np.allclose(dense[m:, m:], tt if tt is not None else 0.0)

    def test_propagate_front_matches_dense(self, paper_chain, paper_pattern, rng):
        model = TwoWorldModel(paper_chain, paper_pattern, horizon=8)
        front = rng.uniform(size=(3, 6))
        for t in range(1, 8):
            fast = model.propagate_front(front, t)
            slow = front @ model.lifted_matrix(t)
            assert np.allclose(fast, slow), f"t={t}"

    def test_true_world_absorbing_for_presence(self, paper_chain, paper_presence):
        model = TwoWorldModel(paper_chain, paper_presence, horizon=6)
        for t in range(1, 6):
            lifted = model.lifted_matrix(t)
            # No mass ever leaves the true world for PRESENCE.
            assert np.allclose(lifted[3:, :3], 0.0)

    def test_pattern_true_world_leaks_back(self, paper_chain, paper_pattern):
        model = TwoWorldModel(paper_chain, paper_pattern, horizon=8)
        # Inside the window (t = start..end-1 = 2..3) mass can fall back.
        assert np.any(model.lifted_matrix(2)[3:, :3] > 0)

    def test_initial_lift_start_gt_1(self, paper_chain, paper_presence):
        model = TwoWorldModel(paper_chain, paper_presence, horizon=6)
        pi = np.array([0.2, 0.5, 0.3])
        lifted = model.lift_initial(pi)
        assert np.allclose(lifted, [0.2, 0.5, 0.3, 0, 0, 0])

    def test_initial_lift_start_1(self, paper_chain):
        event = PresenceEvent(Region.from_cells(3, [1]), start=1, end=2)
        model = TwoWorldModel(paper_chain, event, horizon=4)
        pi = np.array([0.2, 0.5, 0.3])
        lifted = model.lift_initial(pi)
        # Mass at cell 1 starts in the true world.
        assert np.allclose(lifted, [0.2, 0.0, 0.3, 0.0, 0.5, 0.0])

    def test_collapse_adjoint_identity(self, paper_chain, paper_presence, rng):
        model = TwoWorldModel(paper_chain, paper_presence, horizon=6)
        pi = np.array([0.2, 0.5, 0.3])
        vector = rng.uniform(size=6)
        assert model.lift_initial(pi) @ vector == pytest.approx(
            pi @ model.collapse(vector)
        )


class TestPriorAgainstEnumeration:
    @pytest.mark.parametrize("start,end", [(2, 2), (2, 4), (1, 3), (4, 5)])
    def test_presence(self, rng, start, end):
        chain = random_chain(3, rng)
        event = PresenceEvent(Region.from_cells(3, [0, 2]), start=start, end=end)
        model = TwoWorldModel(chain, event, horizon=6)
        pi = np.array([0.3, 0.3, 0.4])
        assert model.prior_probability(pi) == pytest.approx(
            enumerate_prior(chain, event, pi), abs=1e-12
        )

    @pytest.mark.parametrize("start", [1, 2, 3])
    def test_pattern(self, rng, start):
        chain = random_chain(3, rng)
        event = PatternEvent(
            [Region.from_cells(3, [0, 1]), Region.from_cells(3, [2])], start=start
        )
        model = TwoWorldModel(chain, event, horizon=6)
        pi = np.array([0.5, 0.25, 0.25])
        assert model.prior_probability(pi) == pytest.approx(
            enumerate_prior(chain, event, pi), abs=1e-12
        )

    def test_time_varying_chain(self, rng):
        matrices = [random_chain(3, rng) for _ in range(5)]
        chain = TimeVaryingChain(matrices)
        event = PresenceEvent(Region.from_cells(3, [1]), start=2, end=4)
        model = TwoWorldModel(chain, event, horizon=6)
        pi = np.array([0.1, 0.6, 0.3])
        assert model.prior_probability(pi) == pytest.approx(
            enumerate_prior(chain, event, pi), abs=1e-12
        )

    def test_prior_plus_negation_is_one(self, paper_chain, paper_presence):
        """The false-world mass is exactly 1 - Pr(EVENT) (mass conservation)."""
        model = TwoWorldModel(paper_chain, paper_presence, horizon=6)
        pi = np.array([0.2, 0.5, 0.3])
        prior = model.prior_probability(pi)
        assert 0.0 < prior < 1.0
        # Propagate the lifted initial through the window and read both
        # world totals.
        state = model.lift_initial(pi)
        for t in range(1, model.end):
            state = state @ model.lifted_matrix(t)
        assert state[3:].sum() == pytest.approx(prior)
        assert state[:3].sum() == pytest.approx(1.0 - prior)


class TestValidation:
    def test_rejects_event_beyond_horizon(self, paper_chain, paper_presence):
        with pytest.raises(EventError):
            TwoWorldModel(paper_chain, paper_presence, horizon=3)

    def test_rejects_size_mismatch(self, paper_chain):
        event = PresenceEvent(Region.from_cells(5, [0]), start=1, end=1)
        with pytest.raises(EventError):
            TwoWorldModel(paper_chain, event, horizon=3)

    def test_rejects_raw_expression(self, paper_chain):
        from repro.events.expressions import at

        with pytest.raises(EventError, match="AutomatonModel"):
            TwoWorldModel(paper_chain, at(1, 0), horizon=3)
