"""Unit tests for utility and privacy metrics."""

import numpy as np
import pytest

from repro.core.priste import ReleaseLog, ReleaseRecord
from repro.errors import ValidationError
from repro.geo.grid import GridMap
from repro.metrics.privacy import (
    event_advantage,
    expected_inference_error_km,
    max_event_advantage,
    posterior_entropy_bits,
    top1_accuracy,
)
from repro.metrics.utility import (
    aggregate_logs,
    average_budget_over_time,
    mean_and_std,
)


def _log(budgets, released, elapsed=0.1):
    records = [
        ReleaseRecord(
            t=t + 1,
            true_cell=0,
            released_cell=cell,
            budget=budget,
            n_attempts=1,
            conservative=False,
            forced_uniform=False,
            elapsed_s=elapsed,
        )
        for t, (budget, cell) in enumerate(zip(budgets, released))
    ]
    return ReleaseLog(records=records)


class TestUtilityAggregation:
    def test_mean_and_std(self):
        mean, std = mean_and_std([1.0, 3.0])
        assert mean == 2.0
        assert std == 1.0

    def test_mean_and_std_empty(self):
        with pytest.raises(ValidationError):
            mean_and_std([])

    def test_average_budget_over_time(self):
        logs = [_log([0.1, 0.2], [0, 1]), _log([0.3, 0.4], [1, 0])]
        means, stds = average_budget_over_time(logs)
        assert means.tolist() == pytest.approx([0.2, 0.3])
        assert stds.tolist() == pytest.approx([0.1, 0.1])

    def test_mixed_lengths_rejected(self):
        with pytest.raises(ValidationError):
            average_budget_over_time([_log([0.1], [0]), _log([0.1, 0.2], [0, 1])])

    def test_aggregate_logs(self):
        grid = GridMap(1, 3, cell_size_km=1.0)
        logs = [_log([0.5, 0.5], [0, 1])]
        truths = [[0, 0]]
        aggregate = aggregate_logs(logs, grid, truths)
        assert aggregate.mean_budget == pytest.approx(0.5)
        assert aggregate.mean_error_km == pytest.approx(0.5)
        assert aggregate.n_runs == 1

    def test_aggregate_count_mismatch(self):
        grid = GridMap(1, 3)
        with pytest.raises(ValidationError):
            aggregate_logs([_log([0.5], [0])], grid, [[0], [1]])


class TestPrivacyMetrics:
    def test_expected_inference_error_perfect_attacker(self):
        grid = GridMap(1, 3, cell_size_km=1.0)
        posteriors = np.array([[1.0, 0.0, 0.0], [0.0, 1.0, 0.0]])
        assert expected_inference_error_km(posteriors, [0, 1], grid) == 0.0

    def test_expected_inference_error_uniform(self):
        grid = GridMap(1, 2, cell_size_km=2.0)
        posteriors = np.array([[0.5, 0.5]])
        # Half the mass sits 2 km away.
        assert expected_inference_error_km(posteriors, [0], grid) == pytest.approx(1.0)

    def test_entropy(self):
        posteriors = np.array([[0.5, 0.5], [1.0, 0.0]])
        entropy = posterior_entropy_bits(posteriors)
        assert entropy.tolist() == pytest.approx([1.0, 0.0])

    def test_top1_accuracy(self):
        posteriors = np.array([[0.9, 0.1], [0.4, 0.6]])
        assert top1_accuracy(posteriors, [0, 0]) == 0.5
        assert top1_accuracy(posteriors, [0, 1]) == 1.0

    def test_event_advantage(self):
        assert event_advantage(0.2, 0.7) == pytest.approx(0.5)
        with pytest.raises(ValidationError):
            event_advantage(-0.1, 0.5)

    def test_max_event_advantage_zero_epsilon(self):
        assert max_event_advantage(0.3, 0.0) == pytest.approx(0.0)

    def test_max_event_advantage_monotone_in_epsilon(self):
        small = max_event_advantage(0.3, 0.5)
        large = max_event_advantage(0.3, 2.0)
        assert large > small

    def test_max_event_advantage_bounds_posterior(self):
        """Any posterior within the odds band respects the cap."""
        rng = np.random.default_rng(0)
        for _ in range(100):
            prior = rng.uniform(0.05, 0.95)
            epsilon = rng.uniform(0.1, 2.0)
            odds = prior / (1 - prior)
            factor = np.exp(rng.uniform(-epsilon, epsilon))
            posterior = odds * factor / (1 + odds * factor)
            cap = max_event_advantage(prior, epsilon)
            assert abs(posterior - prior) <= cap + 1e-12

    def test_max_event_advantage_validation(self):
        with pytest.raises(ValidationError):
            max_event_advantage(0.0, 1.0)
        with pytest.raises(ValidationError):
            max_event_advantage(0.5, -1.0)
