"""End-to-end observability: traces via ``stats``, ``/metrics``, probes.

One server process wearing its full observability rig:

* every request mints a trace id; a step's spans (``queue_wait`` ->
  ``solve`` -> ``serialize`` -> ``request``, plus ``rpc`` when sharded)
  come back through the ``stats`` op sharing that one trace id;
* ``/metrics`` exposes the Prometheus families for the server, the
  per-worker split, and the latency histograms;
* ``/healthz`` answers while serving and ``/readyz`` flips to 503 the
  moment a shard process dies -- from local state only, no RPCs;
* a server built with ``trace=False`` records nothing.

All HTTP fetches run in the default executor: a blocking ``urlopen`` on
the event-loop thread would deadlock against the in-loop listener.
"""

import asyncio
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.engine import SessionBuilder, SessionManager, ShardPool
from repro.events.events import PresenceEvent
from repro.geo.grid import GridMap
from repro.geo.regions import Region
from repro.lppm.planar_laplace import PlanarLaplaceMechanism
from repro.service import (
    AsyncServiceClient,
    ReleaseServer,
    ServerConfig,
)

HORIZON = 6
N_CELLS = 16

#: Families the CI smoke greps for; keep in sync with .github/workflows.
REQUIRED_FAMILIES = (
    "repro_requests_total",
    "repro_errors_total",
    "repro_failures_total",
    "repro_step_latency_seconds_bucket",
    "repro_sessions_open",
    "repro_executor_queue_depth",
    "repro_event_loop_lag_seconds",
    "repro_spans_total",
    "repro_solver_kernel_info",
    "repro_solver_native_conditions_total",
    "repro_solver_numpy_conditions_total",
    "repro_front_sparse_matmuls_total",
    "repro_front_dense_matmuls_total",
)


def make_builder() -> SessionBuilder:
    grid = GridMap(4, 4, cell_size_km=1.0)
    from repro.markov.synthetic import gaussian_kernel_transitions

    chain = gaussian_kernel_transitions(grid, sigma=1.0)
    initial = np.full(N_CELLS, 1.0 / N_CELLS)
    return (
        SessionBuilder()
        .with_grid(grid)
        .with_chain(chain)
        .protecting(PresenceEvent(Region.from_range(N_CELLS, 0, 5), start=2, end=4))
        .with_mechanism(PlanarLaplaceMechanism(grid, 0.5))
        .with_epsilon(0.5)
        .with_fixed_prior(initial)
        .with_horizon(HORIZON)
    )


def make_manager() -> SessionManager:
    return SessionManager(make_builder())


def _fetch(port, path):
    """Blocking fetch -> (status, body); call only via run_in_executor."""
    try:
        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}{path}", timeout=10
        ) as response:
            return response.status, response.read().decode()
    except urllib.error.HTTPError as error:
        return error.code, error.read().decode()


async def _get(port, path):
    loop = asyncio.get_running_loop()
    return await loop.run_in_executor(None, _fetch, port, path)


def _spans_by_trace(spans):
    grouped: dict[str, list[dict]] = {}
    for span in spans:
        grouped.setdefault(span["trace"], []).append(span)
    return grouped


async def _drive(server, n_steps=3):
    """Open one session, run a few steps, return the stats payload."""
    client = await AsyncServiceClient.connect("127.0.0.1", server.port)
    try:
        await client.open("alice", seed=11)
        for cell in range(n_steps):
            await client.step("alice", cell)
        return await client.stats(spans=200)
    finally:
        await client.close()


class TestTracedSpansViaStats:
    def test_in_process_step_trace_chain(self):
        async def main():
            server = ReleaseServer(
                make_manager(), config=ServerConfig(metrics_port=0)
            )
            await server.start()
            try:
                stats = await _drive(server)
                tracing = stats["tracing"]
                assert tracing["enabled"] is True
                assert tracing["count"] > 0
                step_traces = [
                    spans
                    for spans in _spans_by_trace(stats["spans"]["recent"]).values()
                    if any(
                        s["name"] == "request" and s.get("op") == "step"
                        for s in spans
                    )
                ]
                assert step_traces, "no traced step found in recent spans"
                names = {span["name"] for span in step_traces[-1]}
                assert {"queue_wait", "solve", "serialize", "request"} <= names
                for span in step_traces[-1]:
                    assert span["ms"] >= 0.0
                    assert len(span["span"]) == 8
            finally:
                await server.drain()

        asyncio.run(main())

    def test_sharded_step_trace_includes_rpc_and_worker_solve(self):
        async def main():
            server = ReleaseServer(
                ShardPool(make_manager, 2), config=ServerConfig(metrics_port=0)
            )
            await server.start()
            try:
                stats = await _drive(server)
                step_traces = [
                    spans
                    for spans in _spans_by_trace(stats["spans"]["recent"]).values()
                    if any(
                        s["name"] == "request" and s.get("op") == "step"
                        for s in spans
                    )
                ]
                assert step_traces
                chain = step_traces[-1]
                names = {span["name"] for span in chain}
                assert {"queue_wait", "rpc", "serialize", "request"} <= names
                # the rpc span names the shard that solved the step
                rpc = next(s for s in chain if s["name"] == "rpc")
                assert rpc["shard"] in (0, 1)
            finally:
                await server.drain()

        asyncio.run(main())

    def test_stats_without_spans_key_omits_buffers(self):
        async def main():
            server = ReleaseServer(make_manager(), config=ServerConfig())
            await server.start()
            try:
                client = await AsyncServiceClient.connect(
                    "127.0.0.1", server.port
                )
                try:
                    stats = await client.stats()
                finally:
                    await client.close()
                assert "spans" not in stats
                assert stats["tracing"]["enabled"] is True
            finally:
                await server.drain()

        asyncio.run(main())

    def test_tracing_disabled_records_nothing(self):
        async def main():
            server = ReleaseServer(
                make_manager(), config=ServerConfig(trace=False)
            )
            await server.start()
            try:
                stats = await _drive(server)
                assert stats["tracing"]["enabled"] is False
                assert stats["tracing"]["count"] == 0
                assert stats["spans"] == {"recent": [], "slow": []}
            finally:
                await server.drain()

        asyncio.run(main())

    def test_slow_request_log_catches_threshold_crossers(self):
        async def main():
            # Every span is "slow" at a 0-ish threshold.
            server = ReleaseServer(
                make_manager(),
                config=ServerConfig(slow_request_ms=1e-6),
            )
            await server.start()
            try:
                stats = await _drive(server, n_steps=1)
                assert stats["tracing"]["slow_count"] > 0
                assert stats["spans"]["slow"]
            finally:
                await server.drain()

        asyncio.run(main())


class TestExpositionAndProbes:
    def test_metrics_families_and_probes(self):
        async def main():
            server = ReleaseServer(
                ShardPool(make_manager, 2), config=ServerConfig(metrics_port=0)
            )
            await server.start()
            try:
                assert server.metrics_port not in (None, 0)
                await _drive(server)
                status, body = await _get(server.metrics_port, "/healthz")
                assert status == 200
                status, body = await _get(server.metrics_port, "/readyz")
                assert status == 200
                assert "2 workers" in body
                status, text = await _get(server.metrics_port, "/metrics")
                assert status == 200
                for family in REQUIRED_FAMILIES:
                    assert family in text, f"missing family {family}"
                # per-worker split rendered from handle-local state
                assert 'repro_worker_up{worker="shard-0"} 1' in text
                assert 'repro_worker_up{worker="shard-1"} 1' in text
                assert "repro_worker_rpc_latency_seconds_bucket" in text
                assert 'repro_requests_total{op="step"} 3' in text
                # loss counters present at zero before anything dies
                assert 'repro_failures_total{kind="sessions_lost"} 0' in text
            finally:
                await server.drain()

        asyncio.run(main())

    def test_stats_solver_section_and_kernel_info_gauge(self):
        async def main():
            # Worst-case prior routes checks through the rank-one QP
            # solver, so the kernel-usage counters must move.
            manager = SessionManager(make_builder().with_worst_case_prior())
            server = ReleaseServer(
                manager, config=ServerConfig(metrics_port=0)
            )
            await server.start()
            try:
                stats = await _drive(server, n_steps=2)
                solver = stats["solver"]
                kernel = solver["kernel"]
                assert kernel["kernel"] in ("auto", "native", "numpy")
                assert kernel["native_state"] in (
                    "unloaded",
                    "disabled",
                    "native",
                    "unavailable",
                )
                # steps solved conditions through exactly one backend
                solved = kernel["native_conditions"] + kernel["numpy_conditions"]
                assert solved > 0
                front = solver["front"]
                assert front["mode"] in ("auto", "always", "never")
                assert front["sparse_models"] + front["dense_models"] >= 1
                status, text = await _get(server.metrics_port, "/metrics")
                assert status == 200
                assert 'repro_solver_kernel_info{kernel="' in text
            finally:
                await server.drain()

        asyncio.run(main())

    def test_readyz_flips_when_a_shard_dies(self):
        async def main():
            pool = ShardPool(make_manager, 2)
            server = ReleaseServer(pool, config=ServerConfig(metrics_port=0))
            await server.start()
            try:
                await _drive(server, n_steps=1)
                status, _ = await _get(server.metrics_port, "/readyz")
                assert status == 200
                pool._handles[0]._process.kill()
                pool._handles[0]._process.join(10)
                status, body = await _get(server.metrics_port, "/readyz")
                assert status == 503
                assert "shard-0" in body
                status, text = await _get(server.metrics_port, "/metrics")
                assert status == 200
                assert 'repro_worker_up{worker="shard-0"} 0' in text
                assert 'repro_worker_up{worker="shard-1"} 1' in text
            finally:
                await server.drain()

        asyncio.run(main())

    def test_no_metrics_port_means_no_listener(self):
        async def main():
            server = ReleaseServer(make_manager(), config=ServerConfig())
            await server.start()
            try:
                assert server.metrics_port is None
            finally:
                await server.drain()

        asyncio.run(main())

    def test_readyz_reports_draining(self):
        async def main():
            server = ReleaseServer(
                make_manager(), config=ServerConfig(metrics_port=0)
            )
            await server.start()
            port = server.metrics_port
            server._draining.set()
            try:
                status, body = await _get(port, "/readyz")
                assert status == 503
                assert "draining" in body
            finally:
                await server.drain()

        asyncio.run(main())
