"""Unit tests for the incremental joint-probability quantifier."""

import numpy as np
import pytest

from repro.core.baseline import enumerate_joint
from repro.core.joint import (
    EventQuantifier,
    joint_probability,
    observation_probability,
)
from repro.core.two_world import TwoWorldModel
from repro.errors import QuantificationError
from repro.events.events import PatternEvent, PresenceEvent
from repro.geo.regions import Region

from conftest import random_chain, random_emission


def _columns(emission: np.ndarray, observations) -> np.ndarray:
    return np.stack([emission[:, o] for o in observations])


class TestAgainstEnumeration:
    @pytest.mark.parametrize("upto", [1, 2, 3, 4, 5, 6])
    def test_presence_joint(self, rng, upto):
        chain = random_chain(3, rng)
        emission = random_emission(3, rng)
        event = PresenceEvent(Region.from_cells(3, [0, 1]), start=3, end=4)
        model = TwoWorldModel(chain, event, horizon=6)
        pi = np.array([0.25, 0.5, 0.25])
        observations = [0, 2, 1, 0, 1, 2]
        cols = _columns(emission, observations)
        fast = joint_probability(model, pi, cols, upto_t=upto)
        slow = enumerate_joint(chain, event, pi, cols, upto_t=upto)
        assert fast == pytest.approx(slow, rel=1e-10)

    @pytest.mark.parametrize("upto", [1, 3, 5])
    def test_pattern_joint(self, rng, upto):
        chain = random_chain(3, rng)
        emission = random_emission(3, rng)
        event = PatternEvent(
            [Region.from_cells(3, [0, 1]), Region.from_cells(3, [1, 2])], start=2
        )
        model = TwoWorldModel(chain, event, horizon=5)
        pi = np.array([0.4, 0.3, 0.3])
        observations = [1, 1, 0, 2, 0]
        cols = _columns(emission, observations)
        fast = joint_probability(model, pi, cols, upto_t=upto)
        slow = enumerate_joint(chain, event, pi, cols, upto_t=upto)
        assert fast == pytest.approx(slow, rel=1e-10)

    def test_observation_probability_decomposes(self, rng):
        """Pr(o) = Pr(o, EVENT) + Pr(o, not EVENT) at every prefix."""
        chain = random_chain(3, rng)
        emission = random_emission(3, rng)
        event = PresenceEvent(Region.from_cells(3, [2]), start=2, end=3)
        model = TwoWorldModel(chain, event, horizon=5)
        pi = np.array([0.2, 0.2, 0.6])
        observations = [0, 1, 2, 1, 0]
        cols = _columns(emission, observations)
        for upto in range(1, 6):
            total = observation_probability(model, pi, cols, upto_t=upto)
            with_event = joint_probability(model, pi, cols, upto_t=upto)
            without = enumerate_joint(
                chain, ~event.to_expression(), pi, cols, upto_t=upto
            )
            assert total == pytest.approx(with_event + without, rel=1e-10)


class TestQuantifierProtocol:
    def _setup(self, rng):
        chain = random_chain(3, rng)
        event = PresenceEvent(Region.from_cells(3, [0]), start=2, end=3)
        model = TwoWorldModel(chain, event, horizon=5)
        return model, random_emission(3, rng)

    def test_prepare_out_of_order_rejected(self, rng):
        model, _ = self._setup(rng)
        quantifier = EventQuantifier(model)
        with pytest.raises(QuantificationError):
            quantifier.prepare(2)

    def test_candidate_requires_prepare(self, rng):
        model, emission = self._setup(rng)
        quantifier = EventQuantifier(model)
        with pytest.raises(QuantificationError):
            quantifier.candidate_bc(1, emission[:, 0])

    def test_commit_requires_prepare(self, rng):
        model, emission = self._setup(rng)
        quantifier = EventQuantifier(model)
        with pytest.raises(QuantificationError):
            quantifier.commit(1, emission[:, 0])

    def test_prepare_beyond_horizon_rejected(self, rng):
        model, emission = self._setup(rng)
        quantifier = EventQuantifier(model)
        for t in range(1, 6):
            quantifier.prepare(t)
            quantifier.commit(t, emission[:, 0])
        with pytest.raises(QuantificationError):
            quantifier.prepare(6)

    def test_candidates_do_not_mutate_state(self, rng):
        model, emission = self._setup(rng)
        quantifier = EventQuantifier(model)
        quantifier.prepare(1)
        b1, c1 = quantifier.candidate_bc(1, emission[:, 0])
        # Trying a different candidate must not change the first's answer.
        quantifier.candidate_bc(1, emission[:, 1])
        b2, c2 = quantifier.candidate_bc(1, emission[:, 0])
        assert np.allclose(b1, b2)
        assert np.allclose(c1, c2)

    def test_bad_column_shape_rejected(self, rng):
        model, _ = self._setup(rng)
        quantifier = EventQuantifier(model)
        quantifier.prepare(1)
        with pytest.raises(QuantificationError):
            quantifier.candidate_bc(1, np.ones(4))

    def test_column_out_of_unit_interval_rejected(self, rng):
        model, _ = self._setup(rng)
        quantifier = EventQuantifier(model)
        quantifier.prepare(1)
        with pytest.raises(QuantificationError):
            quantifier.candidate_bc(1, np.array([0.5, 1.5, 0.2]))

    def test_scaling_invariant_bc(self, rng):
        """b, c with the log_scale undone must equal the direct joints."""
        model, emission = self._setup(rng)
        quantifier = EventQuantifier(model)
        pi = np.array([0.3, 0.4, 0.3])
        observations = [0, 1, 2, 0, 1]
        cols = _columns(emission, observations)
        for t in range(1, 6):
            quantifier.prepare(t)
            b, c = quantifier.candidate_bc(t, cols[t - 1])
            # Candidates are relative to the *committed* scale, so read
            # log_scale before committing t.
            scale = np.exp(quantifier.log_scale)
            quantifier.commit(t, cols[t - 1])
            joint_scaled, total_scaled = quantifier.joint_probabilities(pi, b, c)
            assert joint_scaled * scale == pytest.approx(
                joint_probability(model, pi, cols, upto_t=t), rel=1e-9
            )
            assert total_scaled * scale == pytest.approx(
                observation_probability(model, pi, cols, upto_t=t), rel=1e-9
            )

    def test_long_sequence_no_underflow(self, rng):
        """200 timestamps: scaled fronts stay finite and non-zero."""
        chain = random_chain(4, rng)
        event = PresenceEvent(Region.from_cells(4, [0]), start=2, end=3)
        model = TwoWorldModel(chain, event, horizon=200)
        emission = random_emission(4, rng)
        quantifier = EventQuantifier(model)
        for t in range(1, 201):
            quantifier.prepare(t)
            col = emission[:, int(rng.integers(4))]
            b, c = quantifier.candidate_bc(t, col)
            quantifier.commit(t, col)
        assert np.all(np.isfinite(b)) and np.all(np.isfinite(c))
        assert float(c.max()) > 1e-10  # rescaling kept values in range
        assert quantifier.log_scale < 0  # scale factored out, recorded
