"""Unit tests for JSON serialization."""

import numpy as np
import pytest

from repro.core.priste import ReleaseLog, ReleaseRecord
from repro.errors import ValidationError
from repro.events.events import PatternEvent, PresenceEvent
from repro.geo.grid import GridMap
from repro.geo.regions import Region
from repro.io import (
    chain_from_dict,
    chain_to_dict,
    event_from_dict,
    event_to_dict,
    grid_from_dict,
    grid_to_dict,
    load_json,
    release_log_from_dict,
    release_log_to_dict,
    save_json,
)
from repro.markov.transition import TransitionMatrix


class TestGridRoundtrip:
    def test_roundtrip(self):
        grid = GridMap(3, 5, cell_size_km=0.7, origin_km=(1.0, -2.0))
        again = grid_from_dict(grid_to_dict(grid))
        assert again == grid

    def test_wrong_kind_rejected(self):
        with pytest.raises(ValidationError):
            grid_from_dict({"kind": "chain"})


class TestChainRoundtrip:
    def test_roundtrip(self, paper_chain):
        again = chain_from_dict(chain_to_dict(paper_chain))
        assert np.allclose(again.matrix, paper_chain.matrix)


class TestEventRoundtrip:
    def test_presence(self):
        event = PresenceEvent(Region.from_cells(9, [1, 2]), start=2, end=4)
        again = event_from_dict(event_to_dict(event))
        assert isinstance(again, PresenceEvent)
        assert again.region == event.region
        assert again.window == event.window

    def test_pattern(self):
        event = PatternEvent(
            [Region.from_cells(9, [0]), Region.from_cells(9, [3, 4])], start=3
        )
        again = event_from_dict(event_to_dict(event))
        assert isinstance(again, PatternEvent)
        assert again.regions == event.regions
        assert again.start == event.start

    def test_unknown_type_rejected(self):
        with pytest.raises(ValidationError):
            event_from_dict({"kind": "event", "type": "mystery", "n_cells": 3})


class TestReleaseLogRoundtrip:
    def _log(self, with_emissions: bool) -> ReleaseLog:
        records = [
            ReleaseRecord(1, 0, 2, 0.5, 1, False, False, 0.01),
            ReleaseRecord(2, 1, 1, 0.25, 3, True, False, 0.02),
        ]
        matrices = None
        if with_emissions:
            matrices = [np.eye(3), np.full((3, 3), 1 / 3)]
        return ReleaseLog(records=records, emission_matrices=matrices)

    def test_roundtrip_without_emissions(self):
        log = self._log(with_emissions=False)
        again = release_log_from_dict(release_log_to_dict(log))
        assert again.records == log.records
        assert again.emission_matrices is None

    def test_roundtrip_with_emissions(self):
        log = self._log(with_emissions=True)
        again = release_log_from_dict(release_log_to_dict(log))
        assert len(again.emission_matrices) == 2
        assert np.allclose(again.emission_matrices[0], np.eye(3))
        assert np.allclose(again.emission_stack(), log.emission_stack())


class TestFiles:
    def test_save_and_load(self, tmp_path, paper_chain):
        path = str(tmp_path / "artifacts" / "chain.json")
        save_json(paper_chain, path)
        again = load_json(path)
        assert np.allclose(again.matrix, paper_chain.matrix)

    def test_each_kind_dispatches(self, tmp_path):
        grid = GridMap(2, 2)
        event = PresenceEvent(Region.from_cells(4, [0]), start=1, end=1)
        for name, obj in (("g", grid), ("e", event)):
            path = str(tmp_path / f"{name}.json")
            save_json(obj, path)
            assert type(load_json(path)) is type(obj)

    def test_unsupported_type_rejected(self, tmp_path):
        with pytest.raises(ValidationError):
            save_json(object(), str(tmp_path / "x.json"))

    def test_unknown_kind_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"kind": "widget"}')
        with pytest.raises(ValidationError):
            load_json(str(path))
