"""Deadline-aware load shedding: the overload-resilience guarantees.

The load-bearing claims of :mod:`repro.service.shedding`:

* both triggers (blown deadline, sustained queue delay) fire strictly
  *before* execution, so a shed never touches session state and a
  retried request observes the exact stream it would have seen without
  the shed -- bit-identical;
* the queue-delay trigger sheds in priority order (``open`` before
  ``step``), never sheds ``finish``, and clears itself once the
  backlog drains instead of shedding forever on a stale estimate;
* a shed arrives at the client as the typed retryable ``overloaded``
  code with a ``retry_after_ms`` hint, and a client-side
  :class:`~repro.service.RetryPolicy` waits the hint out and re-sends.
"""

import asyncio
import time

import pytest

from repro.errors import OverloadedError
from repro.service import (
    AsyncServiceClient,
    LoadShedder,
    ReleaseServer,
    RetryPolicy,
    ServerConfig,
    ServiceClient,
    ShedConfig,
)
from repro.service.metrics import ServiceMetrics
from repro.service.shedding import SHED_PRIORITY

from test_service_server import (
    HORIZON,
    direct_records,
    make_builder,
    make_trajectories,
    start_server,
    strip_elapsed,
)


def overloaded_shedder(
    target_ms: float = 1.0, interval_ms: float = 50.0, **kwargs
) -> LoadShedder:
    """A shedder pushed past level 2 by synthetic observations."""
    shedder = LoadShedder(
        ShedConfig(target_ms=target_ms, interval_ms=interval_ms), **kwargs
    )
    now = time.perf_counter()
    with shedder._lock:
        shedder._delay_ewma_s = 0.5
        shedder._last_observe = now
        shedder._above_since = now - 3.0 * interval_ms / 1e3
    return shedder


class TestLoadShedder:
    def test_fresh_shedder_admits_everything(self):
        shedder = LoadShedder()
        for op in ("open", "step", "finish", "peek_budget"):
            shedder.admit(op, deadline_ms=None)
            shedder.admit(op, deadline_ms=1)
        assert shedder.level == 0 and not shedder.brownout

    def test_admission_deadline_shed_uses_the_estimate(self):
        shedder = overloaded_shedder()
        with pytest.raises(OverloadedError) as info:
            shedder.admit("step", deadline_ms=100)  # estimate is 500ms
        assert info.value.retry_after_ms >= 50
        # a roomier budget than the estimate passes the deadline check
        # (queue-delay still applies separately)
        shedder = overloaded_shedder(target_ms=0.0)
        shedder.admit("step", deadline_ms=10_000)

    def test_check_deadline_boundaries(self):
        shedder = LoadShedder()
        with pytest.raises(OverloadedError):
            shedder.check_deadline("step", deadline_ms=50, waited_s=0.2)
        shedder.check_deadline("step", deadline_ms=50, waited_s=0.01)
        shedder.check_deadline("step", deadline_ms=None, waited_s=9.9)

    def test_queue_delay_sheds_by_priority(self):
        """Level 2: ``open`` and ``step`` shed, ``finish`` never does."""
        shedder = overloaded_shedder()
        assert shedder.level == 2
        with pytest.raises(OverloadedError):
            shedder.admit("open", deadline_ms=None)
        with pytest.raises(OverloadedError):
            shedder.admit("step", deadline_ms=None)
        shedder.admit("finish", deadline_ms=None)
        shedder.admit("peek_budget", deadline_ms=None)
        shedder.admit("checkpoint", deadline_ms=None)

    def test_level_one_sheds_open_but_not_step(self):
        shedder = overloaded_shedder()
        with shedder._lock:  # sustained for 1.5 intervals: level 1
            shedder._above_since = time.perf_counter() - 0.075
        assert shedder.level == 1
        assert shedder.brownout
        with pytest.raises(OverloadedError):
            shedder.admit("open", deadline_ms=None)
        shedder.admit("step", deadline_ms=None)

    def test_priority_map_orders_open_before_step(self):
        assert SHED_PRIORITY["open"] < SHED_PRIORITY["step"]
        assert "finish" not in SHED_PRIORITY

    def test_drained_queue_clears_the_overload(self):
        """The stale-estimate guard: an empty executor queue resets the
        trigger, so a server that shed everything re-admits instead of
        shedding forever on the old number."""
        shedder = overloaded_shedder(queue_depth=lambda: 0)
        assert shedder.level == 0
        assert shedder.delay_ms == 0.0
        shedder.admit("step", deadline_ms=100)

    def test_idle_interval_clears_the_overload(self):
        shedder = overloaded_shedder(interval_ms=50.0)
        with shedder._lock:
            shedder._last_observe = time.perf_counter() - 0.2
        assert shedder.level == 0
        shedder.admit("open", deadline_ms=None)

    def test_observations_drive_the_trigger_end_to_end(self):
        shedder = LoadShedder(ShedConfig(target_ms=1.0, interval_ms=20.0))
        # a sustained stream of 100ms waits: the EWMA breaches the 1ms
        # target at once and stays there past two 20ms intervals
        deadline = time.perf_counter() + 2.0
        while shedder.level < 2 and time.perf_counter() < deadline:
            shedder.observe(0.1)
            time.sleep(0.005)
        assert shedder.delay_ms > 1.0
        assert shedder.level == 2
        for _ in range(64):
            shedder.observe(0.0)  # the backlog clears through the EWMA
        assert shedder.level == 0

    def test_disabled_target_never_trips_queue_delay(self):
        shedder = overloaded_shedder(target_ms=0.0)
        assert shedder.level == 0 and not shedder.brownout
        shedder.admit("open", deadline_ms=None)
        # deadline shedding still applies to requests that carry one
        with pytest.raises(OverloadedError):
            shedder.admit("step", deadline_ms=100)

    def test_retry_after_is_clamped_and_sized_to_drain(self):
        shedder = overloaded_shedder(interval_ms=50.0)
        with pytest.raises(OverloadedError) as info:
            shedder.admit("step", deadline_ms=None)
        # 500ms estimated drain > the 50ms interval floor
        assert info.value.retry_after_ms == 500
        with shedder._lock:
            shedder._delay_ewma_s = 100.0
        with pytest.raises(OverloadedError) as info:
            shedder.admit("step", deadline_ms=None)
        assert info.value.retry_after_ms == 10_000  # ceiling

    def test_sheds_are_counted_by_op_and_reason(self):
        metrics = ServiceMetrics()
        shedder = overloaded_shedder(metrics=metrics)
        for _ in range(2):
            with pytest.raises(OverloadedError):
                shedder.admit("step", deadline_ms=None)
        with pytest.raises(OverloadedError):
            shedder.admit("step", deadline_ms=10)
        shed = metrics.snapshot()["shed"]
        assert shed["step|queue_delay"] == 2
        assert shed["step|deadline"] == 1

    def test_stats_shape(self):
        stats = LoadShedder().stats()
        assert stats["enabled"] is True
        assert stats["overload_level"] == 0
        assert stats["brownout"] is False
        assert stats["queue_delay_ewma_ms"] == 0.0


class TestRetryPolicy:
    def test_server_hint_is_authoritative(self):
        policy = RetryPolicy(base_wait_s=0.05)
        assert policy.wait_s(0, retry_after_ms=200) == 0.2
        assert policy.wait_s(3, retry_after_ms=200) == 0.2

    def test_backoff_grows_without_a_hint(self):
        policy = RetryPolicy(base_wait_s=0.05, backoff=2.0)
        waits = [policy.wait_s(a, None) for a in range(3)]
        assert waits == [0.05, 0.1, 0.2]

    def test_caps_apply_to_both_paths(self):
        policy = RetryPolicy(base_wait_s=1.0, backoff=10.0, max_wait_s=2.0)
        assert policy.wait_s(5, None) == 2.0
        assert policy.wait_s(0, retry_after_ms=60_000) == 2.0


def force_overload(server: ReleaseServer, interval_ms: float = 60.0) -> None:
    """Push the server's shedder to level 2 without a queue_depth probe,
    so the state stands until the idle-interval guard clears it --
    exactly one retry interval later."""
    shedder = LoadShedder(
        ShedConfig(target_ms=1.0, interval_ms=interval_ms),
        metrics=server._metrics,
    )
    now = time.perf_counter()
    with shedder._lock:
        shedder._delay_ewma_s = 0.2
        shedder._last_observe = now
        shedder._above_since = now - 3.0 * interval_ms / 1e3
    server._shedder = shedder


class TestServedShedding:
    def test_shed_step_is_typed_and_retryable_on_the_wire(self):
        async def run():
            server = await start_server()
            client = await AsyncServiceClient.connect("127.0.0.1", server.port)
            await client.open("u0", seed=1)
            force_overload(server)
            with pytest.raises(OverloadedError) as info:
                await client.step("u0", 3)
            await client.close()
            await server.drain()
            return info.value

        error = asyncio.run(run())
        assert error.retry_after_ms is not None
        assert 50 <= error.retry_after_ms <= 10_000

    def test_retried_shed_stream_stays_bit_identical(self):
        """A shed mid-stream, healed by the client's RetryPolicy, leaves
        the stream byte-for-byte what an unshed run produces: sheds
        happen strictly before execution, so the retry is the first
        time the step runs."""
        trajectories = make_trajectories(2)
        reference = direct_records(trajectories)

        async def run():
            server = await start_server()
            client = await AsyncServiceClient.connect(
                "127.0.0.1",
                server.port,
                retry=RetryPolicy(max_retries=4, base_wait_s=0.02),
            )
            for i, name in enumerate(trajectories):
                await client.open(name, seed=1000 + i)
            served = {name: [] for name in trajectories}
            for t in range(HORIZON):
                if t == 2:  # overload lands mid-stream
                    force_overload(server, interval_ms=60.0)
                for name, trajectory in trajectories.items():
                    served[name].append(await client.step(name, trajectory[t]))
            stats = await client.stats()
            await client.close()
            await server.drain()
            return served, stats

        served, stats = asyncio.run(run())
        for name, expected in reference.items():
            actual = [strip_elapsed(r) for r in served[name]]
            assert actual == [strip_elapsed(r) for r in expected]
        # the drill really shed (then healed): typed, counted sheds
        assert stats["shed"].get("step|queue_delay", 0) > 0

    def test_sync_client_retries_too(self):
        trajectories = make_trajectories(1)
        reference = direct_records(trajectories)
        name = next(iter(trajectories))

        async def run():
            server = await start_server()
            loop = asyncio.get_running_loop()

            def drive():
                client = ServiceClient(
                    "127.0.0.1",
                    server.port,
                    retry=RetryPolicy(max_retries=4, base_wait_s=0.02),
                )
                client.open(name, seed=1000)
                records = []
                for t, cell in enumerate(trajectories[name]):
                    if t == 1:
                        force_overload(server, interval_ms=60.0)
                    records.append(client.step(name, cell))
                client.close()
                return records

            records = await loop.run_in_executor(None, drive)
            shed = server._metrics.snapshot()["shed"]
            await server.drain()
            return records, shed

        records, shed = asyncio.run(run())
        assert [strip_elapsed(r) for r in records] == [
            strip_elapsed(r) for r in reference[name]
        ]
        assert shed.get("step|queue_delay", 0) > 0

    def test_without_retry_policy_the_error_propagates(self):
        async def run():
            server = await start_server()
            client = await AsyncServiceClient.connect("127.0.0.1", server.port)
            await client.open("u0", seed=1)
            force_overload(server)
            try:
                with pytest.raises(OverloadedError):
                    await client.step("u0", 3)
            finally:
                await client.close()
                await server.drain()

        asyncio.run(run())

    def test_deadline_ms_rides_the_wire_and_sheds(self):
        """A request deadline below the (forced) delay estimate sheds
        with reason ``deadline``; a roomy one passes."""

        async def run():
            server = await start_server()
            client = await AsyncServiceClient.connect("127.0.0.1", server.port)
            await client.open("u0", seed=1)
            # healthy server: a tight deadline is still served
            record = await client.step("u0", 3, deadline_ms=30_000)
            force_overload(server)
            with pytest.raises(OverloadedError):
                await client.step("u0", 5, deadline_ms=10)
            shed = server._metrics.snapshot()["shed"]
            await client.close()
            await server.drain()
            return record, shed

        record, shed = asyncio.run(run())
        assert record["t"] == 1
        assert shed.get("step|deadline", 0) == 1

    def test_finish_survives_overload(self):
        """`finish` is never shed by queue delay: completing sessions
        reduces load, so it must stay possible under brownout."""

        async def run():
            server = await start_server()
            client = await AsyncServiceClient.connect("127.0.0.1", server.port)
            await client.open("u0", seed=1)
            await client.step("u0", 3)
            force_overload(server)
            summary = await client.finish("u0")
            stats = await client.stats()
            await client.close()
            await server.drain()
            return summary, stats

        summary, stats = asyncio.run(run())
        assert summary["n_released"] == 1
        assert stats["shedding"]["overload_level"] >= 1

    def test_brownout_reports_in_stats(self):
        async def run():
            server = await start_server()
            client = await AsyncServiceClient.connect("127.0.0.1", server.port)
            force_overload(server)
            stats = await client.stats()
            await client.close()
            await server.drain()
            return stats

        stats = asyncio.run(run())
        shedding = stats["shedding"]
        assert shedding["overload_level"] == 2
        assert shedding["brownout"] is True
        assert shedding["above_target_for_s"] > 0
