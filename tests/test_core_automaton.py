"""Unit tests for the generalized automaton engine (extension)."""

import numpy as np
import pytest

from repro.core.automaton_engine import AutomatonModel
from repro.core.baseline import enumerate_joint, enumerate_prior
from repro.core.joint import joint_probability
from repro.core.two_world import TwoWorldModel
from repro.errors import EventError
from repro.events.events import PatternEvent, PresenceEvent
from repro.events.expressions import at, in_region
from repro.geo.regions import Region

from conftest import random_chain, random_emission


def _columns(emission, observations):
    return np.stack([emission[:, o] for o in observations])


class TestAgreementWithTwoWorld:
    """PRESENCE/PATTERN must agree exactly with the paper's construction."""

    @pytest.mark.parametrize("start,end", [(1, 2), (2, 4), (3, 3)])
    def test_presence_prior(self, rng, start, end):
        chain = random_chain(3, rng)
        event = PresenceEvent(Region.from_cells(3, [0, 2]), start=start, end=end)
        two_world = TwoWorldModel(chain, event, horizon=5)
        automaton = AutomatonModel(chain, event, horizon=5)
        assert np.allclose(automaton.prior_vector(), two_world.prior_vector())

    @pytest.mark.parametrize("start", [1, 2])
    def test_pattern_joints(self, rng, start):
        chain = random_chain(3, rng)
        emission = random_emission(3, rng)
        event = PatternEvent(
            [Region.from_cells(3, [0, 1]), Region.from_cells(3, [1, 2])],
            start=start,
        )
        two_world = TwoWorldModel(chain, event, horizon=5)
        automaton = AutomatonModel(chain, event, horizon=5)
        pi = np.array([0.3, 0.4, 0.3])
        cols = _columns(emission, [0, 1, 2, 0, 1])
        for upto in range(1, 6):
            fast = joint_probability(two_world, pi, cols, upto_t=upto)
            general = automaton.joint_probability(pi, cols, upto_t=upto)
            assert general == pytest.approx(fast, rel=1e-10), f"t={upto}"


class TestArbitraryEvents:
    """Events outside PRESENCE/PATTERN, checked against full enumeration."""

    def _check(self, rng, expression, horizon=4):
        chain = random_chain(3, rng)
        emission = random_emission(3, rng)
        model = AutomatonModel(chain, expression, horizon=horizon)
        pi = np.array([0.25, 0.35, 0.4])
        assert model.prior_probability(pi) == pytest.approx(
            enumerate_prior(chain, expression, pi), abs=1e-12
        )
        cols = _columns(emission, [0, 2, 1, 0][:horizon])
        for upto in range(1, horizon + 1):
            general = model.joint_probability(pi, cols, upto_t=upto)
            slow = enumerate_joint(chain, expression, pi, cols, upto_t=upto)
            assert general == pytest.approx(slow, abs=1e-12), f"t={upto}"

    def test_negated_presence(self, rng):
        event = PresenceEvent(Region.from_cells(3, [1]), start=2, end=3)
        self._check(rng, ~event.to_expression())

    def test_conditional_visit(self, rng):
        # "at region at t=1 but NOT at t=3" -- Fig. 1-style combination.
        self._check(rng, in_region(1, [0, 1]) & ~in_region(3, [0, 1]))

    def test_disjunction_of_trajectories(self, rng):
        expr = (at(1, 0) & at(2, 1)) | (at(1, 2) & at(2, 2))
        self._check(rng, expr)

    def test_gap_window(self, rng):
        self._check(rng, at(1, 0) & at(3, 2))

    def test_exactly_one_visit(self, rng):
        visits = [in_region(t, [0]) for t in (1, 2, 3)]
        exactly_one = (
            (visits[0] & ~visits[1] & ~visits[2])
            | (~visits[0] & visits[1] & ~visits[2])
            | (~visits[0] & ~visits[1] & visits[2])
        )
        self._check(rng, exactly_one)


class TestValidation:
    def test_rejects_event_beyond_horizon(self, paper_chain):
        with pytest.raises(EventError):
            AutomatonModel(paper_chain, at(5, 0), horizon=3)

    def test_rejects_unknown_cells(self, paper_chain):
        with pytest.raises(EventError):
            AutomatonModel(paper_chain, at(1, 7), horizon=3)

    def test_rejects_garbage(self, paper_chain):
        with pytest.raises(EventError):
            AutomatonModel(paper_chain, 42, horizon=3)

    def test_accepts_precompiled(self, paper_chain):
        from repro.events.compiler import compile_event

        compiled = compile_event(at(1, 0))
        model = AutomatonModel(paper_chain, compiled, horizon=3)
        assert model.start == model.end == 1
