"""Unit tests for the shared validation helpers."""

import numpy as np
import pytest

from repro._validation import (
    as_float_array,
    check_emission_matrix,
    check_index,
    check_indicator_vector,
    check_non_negative,
    check_positive,
    check_probability_vector,
    check_stochastic_matrix,
    check_timestamp,
    check_unit_interval,
    resolve_rng,
)
from repro.errors import ValidationError


class TestAsFloatArray:
    def test_accepts_lists(self):
        arr = as_float_array([1, 2, 3])
        assert arr.dtype == np.float64
        assert arr.tolist() == [1.0, 2.0, 3.0]

    def test_rejects_nan(self):
        with pytest.raises(ValidationError, match="NaN or infinite"):
            as_float_array([1.0, float("nan")])

    def test_rejects_inf(self):
        with pytest.raises(ValidationError):
            as_float_array([float("inf")])

    def test_rejects_non_numeric(self):
        with pytest.raises(ValidationError):
            as_float_array(["a", "b"])


class TestProbabilityVector:
    def test_valid(self):
        vec = check_probability_vector([0.25, 0.25, 0.5])
        assert vec.sum() == pytest.approx(1.0)

    def test_renormalizes_tiny_drift(self):
        vec = check_probability_vector([0.5, 0.5 + 1e-12])
        assert vec.sum() == pytest.approx(1.0, abs=1e-15)

    def test_rejects_negative(self):
        with pytest.raises(ValidationError, match="negative"):
            check_probability_vector([1.2, -0.2])

    def test_rejects_bad_sum(self):
        with pytest.raises(ValidationError, match="sums to"):
            check_probability_vector([0.3, 0.3])

    def test_rejects_2d(self):
        with pytest.raises(ValidationError, match="1-D"):
            check_probability_vector([[1.0]])

    def test_rejects_empty(self):
        with pytest.raises(ValidationError, match="non-empty"):
            check_probability_vector([])


class TestStochasticMatrix:
    def test_valid(self):
        mat = check_stochastic_matrix([[0.5, 0.5], [0.1, 0.9]])
        assert mat.shape == (2, 2)

    def test_rejects_non_square(self):
        with pytest.raises(ValidationError, match="square"):
            check_stochastic_matrix([[0.5, 0.5]])

    def test_rejects_bad_rows(self):
        with pytest.raises(ValidationError, match="row 1"):
            check_stochastic_matrix([[0.5, 0.5], [0.5, 0.1]])

    def test_rejects_negative(self):
        with pytest.raises(ValidationError, match="negative"):
            check_stochastic_matrix([[1.5, -0.5], [0.5, 0.5]])


class TestEmissionMatrix:
    def test_non_square_allowed(self):
        mat = check_emission_matrix([[0.5, 0.25, 0.25], [0.1, 0.1, 0.8]], 2)
        assert mat.shape == (2, 3)

    def test_row_count_enforced(self):
        with pytest.raises(ValidationError, match="rows"):
            check_emission_matrix([[1.0]], 2)


class TestScalars:
    def test_check_index(self):
        assert check_index(2, 5) == 2

    def test_check_index_rejects_out_of_range(self):
        with pytest.raises(ValidationError):
            check_index(5, 5)

    def test_check_index_rejects_fractional(self):
        with pytest.raises(ValidationError):
            check_index(1.5, 5)

    def test_check_timestamp_one_based(self):
        assert check_timestamp(1) == 1
        with pytest.raises(ValidationError):
            check_timestamp(0)

    def test_check_timestamp_horizon(self):
        with pytest.raises(ValidationError, match="horizon"):
            check_timestamp(11, horizon=10)

    def test_check_positive(self):
        assert check_positive(0.5) == 0.5
        with pytest.raises(ValidationError):
            check_positive(0.0)

    def test_check_non_negative(self):
        assert check_non_negative(0.0) == 0.0
        with pytest.raises(ValidationError):
            check_non_negative(-1e-9)

    def test_check_unit_interval(self):
        assert check_unit_interval(1.0) == 1.0
        with pytest.raises(ValidationError):
            check_unit_interval(1.5)

    def test_indicator_vector(self):
        vec = check_indicator_vector([0, 1, 0], 3)
        assert vec.tolist() == [0.0, 1.0, 0.0]
        with pytest.raises(ValidationError):
            check_indicator_vector([0, 0.5, 1], 3)


class TestResolveRng:
    def test_seed(self):
        a = resolve_rng(7).integers(1000)
        b = resolve_rng(7).integers(1000)
        assert a == b

    def test_passthrough(self):
        gen = np.random.default_rng(0)
        assert resolve_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(resolve_rng(None), np.random.Generator)

    def test_rejects_garbage(self):
        with pytest.raises(ValidationError):
            resolve_rng("seed")
