"""Property-based tests for mechanism invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.geo.grid import GridMap
from repro.lppm.delta_location_set import delta_location_set
from repro.lppm.planar_laplace import planar_laplace_emission_matrix
from repro.lppm.randomized_response import RandomizedResponseMechanism


@st.composite
def grids(draw):
    rows = draw(st.integers(1, 4))
    cols = draw(st.integers(1, 4))
    size = draw(st.floats(0.1, 5.0, allow_nan=False))
    return GridMap(rows, cols, cell_size_km=size)


@st.composite
def priors(draw):
    n = draw(st.integers(2, 12))
    raw = draw(st.lists(st.floats(0.0, 1.0), min_size=n, max_size=n))
    vec = np.asarray(raw)
    if vec.sum() == 0:
        vec = np.ones(n)
    return vec / vec.sum()


@settings(max_examples=60, deadline=None)
@given(grid=grids(), alpha=st.floats(0.0, 5.0, allow_nan=False))
def test_plm_emission_is_stochastic(grid, alpha):
    matrix = planar_laplace_emission_matrix(grid, alpha)
    assert matrix.shape == (grid.n_cells, grid.n_cells)
    assert np.all(matrix >= 0)
    assert np.allclose(matrix.sum(axis=1), 1.0)


@settings(max_examples=60, deadline=None)
@given(grid=grids(), alpha=st.floats(0.01, 5.0, allow_nan=False))
def test_plm_monotone_in_distance(grid, alpha):
    """Within a row, closer outputs never have lower probability."""
    matrix = planar_laplace_emission_matrix(grid, alpha)
    distances = grid.distance_matrix_km
    for row in range(grid.n_cells):
        order = np.argsort(distances[row])
        probs = matrix[row, order]
        assert np.all(np.diff(probs) <= 1e-12)


@settings(max_examples=80, deadline=None)
@given(prior=priors(), delta=st.floats(0.0, 0.99, allow_nan=False))
def test_delta_location_set_covers_mass(prior, delta):
    cells = delta_location_set(prior, delta)
    mass = prior[list(cells)].sum()
    assert mass >= 1.0 - delta - 1e-9
    # Minimality: dropping the least-probable member breaks coverage.
    if len(cells) > 1:
        weakest = min(cells, key=lambda c: prior[c])
        rest = [c for c in cells if c != weakest]
        assert prior[rest].sum() < 1.0 - delta + 1e-9


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(2, 20),
    budget=st.floats(0.0, 5.0, allow_nan=False),
)
def test_randomized_response_local_dp(n, budget):
    matrix = RandomizedResponseMechanism(n, budget).emission_matrix()
    assert np.allclose(matrix.sum(axis=1), 1.0)
    ratio = matrix.max(axis=0) / matrix.min(axis=0)
    assert np.all(ratio <= np.exp(budget) * (1 + 1e-9))
