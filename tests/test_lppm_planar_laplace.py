"""Unit tests for the planar Laplace mechanism (continuous and discrete)."""

import numpy as np
import pytest

from repro.errors import MechanismError
from repro.geo.grid import GridMap
from repro.lppm.geo_ind import (
    geo_indistinguishability_level,
    verify_geo_indistinguishability,
)
from repro.lppm.planar_laplace import (
    ContinuousPlanarLaplace,
    PlanarLaplaceMechanism,
    planar_laplace_emission_matrix,
)


class TestDiscreteEmission:
    def test_rows_stochastic(self, grid5):
        matrix = planar_laplace_emission_matrix(grid5, 0.7)
        assert np.allclose(matrix.sum(axis=1), 1.0)

    def test_diagonal_dominant(self, grid5):
        matrix = planar_laplace_emission_matrix(grid5, 2.0)
        assert np.all(np.diag(matrix) >= matrix.max(axis=1) - 1e-12)

    def test_alpha_zero_is_uniform(self, grid5):
        matrix = planar_laplace_emission_matrix(grid5, 0.0)
        assert np.allclose(matrix, 1.0 / grid5.n_cells)

    def test_exact_ratio_structure(self):
        grid = GridMap(1, 3, cell_size_km=1.0)
        alpha = 0.5
        matrix = planar_laplace_emission_matrix(grid, alpha)
        # Unnormalized weights are exp(-alpha d); the ratio of two entries
        # in the same column equals exp(alpha (d2 - d1)) after removing
        # the row normalizers.
        z = np.exp(-alpha * grid.distance_matrix_km).sum(axis=1)
        lhs = matrix[0, 0] * z[0]
        rhs = matrix[1, 0] * z[1] * np.exp(alpha * 1.0)
        assert lhs == pytest.approx(rhs)

    def test_satisfies_geo_ind(self, grid5):
        alpha = 0.8
        matrix = planar_laplace_emission_matrix(grid5, alpha)
        # The discrete PLM satisfies 2*alpha-geo-ind in the worst case
        # (numerator and denominator normalizers differ); empirically the
        # level is below that bound and above ~alpha.
        level = geo_indistinguishability_level(matrix, grid5.distance_matrix_km)
        assert level <= 2 * alpha + 1e-9
        assert verify_geo_indistinguishability(
            matrix, grid5.distance_matrix_km, 2 * alpha
        )

    def test_rejects_negative_alpha(self, grid5):
        with pytest.raises(MechanismError):
            planar_laplace_emission_matrix(grid5, -0.1)


class TestMechanismObject:
    def test_budget_and_halving(self, grid5):
        lppm = PlanarLaplaceMechanism(grid5, 0.8)
        assert lppm.budget == 0.8
        assert lppm.alpha == 0.8
        assert lppm.halved().budget == pytest.approx(0.4)

    def test_with_budget_returns_new(self, grid5):
        lppm = PlanarLaplaceMechanism(grid5, 0.8)
        other = lppm.with_budget(0.1)
        assert other.budget == 0.1
        assert lppm.budget == 0.8

    def test_perturb_in_range(self, grid5):
        lppm = PlanarLaplaceMechanism(grid5, 1.0)
        for _ in range(10):
            assert 0 <= lppm.perturb(7, rng=0) < grid5.n_cells

    def test_perturb_matches_emission_empirically(self, grid5, rng):
        lppm = PlanarLaplaceMechanism(grid5, 1.0)
        matrix = lppm.emission_matrix()
        counts = np.zeros(grid5.n_cells)
        n = 8000
        for _ in range(n):
            counts[lppm.perturb(12, rng)] += 1
        assert np.allclose(counts / n, matrix[12], atol=0.02)

    def test_emission_column(self, grid5):
        lppm = PlanarLaplaceMechanism(grid5, 1.0)
        col = lppm.emission_column(3)
        assert np.allclose(col, lppm.emission_matrix()[:, 3])


class TestContinuous:
    def test_inverse_cdf_monotone(self):
        sampler = ContinuousPlanarLaplace(alpha=1.0)
        radii = [sampler.inverse_radius_cdf(p) for p in (0.1, 0.5, 0.9)]
        assert radii == sorted(radii)
        assert radii[0] > 0

    def test_inverse_cdf_roundtrip(self):
        # C(r) = 1 - (1 + alpha r) exp(-alpha r)
        alpha = 0.7
        sampler = ContinuousPlanarLaplace(alpha)
        for p in (0.2, 0.5, 0.95):
            r = sampler.inverse_radius_cdf(p)
            c = 1 - (1 + alpha * r) * np.exp(-alpha * r)
            assert c == pytest.approx(p, abs=1e-10)

    def test_inverse_cdf_bounds(self):
        sampler = ContinuousPlanarLaplace(1.0)
        assert sampler.inverse_radius_cdf(0.0) == 0.0
        with pytest.raises(MechanismError):
            sampler.inverse_radius_cdf(1.0)

    def test_mean_radius(self, rng):
        # E[r] = 2 / alpha for the planar Laplace radial distribution.
        alpha = 2.0
        sampler = ContinuousPlanarLaplace(alpha)
        radii = [np.hypot(*sampler.sample_noise(rng)) for _ in range(4000)]
        assert np.mean(radii) == pytest.approx(2.0 / alpha, rel=0.05)

    def test_perturb_cell_snaps(self, grid5, rng):
        sampler = ContinuousPlanarLaplace(alpha=5.0)
        cell = sampler.perturb_cell(grid5, 12, rng)
        assert 0 <= cell < grid5.n_cells
