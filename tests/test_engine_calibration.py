"""Calibration-strategy plug-ins for the streaming engine."""

import pytest

from repro.core.quantify import quantify_fixed_prior
from repro.engine import (
    BinarySearchCalibration,
    BudgetHalving,
    LinearDecay,
    SessionBuilder,
    resolve_strategy,
)
from repro.errors import CalibrationError
from repro.events.events import PresenceEvent
from repro.geo.regions import Region
from repro.lppm.planar_laplace import PlanarLaplaceMechanism
from repro.markov.simulate import sample_trajectory


@pytest.fixture
def setting(grid5, chain5, uniform5):
    event = PresenceEvent(Region.from_range(grid5.n_cells, 0, 4), start=3, end=5)
    return grid5, chain5, uniform5, event


def builder_for(grid, chain, pi, event, strategy, alpha=2.0, epsilon=0.2):
    """A deliberately tight setting so calibration actually kicks in."""
    return (
        SessionBuilder()
        .with_grid(grid)
        .with_chain(chain)
        .protecting(event)
        .with_mechanism(PlanarLaplaceMechanism(grid, alpha))
        .with_epsilon(epsilon)
        .with_fixed_prior(pi)
        .with_horizon(8)
        .with_calibration(strategy)
    )


class TestResolution:
    def test_names_resolve(self):
        assert isinstance(resolve_strategy("halving"), BudgetHalving)
        assert isinstance(resolve_strategy("budget-halving"), BudgetHalving)
        assert isinstance(resolve_strategy("linear"), LinearDecay)
        assert isinstance(resolve_strategy("binary-search"), BinarySearchCalibration)

    def test_instances_pass_through(self):
        strategy = LinearDecay(0.25)
        assert resolve_strategy(strategy) is strategy

    def test_unknown_name_raises(self):
        with pytest.raises(CalibrationError):
            resolve_strategy("quadratic")
        with pytest.raises(CalibrationError):
            resolve_strategy(42)

    def test_parameter_validation(self):
        with pytest.raises(CalibrationError):
            BudgetHalving(decay=1.0)
        with pytest.raises(CalibrationError):
            LinearDecay(step_fraction=0.0)
        with pytest.raises(CalibrationError):
            BinarySearchCalibration(max_probes=0)


class TestSchedules:
    def test_halving_sequence(self):
        schedule = BudgetHalving(0.5).begin(1.0)
        assert schedule.after_failure(1.0) == pytest.approx(0.5)
        assert schedule.after_failure(0.5) == pytest.approx(0.25)
        assert schedule.after_success(0.25) is None

    def test_linear_sequence_hits_zero(self):
        schedule = LinearDecay(0.25).begin(1.0)
        budget = 1.0
        seen = []
        for _ in range(5):
            budget = schedule.after_failure(budget)
            seen.append(budget)
        assert seen == pytest.approx([0.75, 0.5, 0.25, 0.0, -0.25])

    def test_binary_search_accepts_base_immediately(self):
        schedule = BinarySearchCalibration().begin(1.0)
        assert schedule.after_success(1.0) is None

    def test_binary_search_brackets(self):
        schedule = BinarySearchCalibration(max_probes=10).begin(1.0)
        assert schedule.after_failure(1.0) == pytest.approx(0.5)
        # success below a failure probes upward inside the bracket
        probe = schedule.after_success(0.5)
        assert probe == pytest.approx(0.75)
        # another failure narrows from above
        probe = schedule.after_failure(0.75)
        assert 0.5 < probe < 0.75

    def test_binary_search_respects_probe_budget(self):
        schedule = BinarySearchCalibration(max_probes=2).begin(1.0)
        schedule.after_failure(1.0)
        assert schedule.after_success(0.5) is None

    def test_binary_search_terminates_under_constant_failure(self):
        # Nothing is ever safe: the schedule must stop proposing positive
        # budgets after ~max_probes failures (then the engine goes
        # uniform), not bisect forever.
        schedule = BinarySearchCalibration(max_probes=3).begin(1.0)
        budget = 1.0
        for attempt in range(1, 10):
            budget = schedule.after_failure(budget)
            if budget <= 0.0:
                break
        assert budget == 0.0
        assert attempt <= 5  # max_probes bisections + bounded convergence

    def test_binary_search_retries_bracket_floor_before_uniform(self):
        schedule = BinarySearchCalibration(max_probes=3).begin(1.0)
        assert schedule.after_failure(1.0) == pytest.approx(0.5)
        assert schedule.after_success(0.5) == pytest.approx(0.75)
        # Probes spent: the next failure retries the verified floor ...
        assert schedule.after_failure(0.75) == pytest.approx(0.5)
        # ... which releases on success,
        assert schedule.after_success(0.5) is None
        # or bottoms out to uniform on failure.
        schedule2 = BinarySearchCalibration(max_probes=3).begin(1.0)
        schedule2.after_failure(1.0)
        schedule2.after_success(0.5)
        schedule2.after_failure(0.75)
        assert schedule2.after_failure(0.5) == 0.0


@pytest.mark.parametrize(
    "strategy",
    [BudgetHalving(0.5), LinearDecay(0.2), BinarySearchCalibration(max_probes=6)],
    ids=["halving", "linear", "binary-search"],
)
class TestStrategiesEndToEnd:
    def test_releases_satisfy_epsilon(self, setting, strategy):
        grid, chain, pi, event = setting
        epsilon = 0.2
        session = (
            builder_for(grid, chain, pi, event, strategy, epsilon=epsilon)
            .recording_emissions()
            .build(rng=21)
        )
        truth = sample_trajectory(chain, 8, initial=pi, rng=21)
        for cell in truth:
            record = session.step(cell)
            assert 0.0 <= record.budget <= 2.0 + 1e-12
        log = session.finish()
        realized = quantify_fixed_prior(
            chain, event, log, log.released_cells, pi, horizon=8
        )
        assert realized.epsilon <= epsilon + 1e-6

    def test_calibration_engages(self, setting, strategy):
        grid, chain, pi, event = setting
        session = builder_for(grid, chain, pi, event, strategy).build(rng=22)
        truth = sample_trajectory(chain, 8, initial=pi, rng=22)
        attempts = [session.step(cell).n_attempts for cell in truth]
        # The tight epsilon must force at least one multi-attempt timestamp.
        assert max(attempts) > 1


class TestUniformFallback:
    def test_linear_decay_bottoms_out_to_uniform(self, setting, monkeypatch):
        grid, chain, pi, event = setting
        # Force every check to fail so the schedule reaches budget <= 0:
        # with step_fraction=0.5 that takes 2 failures, far below
        # max_calibrations, proving the <=0 path (not the attempt cap)
        # triggered the uniform release.
        from repro.core.qp import SolverStatus
        from repro.engine import session as session_module

        monkeypatch.setattr(
            session_module.ReleaseSession,
            "_check_all",
            lambda self, *args: SolverStatus.VIOLATED,
        )
        session = builder_for(
            grid, chain, pi, event, LinearDecay(0.5)
        ).build(rng=23)
        record = session.step(0)
        assert record.forced_uniform
        assert record.budget == 0.0
        assert record.n_attempts == 2

    def test_halving_falls_back_at_max_calibrations(self, setting, monkeypatch):
        grid, chain, pi, event = setting
        from repro.core.qp import SolverStatus
        from repro.engine import session as session_module

        monkeypatch.setattr(
            session_module.ReleaseSession,
            "_check_all",
            lambda self, *args: SolverStatus.UNKNOWN,
        )
        session = (
            builder_for(grid, chain, pi, event, BudgetHalving(0.5))
            .with_max_calibrations(4)
            .build(rng=24)
        )
        record = session.step(0)
        assert record.forced_uniform
        assert record.conservative
        assert record.n_attempts == 5
