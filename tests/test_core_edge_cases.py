"""Edge-case and failure-injection tests across the core engine."""

import numpy as np
import pytest

from repro.core.baseline import enumerate_joint, enumerate_prior
from repro.core.joint import EventQuantifier, joint_probability
from repro.core.priste import PriSTE, PriSTEConfig
from repro.core.quantify import quantify_fixed_prior
from repro.core.two_world import TwoWorldModel
from repro.errors import EventError, QuantificationError, ValidationError
from repro.events.events import PatternEvent, PresenceEvent
from repro.geo.regions import Region
from repro.lppm.planar_laplace import PlanarLaplaceMechanism
from repro.markov.transition import TimeVaryingChain, TransitionMatrix

from conftest import random_chain, random_emission


class TestWindowBoundaries:
    """Events touching the ends of the horizon."""

    def test_event_ending_at_horizon(self, rng):
        chain = random_chain(3, rng)
        event = PresenceEvent(Region.from_cells(3, [1]), start=3, end=4)
        model = TwoWorldModel(chain, event, horizon=4)  # end == horizon
        pi = np.array([0.4, 0.3, 0.3])
        emission = random_emission(3, rng)
        cols = np.stack([emission[:, o] for o in [0, 1, 2, 0]])
        fast = joint_probability(model, pi, cols)
        slow = enumerate_joint(chain, event, pi, cols)
        assert fast == pytest.approx(slow, rel=1e-10)

    def test_single_timestamp_event_at_start_one(self, rng):
        chain = random_chain(3, rng)
        event = PresenceEvent(Region.from_cells(3, [2]), start=1, end=1)
        model = TwoWorldModel(chain, event, horizon=3)
        pi = np.array([0.2, 0.3, 0.5])
        # Pr(EVENT) is just pi's mass on the region at t=1.
        assert model.prior_probability(pi) == pytest.approx(0.5)

    def test_whole_horizon_event(self, rng):
        chain = random_chain(3, rng)
        event = PresenceEvent(Region.from_cells(3, [0]), start=1, end=4)
        model = TwoWorldModel(chain, event, horizon=4)
        pi = np.array([0.1, 0.6, 0.3])
        assert model.prior_probability(pi) == pytest.approx(
            enumerate_prior(chain, event, pi), abs=1e-12
        )

    def test_pattern_single_region_at_one(self, rng):
        chain = random_chain(3, rng)
        event = PatternEvent([Region.from_cells(3, [1, 2])], start=1)
        model = TwoWorldModel(chain, event, horizon=2)
        pi = np.array([0.25, 0.25, 0.5])
        assert model.prior_probability(pi) == pytest.approx(0.75)


class TestDegenerateChains:
    def test_deterministic_cycle_chain(self):
        cycle = TransitionMatrix([[0, 1, 0], [0, 0, 1], [1, 0, 0]])
        event = PresenceEvent(Region.from_cells(3, [0]), start=2, end=3)
        model = TwoWorldModel(cycle, event, horizon=4)
        # From cell 1, the cycle hits 0 at t=3: event true; from 2, hits 0
        # at t=2: true; from 0, visits 1 then 2: false.
        assert np.allclose(model.prior_vector(), [0.0, 1.0, 1.0])

    def test_absorbing_chain(self):
        absorbing = TransitionMatrix([[1.0, 0.0], [0.5, 0.5]])
        event = PresenceEvent(Region.from_cells(2, [0]), start=2, end=4)
        model = TwoWorldModel(absorbing, event, horizon=4)
        # From 0: stays in 0: true.  From 1: reaches 0 unless it stays in
        # 1 for all three window steps: 1 - 0.5^3.
        assert np.allclose(model.prior_vector(), [1.0, 1.0 - 0.125])

    def test_time_varying_joint_against_enumeration(self, rng):
        matrices = [random_chain(3, rng) for _ in range(4)]
        chain = TimeVaryingChain(matrices)
        event = PatternEvent(
            [Region.from_cells(3, [0, 1]), Region.from_cells(3, [2])], start=2
        )
        model = TwoWorldModel(chain, event, horizon=4)
        pi = np.array([0.3, 0.3, 0.4])
        emission = random_emission(3, rng)
        cols = np.stack([emission[:, o] for o in [2, 0, 1, 2]])
        for t in range(1, 5):
            fast = joint_probability(model, pi, cols, upto_t=t)
            slow = enumerate_joint(chain, event, pi, cols, upto_t=t)
            assert fast == pytest.approx(slow, rel=1e-10), f"t={t}"


class TestQuantifierMisuse:
    def test_double_commit_rejected(self, rng):
        chain = random_chain(3, rng)
        event = PresenceEvent(Region.from_cells(3, [0]), start=2, end=2)
        quantifier = EventQuantifier(TwoWorldModel(chain, event, horizon=3))
        col = np.full(3, 0.3)
        quantifier.prepare(1)
        quantifier.commit(1, col)
        with pytest.raises(QuantificationError):
            quantifier.commit(1, col)

    def test_skip_prepare_rejected(self, rng):
        chain = random_chain(3, rng)
        event = PresenceEvent(Region.from_cells(3, [0]), start=2, end=2)
        quantifier = EventQuantifier(TwoWorldModel(chain, event, horizon=3))
        with pytest.raises(QuantificationError):
            quantifier.prepare(3)


class TestPriSTEFailureInjection:
    def test_mismatched_lppm_size(self, grid5, chain5):
        from repro.geo.grid import GridMap

        event = PresenceEvent(Region.from_range(25, 0, 4), start=2, end=3)
        wrong_grid = GridMap(3, 3)
        with pytest.raises(QuantificationError):
            PriSTE(
                chain5,
                event,
                PlanarLaplaceMechanism(wrong_grid, 0.5),
                PriSTEConfig(epsilon=0.5),
                horizon=5,
            )

    def test_quantify_rejects_nan_emissions(self, rng):
        chain = random_chain(3, rng)
        event = PresenceEvent(Region.from_cells(3, [0]), start=2, end=2)
        bad = np.full((3, 3), np.nan)
        with pytest.raises(ValidationError):
            quantify_fixed_prior(chain, event, bad, [0, 1], [0.4, 0.3, 0.3])

    def test_event_horizon_mismatch_reported(self, rng):
        chain = random_chain(3, rng)
        event = PresenceEvent(Region.from_cells(3, [0]), start=4, end=6)
        with pytest.raises(EventError):
            quantify_fixed_prior(
                chain, event, np.full((2, 3), 1 / 3), [0, 1],
                [0.4, 0.3, 0.3], horizon=2,
            )


class TestNumericalStress:
    def test_near_zero_emission_columns(self, rng):
        """Sequences through almost-impossible observations stay finite."""
        chain = random_chain(3, rng)
        event = PresenceEvent(Region.from_cells(3, [0]), start=2, end=3)
        model = TwoWorldModel(chain, event, horizon=5)
        quantifier = EventQuantifier(model)
        tiny = np.array([1e-12, 1e-14, 1e-13])
        for t in range(1, 6):
            quantifier.prepare(t)
            b, c = quantifier.candidate_bc(t, tiny)
            assert np.all(np.isfinite(b)) and np.all(np.isfinite(c))
            quantifier.commit(t, tiny)
        assert np.isfinite(quantifier.log_scale)

    def test_one_hot_pi_every_vertex(self, rng):
        """Every vertex prior gives a valid probability decomposition."""
        chain = random_chain(4, rng)
        event = PresenceEvent(Region.from_cells(4, [1, 2]), start=2, end=3)
        model = TwoWorldModel(chain, event, horizon=4)
        a = model.prior_vector()
        for i in range(4):
            pi = np.zeros(4)
            pi[i] = 1.0
            assert model.prior_probability(pi) == pytest.approx(a[i])
            assert 0.0 <= a[i] <= 1.0
