"""Unit tests for the PriSTE framework (Algorithms 1-3)."""

import numpy as np
import pytest

from repro.core.priste import (
    PriSTE,
    PriSTEConfig,
    PriSTEDeltaLocationSet,
    ReleaseLog,
    ReleaseRecord,
)
from repro.core.qp import SolverOptions
from repro.core.quantify import quantify_fixed_prior, verify_event_privacy
from repro.errors import CalibrationError, QuantificationError
from repro.events.events import PresenceEvent
from repro.geo.regions import Region
from repro.lppm.planar_laplace import PlanarLaplaceMechanism
from repro.markov.simulate import sample_trajectory


@pytest.fixture
def setting(grid5, chain5, uniform5):
    event = PresenceEvent(Region.from_range(grid5.n_cells, 0, 4), start=3, end=5)
    return grid5, chain5, uniform5, event


class TestConfig:
    def test_validation(self):
        with pytest.raises(Exception):
            PriSTEConfig(epsilon=0.0)
        with pytest.raises(CalibrationError):
            PriSTEConfig(epsilon=0.5, decay=1.0)
        with pytest.raises(CalibrationError):
            PriSTEConfig(epsilon=0.5, max_calibrations=0)
        with pytest.raises(CalibrationError):
            PriSTEConfig(epsilon=0.5, prior_mode="other")
        with pytest.raises(CalibrationError):
            PriSTEConfig(epsilon=0.5, prior_mode="fixed")  # prior missing


class TestAlgorithm2:
    def test_worst_case_release_satisfies_epsilon(self, setting):
        grid, chain, pi, event = setting
        epsilon = 0.5
        priste = PriSTE(
            chain, event, PlanarLaplaceMechanism(grid, 1.0),
            PriSTEConfig(epsilon=epsilon), horizon=8,
        )
        truth = sample_trajectory(chain, 8, initial=pi, rng=1)
        log = priste.run(truth, rng=1)
        assert len(log) == 8
        # Post-hoc verification with the actually-used budgets.
        mats = np.stack(
            [PlanarLaplaceMechanism(grid, r.budget).emission_matrix() for r in log.records]
        )
        check = verify_event_privacy(
            chain, event, mats, log.released_cells, epsilon, horizon=8
        )
        assert check.holds
        # And the fixed-pi realized loss is within epsilon.
        realized = quantify_fixed_prior(
            chain, event, mats, log.released_cells, pi, horizon=8
        )
        assert realized.epsilon <= epsilon + 1e-6

    def test_fixed_prior_release_satisfies_epsilon_at_that_prior(self, setting):
        grid, chain, pi, event = setting
        epsilon = 0.3
        priste = PriSTE(
            chain, event, PlanarLaplaceMechanism(grid, 1.0),
            PriSTEConfig(epsilon=epsilon, prior_mode="fixed", prior=pi), horizon=8,
        )
        truth = sample_trajectory(chain, 8, initial=pi, rng=2)
        log = priste.run(truth, rng=2)
        mats = np.stack(
            [PlanarLaplaceMechanism(grid, r.budget).emission_matrix() for r in log.records]
        )
        realized = quantify_fixed_prior(
            chain, event, mats, log.released_cells, pi, horizon=8
        )
        assert realized.epsilon <= epsilon + 1e-6

    def test_budgets_never_exceed_base(self, setting):
        grid, chain, pi, event = setting
        alpha = 0.7
        priste = PriSTE(
            chain, event, PlanarLaplaceMechanism(grid, alpha),
            PriSTEConfig(epsilon=0.5, prior_mode="fixed", prior=pi), horizon=6,
        )
        log = priste.run(sample_trajectory(chain, 6, initial=pi, rng=3), rng=3)
        assert np.all(log.budgets <= alpha + 1e-12)

    def test_looser_epsilon_keeps_more_budget(self, setting):
        grid, chain, pi, event = setting
        truth = sample_trajectory(chain, 8, initial=pi, rng=4)
        budgets = {}
        for epsilon in (0.1, 2.0):
            priste = PriSTE(
                chain, event, PlanarLaplaceMechanism(grid, 0.5),
                PriSTEConfig(epsilon=epsilon, prior_mode="fixed", prior=pi),
                horizon=8,
            )
            budgets[epsilon] = priste.run(truth, rng=4).average_budget
        assert budgets[2.0] >= budgets[0.1]

    def test_multiple_events_stricter(self, setting):
        grid, chain, pi, event = setting
        second = PresenceEvent(Region.from_range(grid.n_cells, 20, 24), start=6, end=7)
        truth = sample_trajectory(chain, 8, initial=pi, rng=5)
        single = PriSTE(
            chain, event, PlanarLaplaceMechanism(grid, 0.5),
            PriSTEConfig(epsilon=0.3, prior_mode="fixed", prior=pi), horizon=8,
        ).run(truth, rng=5)
        double = PriSTE(
            chain, [event, second], PlanarLaplaceMechanism(grid, 0.5),
            PriSTEConfig(epsilon=0.3, prior_mode="fixed", prior=pi), horizon=8,
        ).run(truth, rng=5)
        assert double.average_budget <= single.average_budget + 1e-9

    def test_trajectory_validation(self, setting):
        grid, chain, pi, event = setting
        priste = PriSTE(
            chain, event, PlanarLaplaceMechanism(grid, 0.5),
            PriSTEConfig(epsilon=0.5, prior_mode="fixed", prior=pi), horizon=6,
        )
        with pytest.raises(QuantificationError):
            priste.run([])
        with pytest.raises(QuantificationError):
            priste.run([0] * 7)  # beyond horizon
        with pytest.raises(QuantificationError):
            priste.run([99])  # bad cell

    def test_requires_event(self, setting):
        grid, chain, pi, _ = setting
        with pytest.raises(QuantificationError):
            PriSTE(
                chain, [], PlanarLaplaceMechanism(grid, 0.5),
                PriSTEConfig(epsilon=0.5), horizon=6,
            )

    def test_reproducible_with_seed(self, setting):
        grid, chain, pi, event = setting
        truth = sample_trajectory(chain, 6, initial=pi, rng=6)
        runs = []
        for _ in range(2):
            priste = PriSTE(
                chain, event, PlanarLaplaceMechanism(grid, 0.5),
                PriSTEConfig(epsilon=0.5, prior_mode="fixed", prior=pi), horizon=6,
            )
            runs.append(priste.run(truth, rng=42).released_cells)
        assert runs[0] == runs[1]


class TestAlgorithm3:
    def test_releases_within_delta_location_sets(self, setting):
        grid, chain, pi, event = setting
        priste = PriSTEDeltaLocationSet(
            chain, event, grid, alpha=1.0, delta=0.3, initial=pi,
            config=PriSTEConfig(epsilon=0.5, prior_mode="fixed", prior=pi),
            horizon=6,
        )
        truth = sample_trajectory(chain, 6, initial=pi, rng=7)
        log = priste.run(truth, rng=7)
        assert len(log) == 6
        assert all(0 <= c < grid.n_cells for c in log.released_cells)

    def test_fixed_prior_guarantee_holds(self, setting):
        """Exact post-hoc verification via recorded emission matrices."""
        grid, chain, pi, event = setting
        epsilon = 0.5
        priste = PriSTEDeltaLocationSet(
            chain, event, grid, alpha=1.0, delta=0.3, initial=pi,
            config=PriSTEConfig(
                epsilon=epsilon, prior_mode="fixed", prior=pi,
                record_emissions=True,
            ),
            horizon=6,
        )
        truth = sample_trajectory(chain, 6, initial=pi, rng=8)
        log = priste.run(truth, rng=8)
        assert np.all(log.budgets > 0)
        assert log.average_budget <= 1.0
        assert len(log.emission_matrices) == 6
        realized = quantify_fixed_prior(
            chain, event, log.emission_stack(), log.released_cells, pi,
            horizon=6,
        )
        assert realized.epsilon <= epsilon + 1e-6

    def test_emission_recording_off_by_default(self, setting):
        grid, chain, pi, event = setting
        priste = PriSTE(
            chain, event, PlanarLaplaceMechanism(grid, 0.5),
            PriSTEConfig(epsilon=0.5, prior_mode="fixed", prior=pi), horizon=6,
        )
        log = priste.run(sample_trajectory(chain, 6, initial=pi, rng=9), rng=9)
        assert log.emission_matrices is None
        with pytest.raises(QuantificationError):
            log.emission_stack()


class TestReleaseLog:
    def _log(self):
        records = [
            ReleaseRecord(1, 0, 1, 0.5, 1, False, False, 0.1),
            ReleaseRecord(2, 1, 1, 0.25, 2, True, False, 0.2),
        ]
        return ReleaseLog(records=records)

    def test_aggregates(self):
        log = self._log()
        assert log.average_budget == pytest.approx(0.375)
        assert log.n_conservative == 1
        assert log.total_elapsed_s == pytest.approx(0.3)
        assert log.released_cells == [1, 1]

    def test_error_km(self, grid5):
        log = self._log()
        err = log.euclidean_error_km(grid5, [0, 1])
        assert err == pytest.approx(grid5.distance_km(0, 1) / 2)
