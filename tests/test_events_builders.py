"""Unit tests for the high-level event builders."""

import pytest

from repro.errors import EventError
from repro.events.builders import (
    avoided,
    commuted_between,
    followed_route,
    recurring_presence,
    stayed,
    visited,
    visited_exactly_one,
)
from repro.geo.regions import Region


class TestVisited:
    def test_non_consecutive_times(self):
        expr = visited([0, 1], times=[1, 4])
        assert expr.evaluate([0, 9, 9, 9]) is True
        assert expr.evaluate([9, 9, 9, 1]) is True
        assert expr.evaluate([9, 0, 0, 9]) is False  # visits at wrong times

    def test_accepts_region_objects(self):
        region = Region.from_cells(5, [2, 3])
        expr = visited(region, times=[2])
        assert expr.evaluate([0, 3]) is True

    def test_dedupes_times(self):
        expr = visited([0], times=[2, 2, 2])
        assert expr.timestamps() == (2,)

    def test_rejects_empty(self):
        with pytest.raises(EventError):
            visited([], times=[1])
        with pytest.raises(EventError):
            visited([0], times=[])


class TestStayedAvoided:
    def test_stayed_requires_all(self):
        expr = stayed([0, 1], times=[1, 3])
        assert expr.evaluate([0, 9, 1]) is True
        assert expr.evaluate([0, 9, 9]) is False

    def test_avoided_is_negation(self):
        region = [0, 1]
        times = [1, 2]
        a = avoided(region, times)
        v = visited(region, times)
        for trajectory in ([0, 9], [9, 9], [9, 1]):
            assert a.evaluate(trajectory) == (not v.evaluate(trajectory))


class TestFollowedRoute:
    def test_route_with_gap(self):
        expr = followed_route([[0], [5]], times=[1, 3])
        assert expr.evaluate([0, 9, 5]) is True
        assert expr.evaluate([0, 5, 9]) is False

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(EventError):
            followed_route([[0]], times=[1, 2])

    def test_rejects_non_increasing_times(self):
        with pytest.raises(EventError):
            followed_route([[0], [1]], times=[3, 3])
        with pytest.raises(EventError):
            followed_route([[0], [1]], times=[3, 2])


class TestCommute:
    def test_flagship_secret(self):
        home, office = [0], [8]
        expr = commuted_between(home, office, morning=[1, 2], afternoon=[5, 6])
        assert expr.evaluate([0, 9, 9, 9, 8, 9]) is True
        assert expr.evaluate([0, 9, 9, 9, 9, 9]) is False  # never at office
        assert expr.evaluate([9, 9, 9, 9, 8, 9]) is False  # never at home

    def test_window_spans_both_periods(self):
        expr = commuted_between([0], [1], morning=[2], afternoon=[7])
        assert expr.time_window() == (2, 7)


class TestExactlyOne:
    def test_xor_semantics(self):
        expr = visited_exactly_one([0], [5], times=[1, 2])
        assert expr.evaluate([0, 9]) is True
        assert expr.evaluate([5, 9]) is True
        assert expr.evaluate([0, 5]) is False  # both
        assert expr.evaluate([9, 9]) is False  # neither


class TestRecurring:
    def test_periodic_timestamps(self):
        expr = recurring_presence([0], first=2, period=3, occurrences=3)
        assert expr.timestamps() == (2, 5, 8)
        trajectory = [9] * 8
        for t in (2, 5, 8):
            trajectory[t - 1] = 0
        assert expr.evaluate(trajectory) is True
        trajectory[4] = 9  # miss one occurrence
        assert expr.evaluate(trajectory) is False

    def test_rejects_bad_period(self):
        with pytest.raises(EventError):
            recurring_presence([0], first=1, period=0, occurrences=2)


class TestBuildersWorkWithEngines:
    def test_automaton_handles_builder_events(self, paper_chain):
        import numpy as np

        from repro.core.automaton_engine import AutomatonModel
        from repro.core.baseline import enumerate_prior

        expr = commuted_between([0], [2], morning=[1, 2], afternoon=[3, 4])
        model = AutomatonModel(paper_chain, expr, horizon=4)
        pi = np.array([0.5, 0.3, 0.2])
        assert model.prior_probability(pi) == pytest.approx(
            enumerate_prior(paper_chain, expr, pi), abs=1e-12
        )
