"""Metric registry: families, duplicate-name tripwire, exposition text."""

import threading

import pytest

from repro.obs.registry import LatencyHistogram, MetricsRegistry


class TestRegistration:
    def test_duplicate_name_raises(self):
        registry = MetricsRegistry()
        registry.counter("repro_things_total")
        with pytest.raises(ValueError, match="already registered"):
            registry.counter("repro_things_total")
        # ...across kinds too: one name, one family, ever.
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("repro_things_total")
        with pytest.raises(ValueError, match="already registered"):
            registry.histogram("repro_things_total")

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="invalid metric name"):
            registry.counter("bad name")
        with pytest.raises(ValueError, match="invalid label name"):
            registry.counter("fine_name", labelnames=("bad-label",))

    def test_self_check_lists_names(self):
        registry = MetricsRegistry()
        registry.counter("b_total")
        registry.gauge("a_gauge")
        assert registry.self_check() == ["a_gauge", "b_total"]
        assert registry.names() == ["a_gauge", "b_total"]


class TestCounters:
    def test_labelled_series_and_totals(self):
        registry = MetricsRegistry()
        requests = registry.counter("req_total", labelnames=("op",))
        requests.inc(op="step")
        requests.inc(2, op="step")
        requests.inc(op="open")
        assert requests.value(op="step") == 3
        assert requests.total() == 4
        # integer increments keep snapshot dicts JSON-clean ints
        assert requests.as_dict() == {"step": 3, "open": 1}
        assert all(isinstance(v, int) for v in requests.as_dict().values())

    def test_counters_never_decrease(self):
        counter = MetricsRegistry().counter("c_total")
        with pytest.raises(ValueError, match="cannot decrease"):
            counter.inc(-1)

    def test_wrong_labels_rejected(self):
        counter = MetricsRegistry().counter("c_total", labelnames=("op",))
        with pytest.raises(ValueError, match="takes labels"):
            counter.inc(kind="x")


class TestGauges:
    def test_set_inc_dec_remove(self):
        gauge = MetricsRegistry().gauge("g", labelnames=("worker",))
        gauge.set(2.0, worker="w0")
        gauge.inc(worker="w0")
        gauge.dec(0.5, worker="w0")
        assert gauge.value(worker="w0") == pytest.approx(2.5)
        gauge.remove(worker="w0")
        assert gauge.value(worker="w0") == 0.0

    def test_callback_gauge_samples_at_read(self):
        state = {"depth": 3}
        registry = MetricsRegistry()
        gauge = registry.gauge("queue_depth", fn=lambda: state["depth"])
        assert gauge.value() == 3.0
        state["depth"] = 7
        assert "queue_depth 7" in registry.render()

    def test_callback_gauge_failure_never_kills_a_scrape(self):
        registry = MetricsRegistry()
        registry.gauge("broken", fn=lambda: 1 / 0)
        registry.counter("fine_total").inc()
        text = registry.render()
        assert "broken" not in text.replace("# TYPE broken gauge", "")
        assert "fine_total 1" in text

    def test_callback_gauge_cannot_take_labels_or_set(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="cannot take labels"):
            registry.gauge("cb", labelnames=("x",), fn=lambda: 0)
        gauge = registry.gauge("cb", fn=lambda: 0)
        with pytest.raises(ValueError, match="callback-backed"):
            gauge.set(1.0)


class TestHistograms:
    def test_observe_and_family_snapshot(self):
        registry = MetricsRegistry()
        family = registry.histogram("lat_seconds", labelnames=("digest",))
        family.observe(0.010, digest="d1")
        family.observe(0.030, digest="d1")
        snap = family.snapshot(digest="d1")
        assert snap["count"] == 2
        assert snap["mean_ms"] == pytest.approx(20.0)
        assert family.snapshots().keys() == {"d1"}

    def test_merge_state_across_processes(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        for v in (0.001, 0.002, 0.004):
            a.record(v)
        for v in (0.008, 0.016):
            b.record(v)
        merged = LatencyHistogram()
        merged.merge_state(a.state())
        merged.merge_state(b.state())
        assert merged.count == 5
        assert merged.sum == pytest.approx(a.sum + b.sum)
        assert merged.quantile(1.0) == pytest.approx(0.016)

    def test_merge_state_rejects_wrong_shape(self):
        histogram = LatencyHistogram()
        with pytest.raises(ValueError, match="buckets"):
            histogram.merge_state({"counts": [0, 1], "count": 1, "sum": 0, "max": 0})


class TestExposition:
    def test_render_format(self):
        registry = MetricsRegistry()
        requests = registry.counter(
            "repro_requests_total", "Requests by op", ("op",)
        )
        requests.inc(op="step")
        registry.gauge("repro_open", "Open sessions", fn=lambda: 4)
        latency = registry.histogram("repro_lat_seconds", "Latency")
        latency.observe(0.002)
        text = registry.render()
        lines = text.splitlines()
        assert "# HELP repro_requests_total Requests by op" in lines
        assert "# TYPE repro_requests_total counter" in lines
        assert 'repro_requests_total{op="step"} 1' in lines
        assert "# TYPE repro_open gauge" in lines
        assert "repro_open 4" in lines
        assert "# TYPE repro_lat_seconds histogram" in lines
        assert "repro_lat_seconds_count 1" in lines
        assert any(line.startswith("repro_lat_seconds_bucket{le=") for line in lines)
        assert 'repro_lat_seconds_bucket{le="+Inf"} 1' in lines
        assert text.endswith("\n")

    def test_histogram_buckets_are_cumulative_and_overflow_folds_to_inf(self):
        histogram = LatencyHistogram()
        histogram.record(1e9)  # above the last finite bound
        lines = histogram.exposition_lines("h_seconds")
        finite = [line for line in lines if 'le="+Inf"' not in line and "_bucket" in line]
        assert all(line.endswith(" 0") for line in finite)
        assert 'h_seconds_bucket{le="+Inf"} 1' in lines

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", labelnames=("who",))
        counter.inc(who='evil"\\\n')
        assert 'c_total{who="evil\\"\\\\\\n"} 1' in registry.render()

    def test_extra_text_is_appended(self):
        registry = MetricsRegistry()
        registry.counter("c_total").inc()
        text = registry.render(extra="# TYPE w_up gauge\nw_up 1\n")
        assert text.endswith("# TYPE w_up gauge\nw_up 1\n")

    def test_concurrent_writers_against_render(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits_total", labelnames=("op",))
        latency = registry.histogram("lat_seconds")
        n_threads, per_thread = 8, 500

        def hammer():
            for _ in range(per_thread):
                counter.inc(op="step")
                latency.observe(0.001)

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        for _ in range(20):
            registry.render()  # concurrent scrapes must never crash
        for thread in threads:
            thread.join()
        assert counter.value(op="step") == n_threads * per_thread
        assert latency.get().count == n_threads * per_thread
        # a final render is internally consistent
        assert f"lat_seconds_count {n_threads * per_thread}" in registry.render()
