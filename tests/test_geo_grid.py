"""Unit tests for GridMap."""

import numpy as np
import pytest

from repro.errors import GridError
from repro.geo.grid import GridMap


class TestConstruction:
    def test_basic(self):
        grid = GridMap(4, 5, cell_size_km=0.5)
        assert grid.n_cells == 20
        assert len(grid) == 20

    def test_rejects_zero_rows(self):
        with pytest.raises(GridError):
            GridMap(0, 5)

    def test_rejects_negative_cell_size(self):
        with pytest.raises(Exception):
            GridMap(2, 2, cell_size_km=-1.0)

    def test_iteration(self):
        assert list(GridMap(2, 2)) == [0, 1, 2, 3]


class TestIndexing:
    def test_row_major(self):
        grid = GridMap(3, 4)
        assert grid.cell_index(0, 0) == 0
        assert grid.cell_index(1, 0) == 4
        assert grid.cell_index(2, 3) == 11

    def test_roundtrip(self):
        grid = GridMap(3, 4)
        for cell in grid:
            row, col = grid.cell_position(cell)
            assert grid.cell_index(row, col) == cell

    def test_out_of_range(self):
        grid = GridMap(3, 4)
        with pytest.raises(Exception):
            grid.cell_position(12)
        with pytest.raises(Exception):
            grid.cell_index(3, 0)


class TestGeometry:
    def test_centers(self):
        grid = GridMap(2, 2, cell_size_km=2.0, origin_km=(10.0, 20.0))
        assert grid.cell_center_km(0) == (10.0, 20.0)
        assert grid.cell_center_km(1) == (12.0, 20.0)
        assert grid.cell_center_km(2) == (10.0, 22.0)

    def test_distance_matrix_symmetric_zero_diag(self):
        grid = GridMap(3, 3, cell_size_km=1.5)
        dist = grid.distance_matrix_km
        assert np.allclose(dist, dist.T)
        assert np.allclose(np.diag(dist), 0.0)

    def test_adjacent_distance_is_cell_size(self):
        grid = GridMap(3, 3, cell_size_km=1.5)
        assert grid.distance_km(0, 1) == pytest.approx(1.5)
        assert grid.distance_km(0, 3) == pytest.approx(1.5)
        assert grid.distance_km(0, 4) == pytest.approx(1.5 * np.sqrt(2))

    def test_nearest_cell(self):
        grid = GridMap(3, 3, cell_size_km=1.0)
        assert grid.nearest_cell(0.1, 0.1) == 0
        assert grid.nearest_cell(2.1, 1.9) == 8

    def test_snap_to_grid(self):
        grid = GridMap(3, 3, cell_size_km=1.0)
        cell, dist = grid.snap_to_grid(0.4, 0.0)
        assert cell == 0
        assert dist == pytest.approx(0.4)


class TestNeighbors:
    def test_corner_four(self):
        grid = GridMap(3, 3)
        assert grid.neighbors(0, diagonal=False) == (1, 3)

    def test_corner_eight(self):
        grid = GridMap(3, 3)
        assert grid.neighbors(0, diagonal=True) == (1, 3, 4)

    def test_center_eight(self):
        grid = GridMap(3, 3)
        assert grid.neighbors(4) == (0, 1, 2, 3, 5, 6, 7, 8)

    def test_cells_within_km(self):
        grid = GridMap(3, 3, cell_size_km=1.0)
        assert set(grid.cells_within_km(4, 1.0)) == {1, 3, 4, 5, 7}

    def test_single_cell_grid_has_no_neighbors(self):
        grid = GridMap(1, 1)
        assert grid.neighbors(0) == ()


class TestRectangle:
    def test_rectangle_cells(self):
        grid = GridMap(3, 4)
        cells = grid.rectangle_cells((0, 1), (1, 2))
        assert cells == (1, 2, 5, 6)

    def test_rectangle_rejects_bad_range(self):
        grid = GridMap(3, 4)
        with pytest.raises(GridError):
            grid.rectangle_cells((0, 3), (0, 0))


class TestTrajectoryError:
    def test_zero_for_identical(self):
        grid = GridMap(3, 3)
        assert grid.trajectory_error_km([0, 1, 2], [0, 1, 2]) == 0.0

    def test_average(self):
        grid = GridMap(1, 3, cell_size_km=2.0)
        # errors: 0 km, 2 km -> mean 1 km
        assert grid.trajectory_error_km([0, 1], [0, 2]) == pytest.approx(1.0)

    def test_length_mismatch(self):
        grid = GridMap(2, 2)
        with pytest.raises(GridError):
            grid.trajectory_error_km([0], [0, 1])

    def test_empty_rejected(self):
        grid = GridMap(2, 2)
        with pytest.raises(GridError):
            grid.trajectory_error_km([], [])
