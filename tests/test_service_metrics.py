"""Service metrics: histogram percentiles and thread-safe counters."""

import asyncio
import threading
from dataclasses import dataclass

import pytest

from repro.service.metrics import FAILURE_KINDS, LatencyHistogram, ServiceMetrics


@dataclass
class FakeRecord:
    conservative: bool = False
    forced_uniform: bool = False


class TestLatencyHistogram:
    def test_empty(self):
        histogram = LatencyHistogram()
        assert histogram.count == 0
        assert histogram.quantile(0.99) == 0.0
        assert histogram.mean == 0.0

    def test_quantiles_never_underestimate(self):
        histogram = LatencyHistogram()
        values = [0.001 * (i + 1) for i in range(100)]  # 1ms .. 100ms
        for value in values:
            histogram.record(value)
        values.sort()
        for q in (0.5, 0.9, 0.99):
            exact = values[min(int(q * len(values)), len(values) - 1)]
            estimate = histogram.quantile(q)
            assert estimate >= exact * 0.999
            # log buckets: bounded overestimate (<= one bucket width)
            assert estimate <= exact * 1.25

    def test_quantile_clamped_to_observed_max(self):
        histogram = LatencyHistogram()
        histogram.record(0.005)
        assert histogram.quantile(1.0) == pytest.approx(0.005)
        assert histogram.quantile(0.5) == pytest.approx(0.005)

    def test_extremes_land_in_edge_buckets(self):
        histogram = LatencyHistogram()
        histogram.record(1e-9)   # below floor
        histogram.record(1e9)    # above ceiling
        assert histogram.count == 2
        assert histogram.quantile(1.0) == pytest.approx(1e9)

    def test_mean_and_snapshot(self):
        histogram = LatencyHistogram()
        histogram.record(0.010)
        histogram.record(0.030)
        assert histogram.mean == pytest.approx(0.020)
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 2
        assert snapshot["mean_ms"] == pytest.approx(20.0)
        assert snapshot["p99_ms"] >= snapshot["p50_ms"] > 0

    def test_bad_quantile_rejected(self):
        with pytest.raises(ValueError):
            LatencyHistogram().quantile(1.5)


class TestServiceMetrics:
    def test_counters_accumulate(self):
        metrics = ServiceMetrics()
        metrics.record_request("step")
        metrics.record_request("step")
        metrics.record_request("open")
        metrics.record_error("busy")
        metrics.record_session_event("opened")
        metrics.record_session_event("evicted", 3)
        metrics.record_step(0.002, FakeRecord(conservative=True))
        metrics.record_step(0.004, FakeRecord(forced_uniform=True))
        snapshot = metrics.snapshot()
        assert snapshot["requests"] == {"step": 2, "open": 1}
        assert snapshot["errors"] == {"busy": 1}
        assert snapshot["sessions"]["opened"] == 1
        assert snapshot["sessions"]["evicted"] == 3
        assert snapshot["releases"] == {"conservative": 1, "forced_uniform": 1}
        assert snapshot["step_latency"]["count"] == 2

    def test_snapshot_is_a_copy(self):
        metrics = ServiceMetrics()
        metrics.record_request("stats")
        snapshot = metrics.snapshot()
        snapshot["requests"]["stats"] = 99
        assert metrics.snapshot()["requests"]["stats"] == 1

    def test_thread_safe_recording_loses_nothing(self):
        metrics = ServiceMetrics()
        n_threads, per_thread = 8, 2_000

        def hammer():
            for _ in range(per_thread):
                metrics.record_request("step")
                metrics.record_step(0.001, FakeRecord())

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        snapshot = metrics.snapshot()
        assert snapshot["requests"]["step"] == n_threads * per_thread
        assert snapshot["step_latency"]["count"] == n_threads * per_thread

    def test_failures_are_first_class(self):
        metrics = ServiceMetrics()
        # seeded at zero so dashboards see the family before the first loss
        assert metrics.snapshot()["failures"] == {k: 0 for k in FAILURE_KINDS}
        metrics.record_failure("sessions_lost", 3)
        metrics.record_failure("sessions_lost", 0)  # zero losses: no-op
        metrics.record_error("worker_down")
        metrics.record_error("shard_down")
        metrics.record_error("busy")  # ordinary error, not a loss
        snapshot = metrics.snapshot()
        assert snapshot["failures"] == {
            "sessions_lost": 3,
            "worker_down": 1,
            "shard_down": 1,
        }
        assert snapshot["errors"]["busy"] == 1

    def test_scenario_digest_cardinality_is_bounded(self):
        from repro.service.metrics import MAX_SCENARIO_DIGESTS

        metrics = ServiceMetrics()
        for i in range(MAX_SCENARIO_DIGESTS + 10):
            metrics.record_step(0.001, FakeRecord(), scenario=f"digest-{i}")
        per_scenario = metrics.snapshot()["scenario_step_latency"]
        assert len(per_scenario) == MAX_SCENARIO_DIGESTS + 1  # + "other"
        assert per_scenario["other"]["count"] == 10


class TestDumpMergeAggregate:
    @staticmethod
    def _populated(step_ms, failures=0):
        metrics = ServiceMetrics()
        metrics.record_request("step")
        metrics.record_request("open")
        metrics.record_error("busy")
        metrics.record_session_event("opened")
        metrics.record_step(step_ms / 1e3, FakeRecord(conservative=True), scenario="d1")
        if failures:
            metrics.record_failure("sessions_lost", failures)
        return metrics

    def test_dump_round_trips_through_merge(self):
        a = self._populated(2.0, failures=2)
        b = self._populated(8.0)
        merged = ServiceMetrics()
        merged.merge_dump(a.dump())
        merged.merge_dump(b.dump())
        snapshot = merged.snapshot()
        assert snapshot["requests"] == {"step": 2, "open": 2}
        assert snapshot["errors"] == {"busy": 2}
        assert snapshot["sessions"]["opened"] == 2
        assert snapshot["releases"]["conservative"] == 2
        assert snapshot["failures"]["sessions_lost"] == 2
        assert snapshot["step_latency"]["count"] == 2
        # percentiles recompute from merged buckets, not averaged snapshots
        assert snapshot["step_latency"]["max_ms"] >= 8.0
        assert snapshot["scenario_step_latency"]["d1"]["count"] == 2

    def test_merge_tolerates_dumps_from_older_builds(self):
        old_style = self._populated(1.0).dump()
        del old_style["failures"]
        del old_style["scenario_step_latency"]
        merged = ServiceMetrics()
        merged.merge_dump(old_style)
        snapshot = merged.snapshot()
        assert snapshot["requests"]["step"] == 1
        assert snapshot["failures"] == {k: 0 for k in FAILURE_KINDS}

    def test_aggregate_equals_sum_of_parts(self):
        parts = [self._populated(float(i + 1)) for i in range(4)]
        merged = ServiceMetrics.aggregate(part.dump() for part in parts)
        snapshot = merged.snapshot()
        assert snapshot["requests"]["step"] == 4
        assert snapshot["step_latency"]["count"] == 4
        total_releases = sum(
            part.snapshot()["releases"]["conservative"] for part in parts
        )
        assert snapshot["releases"]["conservative"] == total_releases

    def test_hammer_dump_and_merge_under_concurrent_writers(self):
        """Readers (dump/snapshot/merge) race writers; nothing is lost.

        Writers are both plain threads and an asyncio event loop -- the
        exact mix a live server has (executor pool + loop callbacks).
        """
        source = ServiceMetrics()
        sink = ServiceMetrics()
        n_threads, per_thread, loop_writes = 4, 1_000, 1_000
        stop = threading.Event()

        def write():
            for i in range(per_thread):
                source.record_request("step")
                source.record_step(0.001, FakeRecord(), scenario="d1")
                if i % 100 == 0:
                    source.record_failure("sessions_lost")

        def read_and_merge():
            while not stop.is_set():
                dump = source.dump()
                # a dump taken mid-flight is internally consistent
                assert dump["step_latency"]["count"] == sum(
                    dump["step_latency"]["counts"]
                )
                sink.merge_dump(dump)
                source.snapshot()

        async def loop_writer():
            for _ in range(loop_writes):
                source.record_request("stats")
                await asyncio.sleep(0)

        writers = [threading.Thread(target=write) for _ in range(n_threads)]
        reader = threading.Thread(target=read_and_merge)
        for thread in writers:
            thread.start()
        reader.start()
        asyncio.run(loop_writer())
        for thread in writers:
            thread.join()
        stop.set()
        reader.join()
        snapshot = source.snapshot()
        assert snapshot["requests"]["step"] == n_threads * per_thread
        assert snapshot["requests"]["stats"] == loop_writes
        assert snapshot["step_latency"]["count"] == n_threads * per_thread
        assert snapshot["failures"]["sessions_lost"] == n_threads * (
            per_thread // 100
        )

    def test_hammer_registry_gauges_with_loop_and_threads(self):
        """Callback + set-style gauges stay coherent under mixed writers."""
        metrics = ServiceMetrics()
        registry = metrics.registry
        state = {"depth": 0}
        registry.gauge("repro_queue_depth", fn=lambda: state["depth"])
        inflight = registry.gauge("repro_inflight", labelnames=("worker",))
        n_threads, per_thread = 4, 500

        def hammer(worker):
            for _ in range(per_thread):
                inflight.inc(worker=worker)
                state["depth"] += 1
                inflight.dec(worker=worker)

        async def scrape_loop():
            for _ in range(50):
                text = registry.render()
                assert "repro_queue_depth" in text
                await asyncio.sleep(0)

        threads = [
            threading.Thread(target=hammer, args=(f"w{i}",))
            for i in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        asyncio.run(scrape_loop())
        for thread in threads:
            thread.join()
        for i in range(n_threads):
            assert inflight.value(worker=f"w{i}") == 0.0
        assert f"repro_queue_depth {n_threads * per_thread}" in registry.render()
