"""Service metrics: histogram percentiles and thread-safe counters."""

import threading
from dataclasses import dataclass

import pytest

from repro.service.metrics import LatencyHistogram, ServiceMetrics


@dataclass
class FakeRecord:
    conservative: bool = False
    forced_uniform: bool = False


class TestLatencyHistogram:
    def test_empty(self):
        histogram = LatencyHistogram()
        assert histogram.count == 0
        assert histogram.quantile(0.99) == 0.0
        assert histogram.mean == 0.0

    def test_quantiles_never_underestimate(self):
        histogram = LatencyHistogram()
        values = [0.001 * (i + 1) for i in range(100)]  # 1ms .. 100ms
        for value in values:
            histogram.record(value)
        values.sort()
        for q in (0.5, 0.9, 0.99):
            exact = values[min(int(q * len(values)), len(values) - 1)]
            estimate = histogram.quantile(q)
            assert estimate >= exact * 0.999
            # log buckets: bounded overestimate (<= one bucket width)
            assert estimate <= exact * 1.25

    def test_quantile_clamped_to_observed_max(self):
        histogram = LatencyHistogram()
        histogram.record(0.005)
        assert histogram.quantile(1.0) == pytest.approx(0.005)
        assert histogram.quantile(0.5) == pytest.approx(0.005)

    def test_extremes_land_in_edge_buckets(self):
        histogram = LatencyHistogram()
        histogram.record(1e-9)   # below floor
        histogram.record(1e9)    # above ceiling
        assert histogram.count == 2
        assert histogram.quantile(1.0) == pytest.approx(1e9)

    def test_mean_and_snapshot(self):
        histogram = LatencyHistogram()
        histogram.record(0.010)
        histogram.record(0.030)
        assert histogram.mean == pytest.approx(0.020)
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 2
        assert snapshot["mean_ms"] == pytest.approx(20.0)
        assert snapshot["p99_ms"] >= snapshot["p50_ms"] > 0

    def test_bad_quantile_rejected(self):
        with pytest.raises(ValueError):
            LatencyHistogram().quantile(1.5)


class TestServiceMetrics:
    def test_counters_accumulate(self):
        metrics = ServiceMetrics()
        metrics.record_request("step")
        metrics.record_request("step")
        metrics.record_request("open")
        metrics.record_error("busy")
        metrics.record_session_event("opened")
        metrics.record_session_event("evicted", 3)
        metrics.record_step(0.002, FakeRecord(conservative=True))
        metrics.record_step(0.004, FakeRecord(forced_uniform=True))
        snapshot = metrics.snapshot()
        assert snapshot["requests"] == {"step": 2, "open": 1}
        assert snapshot["errors"] == {"busy": 1}
        assert snapshot["sessions"]["opened"] == 1
        assert snapshot["sessions"]["evicted"] == 3
        assert snapshot["releases"] == {"conservative": 1, "forced_uniform": 1}
        assert snapshot["step_latency"]["count"] == 2

    def test_snapshot_is_a_copy(self):
        metrics = ServiceMetrics()
        metrics.record_request("stats")
        snapshot = metrics.snapshot()
        snapshot["requests"]["stats"] = 99
        assert metrics.snapshot()["requests"]["stats"] == 1

    def test_thread_safe_recording_loses_nothing(self):
        metrics = ServiceMetrics()
        n_threads, per_thread = 8, 2_000

        def hammer():
            for _ in range(per_thread):
                metrics.record_request("step")
                metrics.record_step(0.001, FakeRecord())

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        snapshot = metrics.snapshot()
        assert snapshot["requests"]["step"] == n_threads * per_thread
        assert snapshot["step_latency"]["count"] == n_threads * per_thread
