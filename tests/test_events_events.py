"""Unit tests for PRESENCE and PATTERN event classes."""

import pytest

from repro.errors import EventError
from repro.events.events import PatternEvent, PresenceEvent
from repro.geo.regions import Region


class TestPresence:
    def test_window(self):
        event = PresenceEvent(Region.from_cells(5, [0, 1]), start=2, end=4)
        assert event.window == (2, 4)
        assert event.length == 3
        assert event.width == 2

    def test_expression_matches_definition(self):
        event = PresenceEvent(Region.from_cells(3, [0, 1]), start=3, end=4)
        # Example II.1: (u3=s1) v (u3=s2) v (u4=s1) v (u4=s2)
        expr = event.to_expression()
        assert len(expr.predicates()) == 4

    def test_ground_truth(self):
        event = PresenceEvent(Region.from_cells(3, [0]), start=2, end=3)
        assert event.ground_truth([2, 0, 2]) is True
        assert event.ground_truth([0, 2, 2]) is False  # visit outside window

    def test_ground_truth_short_trajectory(self):
        event = PresenceEvent(Region.from_cells(3, [0]), start=2, end=3)
        with pytest.raises(EventError):
            event.ground_truth([0, 1])

    def test_region_at_inside_window_only(self):
        event = PresenceEvent(Region.from_cells(3, [0]), start=2, end=3)
        assert event.region_at(2).cells == (0,)
        with pytest.raises(EventError):
            event.region_at(1)

    def test_rejects_empty_region(self):
        with pytest.raises(EventError):
            PresenceEvent(Region.empty(3), start=1, end=1)

    def test_rejects_full_map(self):
        with pytest.raises(EventError, match="whole map"):
            PresenceEvent(Region.full(3), start=1, end=1)

    def test_rejects_reversed_window(self):
        with pytest.raises(EventError):
            PresenceEvent(Region.from_cells(3, [0]), start=4, end=2)


class TestPattern:
    def _regions(self):
        return [
            Region.from_cells(4, [0, 1]),
            Region.from_cells(4, [2]),
            Region.from_cells(4, [1, 3]),
        ]

    def test_window(self):
        event = PatternEvent(self._regions(), start=2)
        assert event.window == (2, 4)
        assert event.length == 3
        assert event.width == 2

    def test_region_at(self):
        event = PatternEvent(self._regions(), start=2)
        assert event.region_at(3).cells == (2,)

    def test_ground_truth_requires_all(self):
        event = PatternEvent(self._regions(), start=2)
        assert event.ground_truth([9 % 4, 0, 2, 3]) is True
        assert event.ground_truth([0, 0, 0, 3]) is False

    def test_expression_structure(self):
        # Example II.2: ((u2=s1) v (u2=s2)) ^ ((u3=s2) v (u3=s3))
        regions = [Region.from_cells(3, [0, 1]), Region.from_cells(3, [1, 2])]
        event = PatternEvent(regions, start=2)
        assert len(event.to_expression().predicates()) == 4

    def test_rejects_empty(self):
        with pytest.raises(EventError):
            PatternEvent([], start=1)

    def test_rejects_empty_region(self):
        with pytest.raises(EventError):
            PatternEvent([Region.empty(3)], start=1)

    def test_rejects_mixed_maps(self):
        with pytest.raises(EventError):
            PatternEvent(
                [Region.from_cells(3, [0]), Region.from_cells(4, [0])], start=1
            )

    def test_rejects_all_full_regions(self):
        with pytest.raises(EventError):
            PatternEvent([Region.full(3), Region.full(3)], start=1)

    def test_single_region_pattern_equals_presence_semantics(self):
        region = Region.from_cells(3, [1])
        pattern = PatternEvent([region], start=2)
        presence = PresenceEvent(region, start=2, end=2)
        for trajectory in ([0, 1, 0], [0, 0, 1], [1, 0, 0]):
            assert pattern.ground_truth(trajectory) == presence.ground_truth(
                trajectory
            )
