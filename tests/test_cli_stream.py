"""The ``repro stream`` JSON-lines service loop."""

import io
import json

import pytest

from repro.cli import main as cli_main

BASE_ARGS = ["stream", "--rows", "5", "--cols", "5", "--horizon", "10", "--seed", "3"]


def run_stream(monkeypatch, capsys, lines, args=()):
    monkeypatch.setattr("sys.stdin", io.StringIO("\n".join(lines) + "\n"))
    code = cli_main(BASE_ARGS + list(args))
    captured = capsys.readouterr()
    return code, [json.loads(l) for l in captured.out.splitlines()], captured.err


class TestStream:
    def test_happy_path_and_summary(self, monkeypatch, capsys):
        code, out, _ = run_stream(
            monkeypatch,
            capsys,
            ['{"session":"u1","cell":3}', '{"session":"u1","cell":4}',
             '{"op":"finish"}'],
        )
        assert code == 0
        assert [o.get("t") for o in out[:2]] == [1, 2]
        assert out[2]["op"] == "finished"
        assert out[2]["n_released"] == 2

    def test_bad_lines_do_not_kill_the_service(self, monkeypatch, capsys):
        code, out, err = run_stream(
            monkeypatch,
            capsys,
            [
                '{"session":"u1","cell":3}',
                "not json",
                "[1, 2]",                       # valid JSON, not an object
                '{"session":"u1","cell":null}',  # non-numeric cell
                '{"cell":5}',                    # missing session
                '{"session":"u1","cell":999}',   # out of range
                '{"session":"ghost","op":"finish"}',
                '{"session":"u1","cell":4}',
            ],
        )
        assert code == 0
        records = [o for o in out if "t" in o]
        assert [r["t"] for r in records] == [1, 2]  # service kept going
        assert len(err.splitlines()) >= 6  # one error line per bad input

    def test_malformed_message_opens_no_phantom_session(self, monkeypatch, capsys):
        code, out, err = run_stream(
            monkeypatch,
            capsys,
            ['{"session":"u1","cell":3}', '{"session":"phantom"}', '{"op":"finish"}'],
        )
        assert code == 0
        assert "missing field 'cell'" in err
        finished = [o["session"] for o in out if o.get("op") == "finished"]
        assert finished == ["u1"]  # no summary for a session never stepped

    def test_reopened_session_gets_fresh_noise(self, monkeypatch, capsys):
        # Stream two full incarnations of the same session name: their
        # RNG streams must differ (the seed is salted per incarnation).
        cells = [0, 1, 2, 3, 4, 5]
        lines = [json.dumps({"session": "u", "cell": c}) for c in cells]
        script = (
            lines + ['{"session":"u","op":"finish"}']
            + lines + ['{"session":"u","op":"finish"}']
        )
        code, out, _ = run_stream(monkeypatch, capsys, script)
        assert code == 0
        records = [o for o in out if "t" in o]
        first = [r["released_cell"] for r in records[: len(cells)]]
        second = [r["released_cell"] for r in records[len(cells) :]]
        assert first != second

    def test_bad_config_is_a_clean_error(self, monkeypatch, capsys):
        monkeypatch.setattr("sys.stdin", io.StringIO(""))
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["stream", "--rows", "5", "--cols", "5", "--horizon", "3"])
        assert excinfo.value.code == 2  # argparse error, not a traceback
        assert "beyond horizon" in capsys.readouterr().err

    def test_negative_seed_rejected_at_parse_time(self, monkeypatch, capsys):
        monkeypatch.setattr("sys.stdin", io.StringIO(""))
        with pytest.raises(SystemExit) as excinfo:
            cli_main(BASE_ARGS[:-1] + ["-1"])  # --seed -1
        assert excinfo.value.code == 2
        assert "--seed must be non-negative" in capsys.readouterr().err


class _InterruptedStdin:
    """Stdin that delivers some lines, then a SIGINT (KeyboardInterrupt)."""

    def __init__(self, lines):
        self._lines = lines

    def __iter__(self):
        yield from self._lines
        raise KeyboardInterrupt


class TestStreamCheckpoint:
    """``--checkpoint-dir``: SIGINT suspends, the next run resumes."""

    CELLS = [0, 1, 2, 3, 4, 5]

    def _lines(self, cells, finish=False):
        out = [json.dumps({"session": "u", "cell": c}) for c in cells]
        if finish:
            out.append('{"op":"finish"}')
        return out

    def test_sigint_checkpoints_and_resume_is_bit_identical(
        self, monkeypatch, capsys, tmp_path
    ):
        args = ["--checkpoint-dir", str(tmp_path)]
        # the uninterrupted reference
        code, reference, _ = run_stream(
            monkeypatch, capsys, self._lines(self.CELLS, finish=True)
        )
        assert code == 0

        # interrupted after 3 fixes: exit 0, checkpoint on disk
        monkeypatch.setattr(
            "sys.stdin", _InterruptedStdin(self._lines(self.CELLS[:3]))
        )
        code = cli_main(BASE_ARGS + args)
        captured = capsys.readouterr()
        assert code == 0
        first = [json.loads(l) for l in captured.out.splitlines()]
        assert json.loads(captured.err.splitlines()[-1]) == {
            "op": "checkpointed",
            "sessions": ["u"],
        }
        assert list(tmp_path.glob("*.json"))

        # resumed run: picks up mid-trajectory, consumes the checkpoint
        code, second, err = run_stream(
            monkeypatch, capsys, self._lines(self.CELLS[3:], finish=True), args
        )
        assert code == 0
        assert '"resumed"' in err
        assert not list(tmp_path.glob("*.json"))
        assert first + second == reference

    def test_incarnation_counts_survive_checkpoint_resume(
        self, monkeypatch, capsys, tmp_path
    ):
        # finish 'u', stream it again, interrupt, resume, finish,
        # stream a third incarnation: every incarnation's noise must
        # match the uninterrupted reference (seed salting continues
        # counting across the SIGINT instead of resetting).
        args = ["--checkpoint-dir", str(tmp_path)]
        script_head = self._lines([0, 1], finish=True) + self._lines([2])
        script_tail = self._lines([3], finish=True) + self._lines(
            [4, 5], finish=True
        )
        code, reference, _ = run_stream(
            monkeypatch, capsys, script_head + script_tail
        )
        assert code == 0

        monkeypatch.setattr("sys.stdin", _InterruptedStdin(script_head))
        assert cli_main(BASE_ARGS + args) == 0
        captured = capsys.readouterr()
        first = [json.loads(l) for l in captured.out.splitlines()]
        assert (tmp_path / "_incarnations.json").exists()

        code, second, _ = run_stream(monkeypatch, capsys, script_tail, args)
        assert code == 0
        assert first + second == reference
        assert not (tmp_path / "_incarnations.json").exists()

    def test_sigint_without_checkpoint_dir_still_raises(self, monkeypatch, capsys):
        monkeypatch.setattr("sys.stdin", _InterruptedStdin(self._lines([0, 1])))
        with pytest.raises(KeyboardInterrupt):
            cli_main(BASE_ARGS)

    def test_resume_with_mismatched_config_is_an_error_line(
        self, monkeypatch, capsys, tmp_path
    ):
        args = ["--checkpoint-dir", str(tmp_path)]
        monkeypatch.setattr(
            "sys.stdin", _InterruptedStdin(self._lines(self.CELLS[:2]))
        )
        assert cli_main(BASE_ARGS + args) == 0
        capsys.readouterr()

        # same checkpoint dir, but a horizon the parked state has already
        # passed: the resume is rejected as an error line, the service
        # keeps going, and the stale checkpoint file survives untouched
        monkeypatch.setattr("sys.stdin", io.StringIO('{"op":"finish"}\n'))
        code = cli_main(
            BASE_ARGS + args + ["--event-window", "1", "1", "--horizon", "1"]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "cannot resume" in captured.err
        assert list(tmp_path.glob("*.json"))
