"""The ``repro stream`` JSON-lines service loop."""

import io
import json

import pytest

from repro.cli import main as cli_main

BASE_ARGS = ["stream", "--rows", "5", "--cols", "5", "--horizon", "10", "--seed", "3"]


def run_stream(monkeypatch, capsys, lines, args=()):
    monkeypatch.setattr("sys.stdin", io.StringIO("\n".join(lines) + "\n"))
    code = cli_main(BASE_ARGS + list(args))
    captured = capsys.readouterr()
    return code, [json.loads(l) for l in captured.out.splitlines()], captured.err


class TestStream:
    def test_happy_path_and_summary(self, monkeypatch, capsys):
        code, out, _ = run_stream(
            monkeypatch,
            capsys,
            ['{"session":"u1","cell":3}', '{"session":"u1","cell":4}',
             '{"op":"finish"}'],
        )
        assert code == 0
        assert [o.get("t") for o in out[:2]] == [1, 2]
        assert out[2]["op"] == "finished"
        assert out[2]["n_released"] == 2

    def test_bad_lines_do_not_kill_the_service(self, monkeypatch, capsys):
        code, out, err = run_stream(
            monkeypatch,
            capsys,
            [
                '{"session":"u1","cell":3}',
                "not json",
                "[1, 2]",                       # valid JSON, not an object
                '{"session":"u1","cell":null}',  # non-numeric cell
                '{"cell":5}',                    # missing session
                '{"session":"u1","cell":999}',   # out of range
                '{"session":"ghost","op":"finish"}',
                '{"session":"u1","cell":4}',
            ],
        )
        assert code == 0
        records = [o for o in out if "t" in o]
        assert [r["t"] for r in records] == [1, 2]  # service kept going
        assert len(err.splitlines()) >= 6  # one error line per bad input

    def test_malformed_message_opens_no_phantom_session(self, monkeypatch, capsys):
        code, out, err = run_stream(
            monkeypatch,
            capsys,
            ['{"session":"u1","cell":3}', '{"session":"phantom"}', '{"op":"finish"}'],
        )
        assert code == 0
        assert "missing field 'cell'" in err
        finished = [o["session"] for o in out if o.get("op") == "finished"]
        assert finished == ["u1"]  # no summary for a session never stepped

    def test_reopened_session_gets_fresh_noise(self, monkeypatch, capsys):
        # Stream two full incarnations of the same session name: their
        # RNG streams must differ (the seed is salted per incarnation).
        cells = [0, 1, 2, 3, 4, 5]
        lines = [json.dumps({"session": "u", "cell": c}) for c in cells]
        script = (
            lines + ['{"session":"u","op":"finish"}']
            + lines + ['{"session":"u","op":"finish"}']
        )
        code, out, _ = run_stream(monkeypatch, capsys, script)
        assert code == 0
        records = [o for o in out if "t" in o]
        first = [r["released_cell"] for r in records[: len(cells)]]
        second = [r["released_cell"] for r in records[len(cells) :]]
        assert first != second

    def test_bad_config_is_a_clean_error(self, monkeypatch, capsys):
        monkeypatch.setattr("sys.stdin", io.StringIO(""))
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["stream", "--rows", "5", "--cols", "5", "--horizon", "3"])
        assert excinfo.value.code == 2  # argparse error, not a traceback
        assert "beyond horizon" in capsys.readouterr().err

    def test_negative_seed_rejected_at_parse_time(self, monkeypatch, capsys):
        monkeypatch.setattr("sys.stdin", io.StringIO(""))
        with pytest.raises(SystemExit) as excinfo:
            cli_main(BASE_ARGS[:-1] + ["-1"])  # --seed -1
        assert excinfo.value.code == 2
        assert "--seed must be non-negative" in capsys.readouterr().err
