"""Unit tests for Region algebra."""

import numpy as np
import pytest

from repro.errors import RegionError
from repro.geo.grid import GridMap
from repro.geo.regions import Region


class TestConstruction:
    def test_dedup_and_sort(self):
        region = Region(9, (3, 1, 3, 2))
        assert region.cells == (1, 2, 3)

    def test_from_indicator_roundtrip(self):
        region = Region.from_cells(5, [0, 4])
        again = Region.from_indicator(region.indicator())
        assert again == region

    def test_from_indicator_rejects_non_binary(self):
        with pytest.raises(RegionError):
            Region.from_indicator([0.5, 0.5])

    def test_from_range(self):
        assert Region.from_range(10, 2, 4).cells == (2, 3, 4)

    def test_from_range_empty_rejected(self):
        with pytest.raises(RegionError):
            Region.from_range(10, 4, 2)

    def test_rectangle(self):
        grid = GridMap(3, 3)
        region = Region.rectangle(grid, (0, 0), (0, 2))
        assert region.cells == (0, 1, 2)

    def test_disk(self):
        grid = GridMap(3, 3, cell_size_km=1.0)
        region = Region.disk(grid, 4, 1.0)
        assert set(region.cells) == {1, 3, 4, 5, 7}

    def test_out_of_range_cell(self):
        with pytest.raises(Exception):
            Region(4, (4,))

    def test_full_and_empty(self):
        assert len(Region.full(4)) == 4
        assert Region.empty(4).is_empty


class TestSetAlgebra:
    def test_union_intersection_difference(self):
        a = Region.from_cells(6, [0, 1, 2])
        b = Region.from_cells(6, [2, 3])
        assert (a | b).cells == (0, 1, 2, 3)
        assert (a & b).cells == (2,)
        assert (a - b).cells == (0, 1)

    def test_complement(self):
        a = Region.from_cells(4, [1, 2])
        assert a.complement().cells == (0, 3)

    def test_incompatible_maps_rejected(self):
        with pytest.raises(RegionError):
            Region.from_cells(4, [0]) | Region.from_cells(5, [0])

    def test_membership(self):
        region = Region.from_cells(5, [2])
        assert 2 in region
        assert 3 not in region

    def test_hashable(self):
        assert len({Region.from_cells(4, [1]), Region.from_cells(4, [1])}) == 1


class TestNumericViews:
    def test_indicator(self):
        region = Region.from_cells(4, [1, 3])
        assert region.indicator().tolist() == [0.0, 1.0, 0.0, 1.0]

    def test_mask(self):
        region = Region.from_cells(3, [0])
        assert region.mask().tolist() == [True, False, False]

    def test_probability_mass(self):
        region = Region.from_cells(4, [0, 1])
        dist = np.array([0.1, 0.2, 0.3, 0.4])
        assert region.probability_mass(dist) == pytest.approx(0.3)

    def test_probability_mass_empty(self):
        assert Region.empty(3).probability_mass([0.2, 0.3, 0.5]) == 0.0

    def test_probability_mass_size_mismatch(self):
        with pytest.raises(RegionError):
            Region.from_cells(3, [0]).probability_mass([0.5, 0.5])

    def test_width(self):
        assert Region.from_cells(9, [1, 5, 7]).width == 3
