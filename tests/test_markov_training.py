"""Unit tests for Markov training (MLE + smoothing)."""

import numpy as np
import pytest

from repro.errors import MarkovError
from repro.markov.training import (
    count_transitions,
    fit_initial_distribution,
    fit_transition_matrix,
    log_likelihood,
)
from repro.markov.transition import TransitionMatrix


class TestCounts:
    def test_single_trajectory(self):
        counts = count_transitions([[0, 1, 1, 2]], 3)
        assert counts[0, 1] == 1
        assert counts[1, 1] == 1
        assert counts[1, 2] == 1
        assert counts.sum() == 3

    def test_multiple_trajectories(self):
        counts = count_transitions([[0, 1], [0, 1], [1, 0]], 2)
        assert counts[0, 1] == 2
        assert counts[1, 0] == 1

    def test_rejects_out_of_range(self):
        with pytest.raises(MarkovError):
            count_transitions([[0, 5]], 3)

    def test_rejects_all_short(self):
        with pytest.raises(MarkovError):
            count_transitions([[0], [1]], 3)


class TestFit:
    def test_mle(self):
        chain = fit_transition_matrix([[0, 1, 0, 1, 0, 2]], 3)
        # From 0: two transitions to 1, one to 2.
        assert chain.matrix[0, 1] == pytest.approx(2 / 3)
        assert chain.matrix[0, 2] == pytest.approx(1 / 3)

    def test_unvisited_state_self_loops(self):
        chain = fit_transition_matrix([[0, 1, 0]], 3)
        assert chain.matrix[2, 2] == 1.0

    def test_smoothing_fills_zeros(self):
        chain = fit_transition_matrix([[0, 1, 0]], 3, smoothing=0.1)
        assert np.all(chain.matrix > 0)
        assert np.allclose(chain.matrix.sum(axis=1), 1.0)

    def test_smoothing_limits_to_uniform(self):
        chain = fit_transition_matrix([[0, 1]], 2, smoothing=1e9)
        assert np.allclose(chain.matrix, 0.5, atol=1e-6)

    def test_recovers_generating_chain(self, rng):
        truth = TransitionMatrix([[0.8, 0.2], [0.3, 0.7]])
        state = 0
        trajectory = [state]
        for _ in range(20000):
            state = int(rng.choice(2, p=truth.matrix[state]))
            trajectory.append(state)
        fitted = fit_transition_matrix([trajectory], 2)
        assert np.allclose(fitted.matrix, truth.matrix, atol=0.02)


class TestInitialDistribution:
    def test_counts_first_cells(self):
        pi = fit_initial_distribution([[0, 1], [0, 2], [1, 0]], 3)
        assert pi.tolist() == pytest.approx([2 / 3, 1 / 3, 0.0])

    def test_smoothing(self):
        pi = fit_initial_distribution([[0, 1]], 3, smoothing=1.0)
        assert np.all(pi > 0)
        assert pi.sum() == pytest.approx(1.0)

    def test_rejects_empty_without_smoothing(self):
        with pytest.raises(MarkovError):
            fit_initial_distribution([], 3)


class TestLogLikelihood:
    def test_matches_manual(self, paper_chain):
        ll = log_likelihood([0, 1, 2], paper_chain)
        assert ll == pytest.approx(np.log(0.2) + np.log(0.5))

    def test_with_initial(self, paper_chain):
        pi = np.array([0.5, 0.25, 0.25])
        ll = log_likelihood([1, 0], paper_chain, initial=pi)
        assert ll == pytest.approx(np.log(0.25) + np.log(0.4))

    def test_impossible_transition(self, paper_chain):
        assert log_likelihood([2, 0], paper_chain) == float("-inf")

    def test_rejects_short(self, paper_chain):
        with pytest.raises(MarkovError):
            log_likelihood([0], paper_chain)
