"""Unit tests for the naive enumeration baselines (Appendix B)."""

import numpy as np
import pytest

from repro.core.baseline import (
    enumerate_joint,
    enumerate_prior,
    pattern_joint_naive,
    pattern_prior_naive,
)
from repro.errors import QuantificationError
from repro.events.events import PatternEvent, PresenceEvent
from repro.events.expressions import at
from repro.geo.regions import Region

from conftest import random_chain, random_emission


class TestEnumeratePrior:
    def test_single_predicate_equals_marginal(self, paper_chain):
        pi = np.array([0.2, 0.5, 0.3])
        prior = enumerate_prior(paper_chain, at(2, 0), pi)
        marginal = (pi @ paper_chain.matrix)[0]
        assert prior == pytest.approx(marginal)

    def test_negation_complements(self, rng):
        chain = random_chain(3, rng)
        event = PresenceEvent(Region.from_cells(3, [0]), start=1, end=3)
        pi = np.array([0.3, 0.4, 0.3])
        expr = event.to_expression()
        total = enumerate_prior(chain, expr, pi) + enumerate_prior(chain, ~expr, pi)
        assert total == pytest.approx(1.0)

    def test_accepts_event_objects(self, paper_chain, paper_presence):
        pi = np.array([0.2, 0.5, 0.3])
        assert enumerate_prior(paper_chain, paper_presence, pi) > 0

    def test_rejects_garbage(self, paper_chain):
        with pytest.raises(QuantificationError):
            enumerate_prior(paper_chain, "not an event", [0.5, 0.25, 0.25])


class TestPatternNaive:
    def test_matches_generic_enumeration(self, rng):
        chain = random_chain(3, rng)
        pattern = PatternEvent(
            [Region.from_cells(3, [0, 1]), Region.from_cells(3, [2])], start=2
        )
        pi = np.array([0.25, 0.25, 0.5])
        fast = pattern_prior_naive(chain, pattern, pi)
        slow = enumerate_prior(chain, pattern, pi)
        assert fast == pytest.approx(slow)

    def test_joint_matches_windowed_enumeration(self, rng):
        """Algorithm 4's joint equals a window-only generic enumeration."""
        chain = random_chain(3, rng)
        pattern = PatternEvent(
            [Region.from_cells(3, [0, 1]), Region.from_cells(3, [1, 2])], start=2
        )
        pi = np.array([0.4, 0.2, 0.4])
        emission = random_emission(3, rng)
        observations = [1, 2]
        window_cols = np.stack([emission[:, o] for o in observations])
        fast = pattern_joint_naive(chain, pattern, pi, window_cols)

        # Generic check: emissions outside the window contribute factor 1.
        full_cols = np.ones((pattern.end, 3))
        full_cols[pattern.start - 1 :] = window_cols
        slow = enumerate_joint(chain, pattern, pi, full_cols)
        assert fast == pytest.approx(slow)

    def test_requires_pattern(self, paper_chain, paper_presence):
        with pytest.raises(QuantificationError):
            pattern_prior_naive(paper_chain, paper_presence, [0.4, 0.3, 0.3])

    def test_joint_shape_checked(self, paper_chain, paper_pattern):
        with pytest.raises(QuantificationError):
            pattern_joint_naive(
                paper_chain, paper_pattern, [0.4, 0.3, 0.3], np.ones((1, 3))
            )


class TestEnumerateJoint:
    def test_sums_to_observation_probability(self, rng):
        chain = random_chain(3, rng)
        emission = random_emission(3, rng)
        event = PresenceEvent(Region.from_cells(3, [1]), start=2, end=3)
        pi = np.array([0.5, 0.3, 0.2])
        observations = [0, 2, 1]
        cols = np.stack([emission[:, o] for o in observations])
        expr = event.to_expression()
        with_event = enumerate_joint(chain, expr, pi, cols)
        without = enumerate_joint(chain, ~expr, pi, cols)
        # forward likelihood
        from repro.core.forward_backward import sequence_likelihood

        assert with_event + without == pytest.approx(
            sequence_likelihood(chain, pi, cols)
        )

    def test_upto_t_validated(self, paper_chain, paper_presence):
        cols = np.ones((2, 3)) / 3
        with pytest.raises(QuantificationError):
            enumerate_joint(paper_chain, paper_presence, [0.4, 0.3, 0.3], cols, upto_t=5)
