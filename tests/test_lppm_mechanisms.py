"""Unit tests for the remaining mechanisms and the LPPM interface."""

import numpy as np
import pytest

from repro.errors import MechanismError
from repro.lppm.base import EmissionModel, emission_column
from repro.lppm.geo_ind import geo_indistinguishability_level
from repro.lppm.randomized_response import RandomizedResponseMechanism
from repro.lppm.uniform import UniformMechanism


class TestUniform:
    def test_emission_uniform(self):
        mech = UniformMechanism(4)
        assert np.allclose(mech.emission_matrix(), 0.25)

    def test_budget_zero(self):
        assert UniformMechanism(4).budget == 0.0

    def test_with_budget_only_zero(self):
        mech = UniformMechanism(4)
        assert mech.with_budget(0.0) is mech
        with pytest.raises(MechanismError):
            mech.with_budget(0.5)

    def test_perfectly_private(self):
        mech = UniformMechanism(4)
        distances = np.ones((4, 4)) - np.eye(4)
        assert geo_indistinguishability_level(mech.emission_matrix(), distances) == 0.0


class TestRandomizedResponse:
    def test_truth_probability(self):
        mech = RandomizedResponseMechanism(4, budget=np.log(3.0))
        # e^b / (e^b + k - 1) = 3 / 6
        assert mech.truth_probability == pytest.approx(0.5)

    def test_emission_rows(self):
        mech = RandomizedResponseMechanism(5, budget=1.0)
        matrix = mech.emission_matrix()
        assert np.allclose(matrix.sum(axis=1), 1.0)
        assert np.all(np.diag(matrix) > matrix[0, 1])

    def test_local_dp_ratio(self):
        budget = 0.8
        mech = RandomizedResponseMechanism(6, budget=budget)
        matrix = mech.emission_matrix()
        ratio = matrix.max(axis=0) / matrix.min(axis=0)
        assert np.all(ratio <= np.exp(budget) + 1e-12)

    def test_budget_zero_uniform(self):
        mech = RandomizedResponseMechanism(4, budget=0.0)
        assert np.allclose(mech.emission_matrix(), 0.25)

    def test_with_budget(self):
        mech = RandomizedResponseMechanism(4, budget=2.0)
        assert mech.halved().budget == pytest.approx(1.0)

    def test_rejects_small_domain(self):
        with pytest.raises(MechanismError):
            RandomizedResponseMechanism(1, budget=1.0)


class TestEmissionModel:
    def test_wraps_matrix(self):
        matrix = [[0.7, 0.3], [0.2, 0.8]]
        mech = EmissionModel(matrix, budget=1.5)
        assert mech.n_states == 2
        assert mech.budget == 1.5
        assert np.allclose(mech.emission_matrix(), matrix)

    def test_with_budget_requires_rescale(self):
        mech = EmissionModel([[1.0]], budget=1.0)
        with pytest.raises(MechanismError):
            mech.with_budget(0.5)

    def test_with_budget_via_rescale(self):
        def rescale(budget):
            p = 0.5 + budget / 4.0
            return [[p, 1 - p], [1 - p, p]]

        mech = EmissionModel(rescale(1.0), budget=1.0, rescale=rescale)
        smaller = mech.with_budget(0.5)
        assert smaller.emission_matrix()[0, 0] == pytest.approx(0.625)

    def test_emission_column_helper(self):
        col = emission_column([[0.7, 0.3], [0.2, 0.8]], 1, 2)
        assert col.tolist() == pytest.approx([0.3, 0.8])

    def test_perturb_distribution(self, rng):
        mech = EmissionModel([[0.9, 0.1], [0.1, 0.9]])
        hits = sum(mech.perturb(0, rng) == 0 for _ in range(2000))
        assert hits / 2000 == pytest.approx(0.9, abs=0.03)
