"""The cluster wire layer: bounded frames, typed codec, hash ring.

The load-bearing guarantees of :mod:`repro.cluster`'s bottom layer:

* frames are bounded in *both* directions -- an oversized send raises
  before any byte moves (channel stays usable), an oversized received
  header raises the same typed error (stream unrecoverable);
* the codec round-trips every engine type through its exact
  ``to_json``/``from_json`` form -- no pickle, no float rounding -- and
  rebuilds only allowlisted exception types from received bytes;
* a wire-version mismatch fails loudly as ``ProtocolError``;
* ring placement is a stable blake2b hash -- identical in every
  process and run, spread roughly uniformly, and removing one member
  relocates only that member's keys.
"""

import multiprocessing
import socket

import numpy as np
import pytest

from repro.cluster.codec import (
    BUILTIN_ERRORS,
    WIRE_VERSION,
    decode_message,
    decode_value,
    encode_call,
    encode_error,
    encode_ok,
    encode_value,
)
from repro.cluster.frames import (
    FRAME_HEADER,
    MAX_RPC_FRAME_BYTES,
    pack_frame,
    payload_length,
)
from repro.cluster.ring import DEFAULT_REPLICAS, HashRing, ring_hash
from repro.cluster.transport import PipeChannel, SocketChannel
from repro.engine.cache import CacheStats
from repro.errors import (
    FrameTooLargeError,
    ProtocolError,
    ServiceError,
    SessionError,
    ShardDownError,
    WorkerDownError,
)

from test_engine_shard import make_manager


# ----------------------------------------------------------------------
# frames
# ----------------------------------------------------------------------
class TestFrames:
    def test_pack_frame_round_trips_through_payload_length(self):
        frame = pack_frame(b"hello")
        assert payload_length(frame[: FRAME_HEADER.size]) == 5
        assert frame[FRAME_HEADER.size :] == b"hello"

    def test_oversized_send_raises_before_io(self):
        with pytest.raises(FrameTooLargeError):
            pack_frame(b"x" * 101, max_frame_bytes=100)
        # the bound is inclusive
        assert len(pack_frame(b"x" * 100, max_frame_bytes=100)) == 104

    def test_oversized_received_header_raises(self):
        header = FRAME_HEADER.pack(MAX_RPC_FRAME_BYTES + 1)
        with pytest.raises(FrameTooLargeError):
            payload_length(header)

    def test_short_header_is_a_protocol_error(self):
        with pytest.raises(ProtocolError):
            payload_length(b"\x00\x00")


# ----------------------------------------------------------------------
# codec
# ----------------------------------------------------------------------
class TestCodecValues:
    def test_scalars_and_containers_round_trip(self):
        value = {"a": [1, 2.5, "x", None, True], "b": {"nested": [0]}}
        assert decode_value(encode_value(value)) == value

    def test_tuples_decode_as_lists(self):
        assert decode_value(encode_value((1, ("a", 2)))) == [1, ["a", 2]]

    def test_numpy_scalars_and_arrays_lower_to_plain_json(self):
        encoded = encode_value(
            {"i": np.int64(3), "f": np.float64(0.5), "a": np.arange(3)}
        )
        assert encoded == {"i": 3, "f": 0.5, "a": [0, 1, 2]}

    def test_user_dict_shadowing_the_tag_is_escaped(self):
        evil = {"__repro__": "state", "data": {"x": 1}}
        decoded = decode_value(encode_value(evil))
        assert decoded == evil  # comes back as the dict, not a SessionState

    def test_non_string_dict_keys_are_rejected(self):
        with pytest.raises(ProtocolError):
            encode_value({1: "x"})

    def test_unsupported_type_is_rejected(self):
        with pytest.raises(ProtocolError):
            encode_value(object())

    def test_engine_types_round_trip_exactly(self):
        manager = make_manager()
        manager.open("codec-u0", rng=1234)
        record = manager.step("codec-u0", 3)
        state = manager.checkpoint("codec-u0")
        manager.step("codec-u0", 4)
        log = manager.finish("codec-u0")

        decoded_record = decode_value(encode_value(record))
        assert decoded_record.to_json() == record.to_json()
        assert decoded_record.budget == record.budget  # exact, no rounding

        decoded_state = decode_value(encode_value(state))
        assert decoded_state.to_json() == state.to_json()

        decoded_log = decode_value(encode_value(log))
        assert [r.to_json() for r in decoded_log.records] == [
            r.to_json() for r in log.records
        ]
        if log.emission_matrices is None:
            assert decoded_log.emission_matrices is None
        else:
            for got, want in zip(
                decoded_log.emission_matrices, log.emission_matrices
            ):
                np.testing.assert_array_equal(got, want)

    def test_cache_stats_round_trip(self):
        stats = CacheStats(hits=7, misses=3, evictions=1, size=4, maxsize=64)
        assert decode_value(encode_value(stats)) == stats


class TestCodecErrors:
    @pytest.mark.parametrize(
        "error, expected_type",
        [
            (SessionError("no such session"), SessionError),
            (ServiceError("boom"), ServiceError),
            (ShardDownError("shard 0 died"), ShardDownError),
            (WorkerDownError("worker w1 unreachable"), WorkerDownError),
        ],
    )
    def test_typed_errors_survive_the_channel(self, error, expected_type):
        decoded = decode_message(encode_error(error, request_id=9))
        assert decoded["kind"] == "err"
        assert decoded["id"] == 9
        assert type(decoded["error"]) is expected_type
        assert str(error) in str(decoded["error"])

    def test_allowlisted_builtin_rebuilds_as_itself(self):
        decoded = decode_message(encode_error(ValueError("no engine for you")))
        assert type(decoded["error"]) is ValueError

    def test_unknown_builtin_never_rebuilds(self):
        # A hostile peer naming a type outside the allowlist gets the
        # coded fallback, never an arbitrary class lookup.
        payload = encode_error(ValueError("x")).replace(
            b'"builtin":"ValueError"', b'"builtin":"SystemExit"'
        )
        decoded = decode_message(payload)
        assert "SystemExit" not in type(decoded["error"]).__name__
        assert not isinstance(decoded["error"], SystemExit)

    def test_builtin_allowlist_is_closed(self):
        assert set(BUILTIN_ERRORS) == {
            "ValueError", "TypeError", "KeyError", "IndexError",
            "RuntimeError", "OSError", "ZeroDivisionError",
        }


class TestCodecMessages:
    def test_call_round_trip(self):
        payload = encode_call("step", {"session_id": "u1", "cell": 3}, request_id=5)
        decoded = decode_message(payload)
        assert decoded == {
            "kind": "call",
            "id": 5,
            "op": "step",
            "args": {"session_id": "u1", "cell": 3},
            "trace": None,
        }

    def test_call_trace_round_trip(self):
        # The trace id is an optional envelope key: present when given...
        payload = encode_call("step", {"cell": 3}, request_id=5, trace="abcd1234")
        decoded = decode_message(payload)
        assert decoded["trace"] == "abcd1234"
        # ...absent from the frame entirely when not (version tolerance:
        # an untraced router never ships the key at all).
        assert b"trace" not in encode_call("step", {"cell": 3}, request_id=5)
        # A non-string trace from a confused peer degrades to None.
        weird = payload.replace(b'"trace":"abcd1234"', b'"trace":42')
        assert decode_message(weird)["trace"] is None

    def test_ok_round_trip(self):
        decoded = decode_message(encode_ok([1, "two"], request_id=8))
        assert decoded == {"kind": "ok", "id": 8, "result": [1, "two"]}

    def test_wire_version_mismatch_fails_loudly(self):
        payload = encode_ok(None).replace(
            f'"v":{WIRE_VERSION}'.encode(), f'"v":{WIRE_VERSION + 1}'.encode()
        )
        with pytest.raises(ProtocolError, match="wire version"):
            decode_message(payload)

    @pytest.mark.parametrize(
        "payload", [b"not json", b"[1,2]", b'{"v":1,"kind":"what"}']
    )
    def test_malformed_payloads_are_protocol_errors(self, payload):
        with pytest.raises(ProtocolError):
            decode_message(payload)

    def test_no_pickle_anywhere_in_the_cluster_package(self):
        # The acceptance bar: received bytes are never unpickled.  Keep
        # the word itself out of the implementation so a regression
        # cannot hide.
        import pathlib

        import repro.cluster as cluster
        import repro.engine.shard as shard

        package_dir = pathlib.Path(cluster.__file__).parent
        sources = list(package_dir.glob("*.py")) + [pathlib.Path(shard.__file__)]
        assert len(sources) >= 7
        for path in sources:
            text = path.read_text()
            for needle in ("import pickle", "pickle.", "Unpickler", "cPickle"):
                assert needle not in text, f"{needle!r} in {path.name}"


# ----------------------------------------------------------------------
# transport channels
# ----------------------------------------------------------------------
class TestPipeChannel:
    def test_round_trip_and_timeout(self):
        a, b = multiprocessing.Pipe()
        left, right = PipeChannel(a), PipeChannel(b)
        left.send(b"ping")
        assert right.recv(timeout_s=5.0) == b"ping"
        with pytest.raises(TimeoutError):
            right.recv(timeout_s=0.05)
        left.close(), right.close()

    def test_oversized_send_raises_and_channel_stays_usable(self):
        a, b = multiprocessing.Pipe()
        left, right = PipeChannel(a, max_frame_bytes=64), PipeChannel(b)
        with pytest.raises(FrameTooLargeError):
            left.send(b"x" * 65)
        left.send(b"still fine")
        assert right.recv(timeout_s=5.0) == b"still fine"
        left.close(), right.close()

    def test_oversized_receive_is_typed(self):
        a, b = multiprocessing.Pipe()
        left, right = PipeChannel(a), PipeChannel(b, max_frame_bytes=16)
        left.send(b"y" * 64)  # sender's bound is larger
        with pytest.raises(FrameTooLargeError):
            right.recv(timeout_s=5.0)
        left.close()


class TestSocketChannel:
    def make_pair(self, **kwargs):
        a, b = socket.socketpair()
        return SocketChannel(a, **kwargs), SocketChannel(b, **kwargs)

    def test_round_trip_and_timeout(self):
        left, right = self.make_pair()
        left.send(b"over tcp")
        assert right.recv(timeout_s=5.0) == b"over tcp"
        with pytest.raises(TimeoutError):
            right.recv(timeout_s=0.05)
        left.close(), right.close()

    def test_oversized_send_raises_before_io(self):
        left, right = self.make_pair(max_frame_bytes=64)
        with pytest.raises(FrameTooLargeError):
            left.send(b"x" * 65)
        left.send(b"still fine")
        assert right.recv(timeout_s=5.0) == b"still fine"
        left.close(), right.close()

    def test_oversized_announced_frame_closes_the_channel(self):
        a, b = socket.socketpair()
        right = SocketChannel(b, max_frame_bytes=16)
        a.sendall(FRAME_HEADER.pack(1 << 30))  # hostile 1 GiB announcement
        with pytest.raises(FrameTooLargeError):
            right.recv(timeout_s=5.0)
        a.close()

    def test_peer_hangup_is_eof(self):
        left, right = self.make_pair()
        left.close()
        with pytest.raises((EOFError, OSError)):
            right.recv(timeout_s=5.0)
        right.close()


# ----------------------------------------------------------------------
# consistent-hash ring
# ----------------------------------------------------------------------
class TestHashRing:
    MEMBERS = [f"tcp://worker-{i}:9001" for i in range(4)]

    def test_ring_hash_is_frozen(self):
        # blake2b, not hash(): these values must never change, or a
        # router restart would re-place every session.  (Frozen
        # expectations, deliberately -- same policy as shard_for.)
        assert ring_hash("u0") == 16292420234199882687
        assert ring_hash("tcp://worker-0:9001#0") == 7109104411570482482

    def test_owner_is_deterministic_across_rings(self):
        one = HashRing(self.MEMBERS)
        two = HashRing(list(self.MEMBERS))  # rebuilt from scratch
        for i in range(200):
            assert one.owner(f"u{i}") == two.owner(f"u{i}")

    def test_keys_spread_across_members(self):
        ring = HashRing(self.MEMBERS)
        counts = {m: 0 for m in self.MEMBERS}
        for i in range(2000):
            counts[ring.owner(f"user-{i}")] += 1
        assert min(counts.values()) > 200  # no starved worker

    def test_removing_a_member_only_moves_its_keys(self):
        ring = HashRing(self.MEMBERS)
        smaller = ring.without(self.MEMBERS[0])
        moved = 0
        for i in range(2000):
            key = f"user-{i}"
            before, after = ring.owner(key), smaller.owner(key)
            if before == self.MEMBERS[0]:
                assert after != self.MEMBERS[0]
            else:
                assert after == before  # untouched keys stay put
                moved += 0
        assert self.MEMBERS[0] not in smaller
        assert len(smaller) == 3

    def test_successors_cover_all_members_starting_at_owner(self):
        ring = HashRing(self.MEMBERS)
        order = ring.successors("u17")
        assert order[0] == ring.owner("u17")
        assert sorted(order) == sorted(self.MEMBERS)

    def test_empty_ring_is_an_error(self):
        with pytest.raises(ServiceError):
            HashRing([])
        ring = HashRing(["only"])
        with pytest.raises(ServiceError):
            ring.without("only")

    def test_replica_validation(self):
        with pytest.raises(ServiceError):
            HashRing(self.MEMBERS, replicas=0)
        assert HashRing(self.MEMBERS, replicas=DEFAULT_REPLICAS).replicas == 64
