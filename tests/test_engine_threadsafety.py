"""Thread-safety of the engine state shared across the worker pool.

The serving layer steps different sessions on a thread pool, so the two
pieces of state shared *between* sessions -- the verdict cache and the
static provider's mechanism ladder -- must tolerate concurrent access.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.qp import SolverStatus
from repro.engine import StaticMechanismProvider, VerdictCache
from repro.geo.grid import GridMap
from repro.lppm.planar_laplace import PlanarLaplaceMechanism


def small_grid() -> GridMap:
    return GridMap(4, 4, cell_size_km=1.0)


N_THREADS = 8
OPS_PER_THREAD = 2_000


class TestVerdictCacheThreadSafety:
    def test_concurrent_lookup_store_accounting_is_exact(self):
        cache = VerdictCache(maxsize=64)
        barrier = threading.Barrier(N_THREADS)

        def hammer(worker: int):
            barrier.wait()
            for i in range(OPS_PER_THREAD):
                # Overlapping key space across workers: plenty of
                # contention on the same OrderedDict entries.
                key = f"k{(worker + i) % 96}".encode()
                if cache.lookup(key) is None:
                    cache.store(key, SolverStatus.SAFE)

        with ThreadPoolExecutor(N_THREADS) as pool:
            list(pool.map(hammer, range(N_THREADS)))

        stats = cache.stats()
        assert stats.hits + stats.misses == N_THREADS * OPS_PER_THREAD
        assert stats.size <= stats.maxsize
        assert len(cache) == stats.size

    def test_stats_snapshot_is_atomic_under_writers(self):
        cache = VerdictCache(maxsize=32)
        stop = threading.Event()

        def writer():
            i = 0
            while not stop.is_set():
                key = f"w{i % 80}".encode()
                cache.lookup(key)
                cache.store(key, SolverStatus.UNKNOWN)
                i += 1

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            for _ in range(500):
                stats = cache.stats()
                # Counters never run backwards and never tear: a torn
                # read would show size above the bound.
                assert 0 <= stats.size <= stats.maxsize
                assert stats.hits >= 0 and stats.misses >= 0
        finally:
            stop.set()
            thread.join()

    def test_clear_is_safe_under_concurrent_stores(self):
        cache = VerdictCache(maxsize=128)

        def churn(_):
            for i in range(500):
                cache.store(f"c{i}".encode(), SolverStatus.SAFE)
                if i % 100 == 0:
                    cache.clear()

        with ThreadPoolExecutor(4) as pool:
            list(pool.map(churn, range(4)))
        assert len(cache) <= 128


class TestLadderThreadSafety:
    def test_concurrent_scaled_returns_one_object_per_budget(self):
        grid = small_grid()
        provider = StaticMechanismProvider(PlanarLaplaceMechanism(grid, 1.0))
        base = provider.base_mechanism(1)
        budgets = [1.0 / 2**k for k in range(1, 7)]
        barrier = threading.Barrier(N_THREADS)

        def ladder(_):
            barrier.wait()
            return [provider.scaled(base, b) for b in budgets]

        with ThreadPoolExecutor(N_THREADS) as pool:
            results = list(pool.map(ladder, range(N_THREADS)))

        for per_budget in zip(*results):
            first = per_budget[0]
            assert all(mech is first for mech in per_budget)
        assert [round(m.budget, 9) for m in results[0]] == [
            round(b, 9) for b in budgets
        ]

    def test_scaled_memo_still_returns_correct_budgets(self):
        grid = small_grid()
        provider = StaticMechanismProvider(PlanarLaplaceMechanism(grid, 0.8))
        base = provider.base_mechanism(1)
        half = provider.scaled(base, 0.4)
        assert half.budget == pytest.approx(0.4)
        assert provider.scaled(base, 0.4) is half
