"""Tracing: span lifecycle, bounded rings, null path, thread propagation."""

import threading

from repro.obs.trace import (
    NULL_TRACER,
    Tracer,
    activate,
    current,
    deactivate,
    new_span_id,
    new_trace_id,
)


class TestIds:
    def test_shapes_and_uniqueness(self):
        trace_ids = {new_trace_id() for _ in range(64)}
        span_ids = {new_span_id() for _ in range(64)}
        assert len(trace_ids) == 64 and len(span_ids) == 64
        assert all(len(t) == 16 and int(t, 16) >= 0 for t in trace_ids)
        assert all(len(s) == 8 and int(s, 16) >= 0 for s in span_ids)


class TestSpans:
    def test_span_context_manager_records(self):
        tracer = Tracer()
        with tracer.span("solve", op="step") as span:
            pass
        assert tracer.count == 1
        entry = tracer.recent()[0]
        assert entry["name"] == "solve"
        assert entry["op"] == "step"
        assert entry["trace"] == span.trace_id
        assert entry["ms"] >= 0.0

    def test_span_exception_annotates_error(self):
        tracer = Tracer()
        try:
            with tracer.span("solve"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert tracer.recent()[0]["error"] == "RuntimeError"

    def test_end_is_idempotent_and_override_wins(self):
        tracer = Tracer()
        span = tracer.span("rpc")
        assert span.end(0.25) == 0.25
        assert span.end(99.0) == 0.25  # second end() is a no-op
        assert tracer.count == 1
        assert tracer.recent()[0]["ms"] == 250.0

    def test_record_external_timing(self):
        tracer = Tracer()
        tracer.record("queue_wait", "abc", 0.002, op="step")
        entry = tracer.recent()[0]
        assert entry["trace"] == "abc"
        assert entry["ms"] == 2.0

    def test_trace_lookup_groups_spans(self):
        tracer = Tracer()
        trace_id = new_trace_id()
        tracer.record("queue_wait", trace_id, 0.001)
        tracer.record("solve", trace_id, 0.002)
        tracer.record("solve", new_trace_id(), 0.003)
        names = [span["name"] for span in tracer.trace(trace_id)]
        assert names == ["queue_wait", "solve"]


class TestRings:
    def test_recent_ring_is_bounded_but_count_is_not(self):
        tracer = Tracer(capacity=4)
        for i in range(10):
            tracer.record("solve", f"t{i}", 0.001)
        assert tracer.count == 10
        assert [span["trace"] for span in tracer.recent()] == [
            "t6",
            "t7",
            "t8",
            "t9",
        ]
        assert tracer.recent(2) == tracer.recent()[-2:]

    def test_slow_ring_catches_threshold_crossers(self):
        tracer = Tracer(slow_threshold_s=0.010, slow_capacity=2)
        tracer.record("solve", "fast", 0.001)
        tracer.record("solve", "slow1", 0.020)
        tracer.record("solve", "slow2", 0.010)  # threshold is inclusive
        tracer.record("solve", "slow3", 0.500)
        assert tracer.slow_count == 3
        assert [span["trace"] for span in tracer.slow()] == ["slow2", "slow3"]

    def test_clear_drops_buffers_keeps_totals(self):
        tracer = Tracer(slow_threshold_s=0.0)
        tracer.record("solve", "t", 0.1)
        tracer.clear()
        assert tracer.recent() == [] and tracer.slow() == []
        assert tracer.count == 1 and tracer.slow_count == 1

    def test_stats_summary(self):
        tracer = Tracer(capacity=2, slow_threshold_s=0.5)
        for i in range(3):
            tracer.record("solve", f"t{i}", 1.0)
        assert tracer.stats() == {
            "enabled": True,
            "count": 3,
            "buffered": 2,
            "slow_count": 3,
            "slow_threshold_ms": 500.0,
        }


class TestNullPath:
    def test_disabled_tracer_is_inert(self):
        null_span = NULL_TRACER.span("solve", op="step")
        assert null_span is NULL_TRACER.span("other")  # shared singleton
        with null_span:
            pass
        assert null_span.end() == 0.0
        assert null_span.as_dict() == {}
        NULL_TRACER.record("solve", "t", 1.0)
        assert NULL_TRACER.count == 0
        assert NULL_TRACER.recent() == []
        assert NULL_TRACER.stats()["enabled"] is False


class TestThreadLocalPropagation:
    def test_activate_current_deactivate_nest(self):
        tracer = Tracer()
        assert current() is None
        outer = activate(tracer, "outer")
        assert current() == (tracer, "outer", "")
        inner = activate(tracer, "inner", parent_id="span0")
        assert current() == (tracer, "inner", "span0")
        deactivate(inner)
        assert current() == (tracer, "outer", "")
        deactivate(outer)
        assert current() is None

    def test_context_is_per_thread(self):
        tracer = Tracer()
        token = activate(tracer, "main-thread")
        seen = {}

        def probe():
            seen["before"] = current()
            inner = activate(tracer, "worker-thread")
            seen["during"] = current()
            deactivate(inner)
            seen["after"] = current()

        thread = threading.Thread(target=probe)
        thread.start()
        thread.join()
        assert seen["before"] is None
        assert seen["during"] == (tracer, "worker-thread", "")
        assert seen["after"] is None
        assert current() == (tracer, "main-thread", "")
        deactivate(token)
