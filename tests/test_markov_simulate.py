"""Unit tests for trajectory simulation."""

import numpy as np
import pytest

from repro.errors import MarkovError
from repro.markov.simulate import (
    sample_initial_state,
    sample_trajectories,
    sample_trajectory,
)
from repro.markov.transition import TimeVaryingChain, TransitionMatrix


class TestSampleInitialState:
    def test_deterministic_distribution(self):
        assert sample_initial_state([0.0, 1.0, 0.0], rng=0) == 1

    def test_seeded_reproducible(self):
        a = sample_initial_state([0.3, 0.3, 0.4], rng=42)
        b = sample_initial_state([0.3, 0.3, 0.4], rng=42)
        assert a == b


class TestSampleTrajectory:
    def test_length_and_range(self, paper_chain):
        traj = sample_trajectory(paper_chain, 10, start_state=0, rng=0)
        assert len(traj) == 10
        assert all(0 <= c < 3 for c in traj)
        assert traj[0] == 0

    def test_respects_support(self):
        # A deterministic cycle must be followed exactly.
        chain = TransitionMatrix([[0, 1, 0], [0, 0, 1], [1, 0, 0]])
        traj = sample_trajectory(chain, 6, start_state=0, rng=0)
        assert traj == [0, 1, 2, 0, 1, 2]

    def test_requires_exactly_one_start_spec(self, paper_chain):
        with pytest.raises(MarkovError):
            sample_trajectory(paper_chain, 5, rng=0)
        with pytest.raises(MarkovError):
            sample_trajectory(
                paper_chain, 5, initial=[1, 0, 0], start_state=0, rng=0
            )

    def test_rejects_bad_start_state(self, paper_chain):
        with pytest.raises(MarkovError):
            sample_trajectory(paper_chain, 5, start_state=3, rng=0)

    def test_time_varying(self, paper_chain):
        identity = TransitionMatrix(np.eye(3))
        chain = TimeVaryingChain([identity, identity])
        traj = sample_trajectory(chain, 3, start_state=2, rng=0)
        assert traj == [2, 2, 2]

    def test_empirical_first_step(self, paper_chain):
        rng = np.random.default_rng(0)
        hits = np.zeros(3)
        for _ in range(4000):
            traj = sample_trajectory(paper_chain, 2, start_state=0, rng=rng)
            hits[traj[1]] += 1
        assert np.allclose(hits / 4000, [0.1, 0.2, 0.7], atol=0.03)


class TestSampleTrajectories:
    def test_count(self, paper_chain):
        trajs = sample_trajectories(paper_chain, 4, 5, start_state=0, rng=0)
        assert len(trajs) == 4
        assert all(len(t) == 5 for t in trajs)

    def test_independent_draws_differ(self, paper_chain):
        trajs = sample_trajectories(paper_chain, 8, 12, start_state=0, rng=0)
        assert len({tuple(t) for t in trajs}) > 1

    def test_rejects_zero_count(self, paper_chain):
        with pytest.raises(MarkovError):
            sample_trajectories(paper_chain, 0, 5, start_state=0)
