"""Unit tests for event-pair indistinguishability (future-work feature)."""

import numpy as np
import pytest

from repro.core.baseline import enumerate_joint, enumerate_prior
from repro.core.event_pair import (
    EventPairAnalyzer,
    PairStatus,
    pair_certificate,
)
from repro.errors import QuantificationError
from repro.events.events import PresenceEvent
from repro.geo.regions import Region
from repro.lppm.uniform import UniformMechanism

from conftest import random_chain, random_emission


def _columns(emission, observations):
    return np.stack([emission[:, o] for o in observations])


@pytest.fixture
def pair_setting(rng):
    chain = random_chain(4, rng)
    event_a = PresenceEvent(Region.from_cells(4, [0]), start=2, end=3)
    event_b = PresenceEvent(Region.from_cells(4, [3]), start=2, end=3)
    return chain, event_a, event_b


class TestFixedPriorRatios:
    def test_matches_enumeration(self, pair_setting, rng):
        chain, event_a, event_b = pair_setting
        emission = random_emission(4, rng)
        pi = np.array([0.3, 0.2, 0.2, 0.3])
        observations = [0, 3, 1, 2]
        columns = _columns(emission, observations)
        analyzer = EventPairAnalyzer(chain, event_a, event_b, horizon=4)
        ratios = analyzer.ratio_fixed_prior(pi, columns)
        prior_a = enumerate_prior(chain, event_a, pi)
        prior_b = enumerate_prior(chain, event_b, pi)
        for t, ratio in enumerate(ratios, start=1):
            joint_a = enumerate_joint(chain, event_a, pi, columns, upto_t=t)
            joint_b = enumerate_joint(chain, event_b, pi, columns, upto_t=t)
            expected = (joint_a / prior_a) / (joint_b / prior_b)
            assert ratio == pytest.approx(expected, rel=1e-9), f"t={t}"

    def test_uniform_mechanism_ratio_one(self, pair_setting):
        chain, event_a, event_b = pair_setting
        pi = np.full(4, 0.25)
        columns = _columns(UniformMechanism(4).emission_matrix(), [0, 1, 2])
        analyzer = EventPairAnalyzer(chain, event_a, event_b, horizon=4)
        ratios = analyzer.ratio_fixed_prior(pi, columns)
        for ratio in ratios:
            assert ratio == pytest.approx(1.0, rel=1e-9)

    def test_degenerate_prior_rejected(self, pair_setting):
        chain, event_a, event_b = pair_setting
        # Events start at t=2, so a point-mass pi may still reach both;
        # build a chain-independent degenerate case instead: event at t=1.
        event_a1 = PresenceEvent(Region.from_cells(4, [0]), start=1, end=1)
        event_b1 = PresenceEvent(Region.from_cells(4, [3]), start=1, end=1)
        analyzer = EventPairAnalyzer(chain, event_a1, event_b1, horizon=2)
        pi = np.array([0.0, 0.5, 0.5, 0.0])  # neither event possible
        columns = np.full((2, 4), 0.25)
        with pytest.raises(QuantificationError):
            analyzer.ratio_fixed_prior(pi, columns)


class TestCertificate:
    def test_uniform_case_certified(self):
        a1 = np.array([0.3, 0.5, 0.2])
        a2 = np.array([0.4, 0.1, 0.6])
        kappa = 0.2
        assert pair_certificate(a1, kappa * a1, a2, kappa * a2, epsilon=0.1)

    def test_spread_not_certified(self):
        a1 = np.array([0.5, 0.5])
        b1 = np.array([0.05, 0.25])  # ratios 0.1 / 0.5
        a2 = np.array([0.5, 0.5])
        b2 = np.array([0.25, 0.05])
        assert not pair_certificate(a1, b1, a2, b2, epsilon=0.5)
        assert pair_certificate(a1, b1, a2, b2, epsilon=2.0)

    def test_certificate_soundness(self, rng):
        """Whenever certified, sampled priors satisfy the bound."""
        for _ in range(100):
            a1 = rng.uniform(0.1, 0.9, size=3)
            a2 = rng.uniform(0.1, 0.9, size=3)
            base = rng.uniform(0.3, 0.5)
            b1 = a1 * base * rng.uniform(0.9, 1.1, size=3)
            b2 = a2 * base * rng.uniform(0.9, 1.1, size=3)
            epsilon = 0.5
            if not pair_certificate(a1, b1, a2, b2, epsilon):
                continue
            for _ in range(20):
                pi = rng.dirichlet(np.ones(3))
                ratio = ((pi @ b1) / (pi @ a1)) / ((pi @ b2) / (pi @ a2))
                assert ratio <= np.exp(epsilon) * (1 + 1e-9)
                assert 1 / ratio <= np.exp(epsilon) * (1 + 1e-9)

    def test_degenerate_event_not_certified(self):
        assert not pair_certificate(
            np.zeros(3), np.zeros(3), np.ones(3) * 0.5, np.ones(3) * 0.2, 0.5
        )


class TestArbitraryPriorCheck:
    def test_uniform_mechanism_safe(self, pair_setting):
        chain, event_a, event_b = pair_setting
        columns = _columns(UniformMechanism(4).emission_matrix(), [0, 1, 2])
        analyzer = EventPairAnalyzer(chain, event_a, event_b, horizon=4)
        results = analyzer.check_arbitrary_prior(columns, epsilon=0.5)
        assert all(r.status is PairStatus.SAFE for r in results)

    def test_identity_mechanism_violates(self, pair_setting):
        chain, event_a, event_b = pair_setting
        # Noiseless releases distinguish "in cell 0" from "in cell 3".
        columns = _columns(np.eye(4), [0, 0, 0])
        analyzer = EventPairAnalyzer(chain, event_a, event_b, horizon=4)
        results = analyzer.check_arbitrary_prior(columns, epsilon=0.5)
        assert any(r.status is PairStatus.VIOLATED for r in results)
        violated = [r for r in results if r.status is PairStatus.VIOLATED]
        assert violated[0].witness is not None
        assert violated[0].worst_ratio_found > np.exp(0.5)

    def test_statuses_per_prefix(self, pair_setting, rng):
        chain, event_a, event_b = pair_setting
        emission = random_emission(4, rng)
        columns = _columns(emission, [0, 1])
        analyzer = EventPairAnalyzer(chain, event_a, event_b, horizon=4)
        results = analyzer.check_arbitrary_prior(columns, epsilon=1.0)
        assert len(results) == 2
        for result in results:
            assert result.status in (
                PairStatus.SAFE,
                PairStatus.VIOLATED,
                PairStatus.UNKNOWN,
            )
