"""Unit tests for distance helpers."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.geo.distance import (
    EARTH_RADIUS_KM,
    euclidean_distance,
    haversine_km,
    haversine_km_arrays,
    pairwise_euclidean,
)


class TestEuclidean:
    def test_basic(self):
        assert euclidean_distance([0, 0], [3, 4]) == pytest.approx(5.0)

    def test_zero(self):
        assert euclidean_distance([1, 2], [1, 2]) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValidationError):
            euclidean_distance([0, 0], [1, 2, 3])

    def test_pairwise(self):
        pts = np.array([[0.0, 0.0], [3.0, 4.0], [0.0, 1.0]])
        dist = pairwise_euclidean(pts)
        assert dist.shape == (3, 3)
        assert dist[0, 1] == pytest.approx(5.0)
        assert np.allclose(dist, dist.T)
        assert np.allclose(np.diag(dist), 0.0)

    def test_pairwise_rejects_1d(self):
        with pytest.raises(ValidationError):
            pairwise_euclidean([1.0, 2.0])


class TestHaversine:
    def test_same_point(self):
        assert haversine_km(39.9, 116.4, 39.9, 116.4) == 0.0

    def test_one_degree_latitude(self):
        # One degree of latitude is ~111.19 km on the IUGG sphere.
        expected = np.pi * EARTH_RADIUS_KM / 180.0
        assert haversine_km(0.0, 0.0, 1.0, 0.0) == pytest.approx(expected, rel=1e-6)

    def test_symmetry(self):
        a = haversine_km(39.9, 116.4, 40.1, 116.2)
        b = haversine_km(40.1, 116.2, 39.9, 116.4)
        assert a == pytest.approx(b)

    def test_rejects_bad_latitude(self):
        with pytest.raises(ValidationError):
            haversine_km(91.0, 0.0, 0.0, 0.0)

    def test_rejects_bad_longitude(self):
        with pytest.raises(ValidationError):
            haversine_km(0.0, 181.0, 0.0, 0.0)

    def test_array_version_matches_scalar(self):
        lats1 = np.array([39.9, 40.0])
        lons1 = np.array([116.4, 116.5])
        lats2 = np.array([39.95, 40.1])
        lons2 = np.array([116.45, 116.3])
        arr = haversine_km_arrays(lats1, lons1, lats2, lons2)
        for k in range(2):
            scalar = haversine_km(lats1[k], lons1[k], lats2[k], lons2[k])
            assert arr[k] == pytest.approx(scalar)
