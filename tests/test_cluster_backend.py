"""The cluster backend: placement, identity, migration, containment.

The load-bearing guarantees of :mod:`repro.cluster`'s router layer:

* a :class:`ClusterBackend` over TCP workers produces release streams
  bit-identical to one in-process :class:`SessionManager` under the
  same seeds -- solo steps and batched waves alike;
* a live migration drill (100+ sessions, :meth:`drain_worker`
  mid-stream) drops zero streams and changes zero bits;
* one worker's death surfaces as typed ``WorkerDownError`` for exactly
  its sessions (``lost_session_ids``) while the rest keep serving, and
  a *hung* worker is indistinguishable from a dead one at the deadline;
* checkpoints -- current and previous schema -- restore through the
  cluster onto a different placement and continue bit-identically.
"""

import json
import socket
import struct
import threading
import time

import pytest

from repro.cluster.backend import ClusterBackend, WorkerHandle, parse_address
from repro.cluster.frames import FRAME_HEADER
from repro.cluster.worker import spawn_local_worker
from repro.engine.session import SessionState
from repro.errors import (
    FrameTooLargeError,
    ServiceError,
    SessionError,
    ShardDownError,
    WorkerDownError,
)

from test_engine_shard import (
    HORIZON,
    N_CELLS,
    make_manager,
    make_trajectories,
    reference_records,
    strip,
)


def spawn_fleet(n_workers: int = 2):
    procs, addresses = [], []
    for _ in range(n_workers):
        process, address = spawn_local_worker(make_manager)
        procs.append(process)
        addresses.append(address)
    return procs, addresses


def stop_fleet(procs):
    for process in procs:
        process.terminate()
    for process in procs:
        process.join(10)


@pytest.fixture(scope="module")
def fleet():
    """A long-lived two-worker fleet for non-destructive tests."""
    procs, addresses = spawn_fleet(2)
    yield addresses
    stop_fleet(procs)


@pytest.fixture
def cluster(fleet):
    with ClusterBackend(fleet, heartbeat_interval_s=0) as backend:
        yield backend
        # leave the shared fleet clean for the next test
        for sid in list(backend.session_ids()):
            try:
                backend.finish(sid)
            except Exception:
                pass


class TestConstruction:
    def test_parse_address_normalizes(self):
        assert parse_address("tcp://h:9001") == ("tcp://h:9001", "h", 9001)
        assert parse_address("h:9001") == ("tcp://h:9001", "h", 9001)
        for bad in ("nope", "h:", "h:abc", "h:0", "h:70000"):
            with pytest.raises(ServiceError):
                parse_address(bad)

    def test_worker_down_is_a_shard_down(self):
        # The service protocol's crash-containment contract: cluster
        # failures satisfy existing `except ShardDownError` handlers.
        assert issubclass(WorkerDownError, ShardDownError)

    def test_unreachable_worker_fails_construction(self):
        with socket.socket() as placeholder:
            placeholder.bind(("127.0.0.1", 0))
            port = placeholder.getsockname()[1]
        with pytest.raises(WorkerDownError):
            ClusterBackend([f"tcp://127.0.0.1:{port}"], connect_timeout_s=2.0)

    def test_duplicate_and_empty_fleets_are_rejected(self):
        with pytest.raises(ServiceError):
            ClusterBackend([])
        with pytest.raises(ServiceError):
            ClusterBackend(["tcp://h:1", "h:1"])

    def test_config_snapshot(self, cluster, fleet):
        assert cluster.horizon == HORIZON
        assert cluster.n_states == N_CELLS
        assert cluster.n_shards == 2
        assert cluster.remote is True
        assert cluster.worker_addresses() == list(fleet)


class TestBitIdentity:
    def test_solo_streams_match_in_process(self, cluster):
        trajectories = make_trajectories(6)
        reference = reference_records(trajectories)
        for i, name in enumerate(trajectories):
            assert cluster.open(name, seed=1000 + i) == HORIZON
        assert cluster.resident_count() == 6
        for name, trajectory in trajectories.items():
            got = [strip(cluster.step(name, cell)) for cell in trajectory]
            assert got == reference[name], f"stream diverged for {name}"
        for name in trajectories:
            log = cluster.finish(name)
            assert len(log) == HORIZON
        assert cluster.resident_count() == 0

    def test_batched_waves_match_in_process(self, cluster):
        trajectories = make_trajectories(6, seed=11)
        reference = reference_records(trajectories)
        for i, name in enumerate(trajectories):
            cluster.open(name, seed=1000 + i)
        got = {name: [] for name in trajectories}
        for t in range(HORIZON):
            wave = {name: trajectories[name][t] for name in trajectories}
            records, errors = cluster.step_batch(wave)
            assert errors == {}
            for name, record in records.items():
                got[name].append(strip(record))
        assert got == reference
        for name in trajectories:
            cluster.finish(name)

    def test_batch_isolates_bad_members(self, cluster):
        cluster.open("good", seed=1)
        records, errors = cluster.step_batch(
            {"good": 3, "ghost": 2, "bad-cell": None}
        )
        assert set(records) == {"good"}
        assert isinstance(errors["ghost"], SessionError)
        assert "bad-cell" in errors
        cluster.finish("good")

    def test_sessions_spread_over_both_workers(self, cluster):
        for i in range(32):
            cluster.open(f"spread-{i}", seed=i)
        stats = cluster.shard_stats()
        counts = [row["sessions"] for row in stats]
        assert sum(counts) == 32
        assert min(counts) >= 1  # the ring uses both workers
        assert all(row["alive"] and not row["draining"] for row in stats)
        for i in range(32):
            cluster.finish(f"spread-{i}")


class TestMigration:
    def test_drill_100_sessions_zero_drops_bit_identical(self):
        """The acceptance drill: 100+ live sessions, one worker drained
        mid-stream, zero dropped streams, bit-identical to unmigrated."""
        procs, addresses = spawn_fleet(2)
        try:
            trajectories = make_trajectories(100, seed=23)
            reference = reference_records(trajectories)
            with ClusterBackend(addresses, heartbeat_interval_s=0) as cluster:
                for i, name in enumerate(trajectories):
                    cluster.open(name, seed=1000 + i)
                got = {name: [] for name in trajectories}
                half = HORIZON // 2
                for t in range(half):
                    records, errors = cluster.step_batch(
                        {n: trajectories[n][t] for n in trajectories}
                    )
                    assert errors == {}
                    for name, record in records.items():
                        got[name].append(strip(record))

                drained = cluster.shard_stats()[0]["worker"]
                summary = cluster.drain_worker(drained)
                assert summary["worker"] == drained
                assert summary["migrated"] >= 1
                assert sum(summary["targets"].values()) == summary["migrated"]
                # every session now lives on the other worker
                rows = {r["worker"]: r for r in cluster.shard_stats()}
                assert rows[drained]["sessions"] == 0
                assert rows[drained]["draining"] is True

                # the drained worker can die now: nothing is lost
                for process, address in zip(procs, addresses):
                    if address == drained:
                        process.terminate()
                        process.join(10)
                assert cluster.lost_session_ids() == []

                for t in range(half, HORIZON):
                    records, errors = cluster.step_batch(
                        {n: trajectories[n][t] for n in trajectories}
                    )
                    assert errors == {}, f"dropped streams: {sorted(errors)}"
                    for name, record in records.items():
                        got[name].append(strip(record))
                assert got == reference  # bit-identical across the drain
                for name in trajectories:
                    assert len(cluster.finish(name)) == HORIZON
        finally:
            stop_fleet(procs)

    def test_solo_steps_cross_a_drain(self):
        procs, addresses = spawn_fleet(2)
        try:
            trajectories = make_trajectories(8, seed=31)
            reference = reference_records(trajectories)
            with ClusterBackend(addresses, heartbeat_interval_s=0) as cluster:
                for i, name in enumerate(trajectories):
                    cluster.open(name, seed=1000 + i)
                got = {
                    name: [strip(cluster.step(name, trajectories[name][0]))]
                    for name in trajectories
                }
                cluster.drain_worker(addresses[0])
                for name in trajectories:
                    for cell in trajectories[name][1:]:
                        got[name].append(strip(cluster.step(name, cell)))
                assert got == reference
        finally:
            stop_fleet(procs)

    def test_drain_validation(self, cluster):
        with pytest.raises(ServiceError, match="unknown worker"):
            cluster.drain_worker("tcp://nowhere:1")

    def test_draining_the_last_worker_is_refused(self):
        procs, addresses = spawn_fleet(1)
        try:
            with ClusterBackend(addresses, heartbeat_interval_s=0) as cluster:
                cluster.open("solo", seed=1)
                with pytest.raises(ServiceError, match="no other live worker"):
                    cluster.drain_worker(addresses[0])
        finally:
            stop_fleet(procs)


class TestContainment:
    def test_worker_death_is_typed_and_contained(self):
        procs, addresses = spawn_fleet(2)
        try:
            with ClusterBackend(
                addresses, heartbeat_interval_s=0, rpc_timeout_s=30.0
            ) as cluster:
                for i in range(16):
                    cluster.open(f"c{i}", seed=i)
                victim = cluster.shard_stats()[0]["worker"]
                victims = [
                    sid
                    for sid in cluster.session_ids()
                    if cluster._assigned(sid) == victim
                ]
                survivors = [
                    sid for sid in cluster.session_ids() if sid not in victims
                ]
                assert victims and survivors
                for process, address in zip(procs, addresses):
                    if address == victim:
                        process.kill()
                        process.join(10)

                with pytest.raises(WorkerDownError):
                    cluster.step(victims[0], 3)
                # exactly the dead worker's sessions are lost
                assert sorted(cluster.lost_session_ids()) == sorted(victims)
                for sid in survivors:
                    cluster.step(sid, 3)  # the other worker keeps serving
                # new opens re-route around the hole
                cluster.open("after-death", seed=99)
                cluster.step("after-death", 5)
                # batches report the typed error per lost member
                records, errors = cluster.step_batch(
                    {victims[1]: 2, survivors[0]: 2}
                )
                assert set(records) == {survivors[0]}
                assert isinstance(errors[victims[1]], WorkerDownError)
                rows = {r["worker"]: r for r in cluster.shard_stats()}
                assert rows[victim]["alive"] is False
                assert rows[victim]["lost_sessions"] == len(victims)
        finally:
            stop_fleet(procs)

    def test_heartbeat_detects_a_silent_death(self):
        procs, addresses = spawn_fleet(2)
        try:
            with ClusterBackend(
                addresses,
                heartbeat_interval_s=0.2,
                heartbeat_timeout_s=1.0,
            ) as cluster:
                procs[0].kill()
                procs[0].join(10)
                deadline = time.monotonic() + 15.0
                victim = addresses[0]
                while time.monotonic() < deadline:
                    if not cluster._handles[victim].alive:
                        break
                    time.sleep(0.1)
                assert not cluster._handles[victim].alive
                # placement ring already routed around the dead worker
                cluster.open("post-heartbeat", seed=1)
                cluster.step("post-heartbeat", 4)
        finally:
            stop_fleet(procs)

    def test_suspend_all_reports_losses(self):
        procs, addresses = spawn_fleet(2)
        try:
            with ClusterBackend(
                addresses, heartbeat_interval_s=0, rpc_timeout_s=30.0
            ) as cluster:
                for i in range(8):
                    cluster.open(f"s{i}", seed=i)
                victim = addresses[1]
                doomed = [
                    sid
                    for sid in cluster.session_ids()
                    if cluster._assigned(sid) == victim
                ]
                procs[1].kill()
                procs[1].join(10)
                states, lost = cluster.suspend_all()
                assert sorted(lost) == sorted(doomed)
                assert len(states) == 8 - len(doomed)
        finally:
            stop_fleet(procs)


class TestCrossPlacementRestore:
    """Checkpoints restore through the cluster onto a different worker,
    at the current schema and the previous one, and continue
    bit-identically -- solo and batched."""

    def checkpoint_and_reference(self, n_sessions=4, split=3):
        trajectories = make_trajectories(n_sessions, seed=41)
        reference = reference_records(trajectories)
        manager = make_manager()
        states = {}
        for i, name in enumerate(trajectories):
            manager.open(name, rng=1000 + i)
            for cell in trajectories[name][:split]:
                manager.step(name, cell)
            states[name] = manager.suspend(name)
        return trajectories, reference, states, split

    @staticmethod
    def downgrade_to_v1(state: SessionState) -> SessionState:
        """A schema-v1 checkpoint: what a PR-1 build would have written."""
        data = state.to_json()
        assert data["schema"] == 2
        del data["schema"]
        del data["scenario"]
        return SessionState.from_json(json.loads(json.dumps(data)))

    @pytest.mark.parametrize("schema", ["v2", "v1"])
    def test_restore_continues_solo(self, cluster, schema):
        trajectories, reference, states, split = self.checkpoint_and_reference()
        for name, state in states.items():
            if schema == "v1":
                state = self.downgrade_to_v1(state)
            assert cluster.resume(state) == name
        for name, trajectory in trajectories.items():
            got = [strip(cluster.step(name, cell)) for cell in trajectory[split:]]
            assert got == reference[name][split:], f"{schema} diverged: {name}"
        for name in trajectories:
            log = cluster.finish(name)
            assert len(log) == HORIZON  # the full pre-suspend history came too

    def test_restore_continues_batched(self, cluster):
        trajectories, reference, states, split = self.checkpoint_and_reference()
        for state in states.values():
            cluster.resume(state)
        got = {name: [] for name in trajectories}
        for t in range(split, HORIZON):
            records, errors = cluster.step_batch(
                {n: trajectories[n][t] for n in trajectories}
            )
            assert errors == {}
            for name, record in records.items():
                got[name].append(strip(record))
        assert got == {n: reference[n][split:] for n in trajectories}
        for name in trajectories:
            cluster.finish(name)

    def test_restore_lands_on_the_ring_owner(self, cluster):
        _, _, states, _ = self.checkpoint_and_reference(n_sessions=8)
        for name, state in states.items():
            cluster.resume(state)
            assert cluster._assigned(name) in cluster.worker_addresses()
        placements = {cluster._assigned(n) for n in states}
        assert len(placements) == 2  # both workers participate
        for name in states:
            cluster.finish(name)


class _HungWorker:
    """A fake worker that answers hello/ping but swallows every other
    call -- a *hung* engine, as seen from the router."""

    def __init__(self):
        self._listener = socket.socket()
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(4)
        self.port = self._listener.getsockname()[1]
        self.address = f"tcp://127.0.0.1:{self.port}"
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        from repro.cluster.codec import decode_message, encode_ok

        self._listener.settimeout(0.2)
        conns = []
        while not self._stop.is_set():
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            conns.append(conn)
            threading.Thread(
                target=self._serve_conn, args=(conn,), daemon=True
            ).start()
        for conn in conns:
            conn.close()
        self._listener.close()

    def _serve_conn(self, conn):
        from repro.cluster.codec import decode_message, encode_ok

        try:
            while not self._stop.is_set():
                header = conn.recv(FRAME_HEADER.size, socket.MSG_WAITALL)
                if len(header) < FRAME_HEADER.size:
                    return
                (length,) = FRAME_HEADER.unpack(header)
                payload = conn.recv(length, socket.MSG_WAITALL)
                message = decode_message(payload)
                if message["op"] == "ping":
                    reply = encode_ok("pong", message["id"])
                elif message["op"] == "hello":
                    reply = encode_ok(
                        {
                            "pid": 1,
                            "host": "127.0.0.1",
                            "port": self.port,
                            "horizon": HORIZON,
                            "n_states": N_CELLS,
                            "sessions": 0,
                        },
                        message["id"],
                    )
                else:
                    continue  # hang: never answer engine ops
                conn.sendall(FRAME_HEADER.pack(len(reply)) + reply)
        except OSError:
            return

    def close(self):
        self._stop.set()
        self._thread.join(5)


class TestDeadlines:
    def test_hung_worker_surfaces_as_worker_down_at_the_deadline(self):
        fake = _HungWorker()
        try:
            handle = WorkerHandle(fake.address, rpc_timeout_s=0.5)
            assert handle.hello()["horizon"] == HORIZON
            assert handle.ping() is True  # answers heartbeats: looks alive
            start = time.monotonic()
            with pytest.raises(WorkerDownError, match="hung worker"):
                handle.call("step", ("u0", 3))
            assert time.monotonic() - start < 10.0
            # the handle is dead now; later calls fail fast and loudly
            assert handle.alive is False
            with pytest.raises(WorkerDownError):
                handle.call("step", ("u0", 3))
            assert handle.ping() is False
        finally:
            fake.close()

    def test_oversized_call_raises_before_send_and_keeps_the_channel(self):
        fake = _HungWorker()
        try:
            handle = WorkerHandle(
                fake.address, max_frame_bytes=512, rpc_timeout_s=5.0
            )
            with pytest.raises(FrameTooLargeError):
                handle.call("open", ("big", None, {"pad": "x" * 4096}))
            assert handle.alive is True
            assert handle.ping() is True  # channel unharmed
        finally:
            fake.close()
