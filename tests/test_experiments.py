"""Tests for the experiment harness (runners, reporters, CLI)."""

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.experiments.report import format_series_table, format_table, sparkline
from repro.experiments.runners import (
    run_budget_over_time,
    run_conservative_release_table,
    run_runtime_scaling,
    run_utility_sweep,
)
from repro.experiments.scenarios import synthetic_scenario


@pytest.fixture(scope="module")
def tiny_scenario():
    return synthetic_scenario(n_rows=4, n_cols=4, sigma=1.0, horizon=8)


class TestReport:
    def test_format_table(self):
        text = format_table(["a", "b"], [[1, 2.5], ["x", 3.0]], title="T")
        assert "T" in text
        assert "2.5000" in text

    def test_series_table(self):
        text = format_series_table("eps", [0.1, 0.5], {"curve": [1.0, 2.0]})
        assert "curve" in text
        assert text.count("\n") >= 3

    def test_sparkline(self):
        line = sparkline([0, 1, 2, 3])
        assert len(line) == 4
        assert sparkline([]) == ""
        assert sparkline([1.0, 1.0]) == "▁▁"


class TestBudgetOverTime(object):
    def test_curves_shape_and_ordering(self, tiny_scenario):
        event = tiny_scenario.presence_event(0, 3, 3, 5)
        result = run_budget_over_time(
            tiny_scenario,
            event,
            settings=[("eps=0.1", 0.5, 0.1), ("eps=2", 0.5, 2.0)],
            n_runs=3,
            seed=0,
        )
        assert set(result.curves) == {"eps=0.1", "eps=2"}
        for curve in result.curves.values():
            assert curve.shape == (8,)
            assert np.all(curve <= 0.5 + 1e-12)
        # Looser epsilon keeps at least as much budget on average.
        assert result.curves["eps=2"].mean() >= result.curves["eps=0.1"].mean()
        text = result.to_text()
        assert "eps=0.1" in text

    def test_delta_mechanism(self, tiny_scenario):
        event = tiny_scenario.presence_event(0, 3, 3, 5)
        result = run_budget_over_time(
            tiny_scenario,
            event,
            settings=[("d", 1.0, 1.0)],
            n_runs=2,
            mechanism="delta",
            delta=0.3,
            seed=0,
        )
        assert "d" in result.curves

    def test_rejects_bad_mechanism(self, tiny_scenario):
        event = tiny_scenario.presence_event(0, 3, 3, 5)
        with pytest.raises(Exception):
            run_budget_over_time(
                tiny_scenario, event, settings=[("x", 1.0, 1.0)],
                n_runs=1, mechanism="bogus",
            )


class TestUtilitySweep:
    def test_budget_increases_with_epsilon(self, tiny_scenario):
        result = run_utility_sweep(
            scenario_for=lambda params: tiny_scenario,
            events_for=lambda sc, params: [sc.presence_event(0, 3, 3, 5)],
            curve_settings=[("0.5-PLM", {"alpha": 0.5})],
            epsilons=(0.1, 2.0),
            n_runs=3,
            seed=0,
        )
        budgets = result.budget_series["0.5-PLM"]
        assert budgets[1] >= budgets[0]
        assert len(result.error_series["0.5-PLM"]) == 2
        assert "ave. PLM budget" in result.to_text()


class TestRuntimeScaling:
    def test_baseline_grows_faster(self):
        scenario = synthetic_scenario(n_rows=3, n_cols=3, horizon=12)
        result = run_runtime_scaling(
            scenario, axis="length", values=(2, 8), fixed=3, n_events=2, seed=0
        )
        assert len(result.baseline_s) == 2
        # Exponential vs linear: from length 2 to 8 the baseline must blow
        # up far more than PriSTE (3^8 vs 3^2 trajectories enumerated) --
        # robust to wall-clock noise because the contrast is ~2 orders of
        # magnitude.
        baseline_growth = result.baseline_s[-1] / result.baseline_s[0]
        priste_growth = result.priste_s[-1] / result.priste_s[0]
        assert baseline_growth > 5 * priste_growth
        assert result.speedup_at_max() == pytest.approx(
            result.baseline_s[-1] / result.priste_s[-1]
        )

    def test_width_axis(self):
        scenario = synthetic_scenario(n_rows=3, n_cols=3, horizon=10)
        result = run_runtime_scaling(
            scenario, axis="width", values=(2, 4), fixed=2, n_events=2, seed=0
        )
        assert len(result.priste_s) == 2

    def test_rejects_bad_axis(self):
        scenario = synthetic_scenario(n_rows=3, n_cols=3, horizon=10)
        with pytest.raises(Exception):
            run_runtime_scaling(scenario, axis="area", values=(2,))


class TestConservativeRelease:
    def test_table_structure(self, tiny_scenario):
        event = tiny_scenario.presence_event(0, 3, 3, 5)
        table, rows = run_conservative_release_table(
            tiny_scenario, event, thresholds=(0.01, None), n_runs=2,
            work_unit=400, seed=0,
        )
        assert len(rows) == 2
        assert rows[-1]["threshold"] == "none"
        assert "conservative" in table
        # Unlimited solving never falls back to conservative release.
        assert rows[-1]["# conservative release"] == 0


class TestCLI:
    def test_fig13_smoke(self, capsys):
        code = cli_main(["fig13", "--runs", "1", "--horizon", "6"])
        assert code == 0
        out = capsys.readouterr().out
        assert "sigma=0.01" in out

    def test_fig14_smoke(self, capsys):
        # Covered more cheaply by TestRuntimeScaling; here just the wiring.
        code = cli_main(["fig7", "--runs", "1", "--horizon", "6"])
        assert code == 0
        assert "0.2-PLM" in capsys.readouterr().out
