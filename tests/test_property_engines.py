"""Property-based tests: the fast engines equal exhaustive enumeration.

These are the core correctness guarantees of the reproduction: for random
small chains, events and emissions, Lemma III.1 (prior), Lemmas III.2/III.3
(joints) and the generalized automaton engine must agree exactly with the
exponential-time oracle of Appendix B.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.automaton_engine import AutomatonModel
from repro.core.baseline import enumerate_joint, enumerate_prior
from repro.core.joint import joint_probability
from repro.core.two_world import TwoWorldModel
from repro.events.events import PatternEvent, PresenceEvent
from repro.events.expressions import And, Not, Or, Predicate
from repro.geo.regions import Region
from repro.markov.transition import TransitionMatrix

N_STATES = 3
HORIZON = 4


@st.composite
def chains(draw):
    raw = draw(
        st.lists(
            st.lists(
                st.floats(0.05, 1.0, allow_nan=False), min_size=N_STATES, max_size=N_STATES
            ),
            min_size=N_STATES,
            max_size=N_STATES,
        )
    )
    matrix = np.asarray(raw)
    return TransitionMatrix(matrix / matrix.sum(axis=1, keepdims=True))


@st.composite
def distributions(draw):
    raw = draw(
        st.lists(st.floats(0.05, 1.0, allow_nan=False), min_size=N_STATES, max_size=N_STATES)
    )
    vec = np.asarray(raw)
    return vec / vec.sum()


@st.composite
def regions(draw):
    cells = draw(
        st.lists(st.integers(0, N_STATES - 1), min_size=1, max_size=N_STATES - 1, unique=True)
    )
    return Region.from_cells(N_STATES, cells)


@st.composite
def presence_events(draw):
    start = draw(st.integers(1, HORIZON))
    end = draw(st.integers(start, HORIZON))
    return PresenceEvent(draw(regions()), start=start, end=end)


@st.composite
def pattern_events(draw):
    length = draw(st.integers(1, 3))
    start = draw(st.integers(1, HORIZON - length + 1))
    return PatternEvent([draw(regions()) for _ in range(length)], start=start)


@st.composite
def emission_columns(draw):
    rows = draw(
        st.lists(
            st.floats(0.01, 1.0, allow_nan=False),
            min_size=N_STATES * HORIZON,
            max_size=N_STATES * HORIZON,
        )
    )
    return np.asarray(rows).reshape(HORIZON, N_STATES)


@st.composite
def expressions(draw, depth=2):
    if depth == 0:
        return Predicate(draw(st.integers(1, HORIZON)), draw(st.integers(0, N_STATES - 1)))
    kind = draw(st.sampled_from(["pred", "and", "or", "not"]))
    if kind == "pred":
        return Predicate(draw(st.integers(1, HORIZON)), draw(st.integers(0, N_STATES - 1)))
    if kind == "not":
        return Not.of(draw(expressions(depth=depth - 1)))
    children = [draw(expressions(depth=depth - 1)) for _ in range(2)]
    return (And.of if kind == "and" else Or.of)(children)


@settings(max_examples=40, deadline=None)
@given(chain=chains(), event=presence_events(), pi=distributions())
def test_presence_prior_equals_enumeration(chain, event, pi):
    model = TwoWorldModel(chain, event, horizon=HORIZON)
    fast = model.prior_probability(pi)
    slow = enumerate_prior(chain, event, pi)
    assert abs(fast - slow) < 1e-10


@settings(max_examples=40, deadline=None)
@given(chain=chains(), event=pattern_events(), pi=distributions())
def test_pattern_prior_equals_enumeration(chain, event, pi):
    model = TwoWorldModel(chain, event, horizon=HORIZON)
    fast = model.prior_probability(pi)
    slow = enumerate_prior(chain, event, pi)
    assert abs(fast - slow) < 1e-10


@settings(max_examples=25, deadline=None)
@given(
    chain=chains(),
    event=presence_events(),
    pi=distributions(),
    cols=emission_columns(),
    upto=st.integers(1, HORIZON),
)
def test_presence_joint_equals_enumeration(chain, event, pi, cols, upto):
    model = TwoWorldModel(chain, event, horizon=HORIZON)
    fast = joint_probability(model, pi, cols, upto_t=upto)
    slow = enumerate_joint(chain, event, pi, cols, upto_t=upto)
    assert abs(fast - slow) < 1e-10


@settings(max_examples=25, deadline=None)
@given(
    chain=chains(),
    event=pattern_events(),
    pi=distributions(),
    cols=emission_columns(),
    upto=st.integers(1, HORIZON),
)
def test_pattern_joint_equals_enumeration(chain, event, pi, cols, upto):
    model = TwoWorldModel(chain, event, horizon=HORIZON)
    fast = joint_probability(model, pi, cols, upto_t=upto)
    slow = enumerate_joint(chain, event, pi, cols, upto_t=upto)
    assert abs(fast - slow) < 1e-10


@settings(max_examples=30, deadline=None)
@given(chain=chains(), expr=expressions(), pi=distributions(), cols=emission_columns())
def test_automaton_engine_equals_enumeration(chain, expr, pi, cols):
    from repro.events.expressions import FALSE, TRUE

    if expr in (TRUE, FALSE):
        return  # constants carry no time window
    model = AutomatonModel(chain, expr, horizon=HORIZON)
    assert abs(model.prior_probability(pi) - enumerate_prior(chain, expr, pi)) < 1e-10
    upto = HORIZON
    fast = model.joint_probability(pi, cols, upto_t=upto)
    slow = enumerate_joint(chain, expr, pi, cols, upto_t=upto)
    assert abs(fast - slow) < 1e-10


@settings(max_examples=30, deadline=None)
@given(chain=chains(), event=presence_events(), pi=distributions())
def test_event_and_negation_partition(chain, event, pi):
    """Pr(EVENT) + Pr(not EVENT) = 1 exactly."""
    model = TwoWorldModel(chain, event, horizon=HORIZON)
    prior = model.prior_probability(pi)
    complement = enumerate_prior(chain, ~event.to_expression(), pi)
    assert abs(prior + complement - 1.0) < 1e-10
