"""Property-based round-trip and consistency tests for auxiliary modules."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.events.events import PatternEvent, PresenceEvent
from repro.geo.grid import GridMap
from repro.geo.regions import Region
from repro.io import (
    chain_from_dict,
    chain_to_dict,
    event_from_dict,
    event_to_dict,
    grid_from_dict,
    grid_to_dict,
)
from repro.markov.transition import TransitionMatrix

N_CELLS = 6


@st.composite
def grids(draw):
    return GridMap(
        n_rows=draw(st.integers(1, 6)),
        n_cols=draw(st.integers(1, 6)),
        cell_size_km=draw(st.floats(0.1, 10.0, allow_nan=False)),
        origin_km=(
            draw(st.floats(-100, 100, allow_nan=False)),
            draw(st.floats(-100, 100, allow_nan=False)),
        ),
    )


@st.composite
def chains(draw):
    n = draw(st.integers(2, 5))
    raw = np.asarray(
        draw(
            st.lists(
                st.lists(st.floats(0.01, 1.0, allow_nan=False), min_size=n, max_size=n),
                min_size=n,
                max_size=n,
            )
        )
    )
    return TransitionMatrix(raw / raw.sum(axis=1, keepdims=True))


@st.composite
def regions(draw):
    cells = draw(
        st.lists(st.integers(0, N_CELLS - 1), min_size=1, max_size=N_CELLS - 1, unique=True)
    )
    return Region.from_cells(N_CELLS, cells)


@st.composite
def presence_events(draw):
    start = draw(st.integers(1, 5))
    return PresenceEvent(draw(regions()), start=start, end=draw(st.integers(start, 6)))


@st.composite
def pattern_events(draw):
    length = draw(st.integers(1, 3))
    return PatternEvent(
        [draw(regions()) for _ in range(length)], start=draw(st.integers(1, 4))
    )


@settings(max_examples=50, deadline=None)
@given(grid=grids())
def test_grid_roundtrip(grid):
    assert grid_from_dict(grid_to_dict(grid)) == grid


@settings(max_examples=50, deadline=None)
@given(chain=chains())
def test_chain_roundtrip(chain):
    again = chain_from_dict(chain_to_dict(chain))
    assert np.allclose(again.matrix, chain.matrix)


@settings(max_examples=50, deadline=None)
@given(event=presence_events())
def test_presence_roundtrip(event):
    again = event_from_dict(event_to_dict(event))
    assert again.region == event.region
    assert again.window == event.window


@settings(max_examples=50, deadline=None)
@given(event=pattern_events())
def test_pattern_roundtrip(event):
    again = event_from_dict(event_to_dict(event))
    assert again.regions == event.regions
    assert again.start == event.start


@settings(max_examples=40, deadline=None)
@given(event=presence_events(), data=st.data())
def test_expression_consistency_after_roundtrip(event, data):
    """The round-tripped event evaluates identically on random paths."""
    again = event_from_dict(event_to_dict(event))
    for _ in range(10):
        trajectory = data.draw(
            st.lists(
                st.integers(0, N_CELLS - 1), min_size=event.end, max_size=event.end
            )
        )
        assert again.ground_truth(trajectory) == event.ground_truth(trajectory)
