"""Native vs NumPy vs scalar solver kernels: bit-identity contract.

The compiled kernel (``_kernels.c`` via ctypes) is only allowed to exist
because it returns *exactly* what the NumPy kernel returns -- statuses,
best values (compared via ``repr`` so signed zeros and every last ulp
count), best points, evaluation counts and the exhausted flag -- for
every input, including the adversarial families: degenerate edges with
``a2 >= 0``, exact vertex ties, values sitting on the tolerance
boundary, NaN coefficients, and work-limit truncation mid-sweep.

Every test that pins ``kernel="native"`` is skipped when no compiler is
available (``REPRO_NATIVE_DISABLE=1`` CI job); the selection-logic tests
run everywhere.
"""

import os

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import native
from repro.core.qp import (
    KERNEL_CHOICES,
    KERNEL_ENV,
    SolverOptions,
    SolverStatus,
    check_condition,
    kernel_stats,
    maximize_rank_one_simplex,
    resolve_kernel,
    solve_conditions_batch,
)
from repro.core.theorem import RankOneCondition
from repro.errors import SolverError

needs_native = pytest.mark.skipif(
    not native.native_available(),
    reason="compiled kernel unavailable (no compiler or disabled)",
)


def _trusted(u, v, w):
    """Condition constructor that skips NaN/inf validation."""
    return RankOneCondition._trusted(
        np.asarray(u, dtype=np.float64),
        np.asarray(v, dtype=np.float64),
        np.asarray(w, dtype=np.float64),
        "test",
    )


def _with_kernel(options: SolverOptions, kernel: str) -> SolverOptions:
    return SolverOptions(
        constraint=options.constraint,
        tolerance=options.tolerance,
        work_limit=options.work_limit,
        time_limit_s=options.time_limit_s,
        exhaustive=options.exhaustive,
        n_starts=options.n_starts,
        seed=options.seed,
        kernel=kernel,
    )


def _condition_families(rng, m):
    """Adversarial condition families the bit-identity sweep covers."""
    tol = 1e-9
    families = {
        "mixed": _trusted(
            rng.normal(size=m), rng.normal(size=m), rng.normal(size=m)
        ),
        "safe": _trusted(
            rng.normal(size=m), rng.normal(size=m), rng.normal(size=m) - 6.0
        ),
        # constant u: every edge has a1 = a2 contributions from du = 0,
        # so no interior stationary point ever qualifies (a2 = 0).
        "degenerate_a2": _trusted(
            np.full(m, 0.7), rng.normal(size=m), rng.normal(size=m) - 1.0
        ),
        # coefficients from a tiny discrete set force exact vertex ties;
        # both kernels must keep the *first* maximizer.
        "ties": _trusted(
            rng.choice([0.0, 1.0], size=m),
            rng.choice([0.0, 1.0], size=m),
            rng.choice([-1.0, 0.0], size=m),
        ),
        # vertex values exactly at +/- the tolerance boundary.
        "tolerance_edge": _trusted(
            np.zeros(m),
            np.zeros(m),
            rng.choice([tol, -tol, np.nextafter(tol, 2.0)], size=m),
        ),
    }
    if m >= 2:
        w = rng.normal(size=m)
        w[0] = np.nan
        families["nan"] = _trusted(rng.normal(size=m), rng.normal(size=m), w)
    return families


def _option_sets(m):
    triangle = m + m * (m - 1) // 2
    return [
        SolverOptions(),
        SolverOptions(exhaustive=True),
        SolverOptions(tolerance=1e-3),
        SolverOptions(work_limit=1),
        SolverOptions(work_limit=max(1, triangle // 2)),
        SolverOptions(work_limit=triangle + 10),
        # non-binding wall clock: never fires, but disables early exit,
        # so both kernels must run the full deterministic sweep.
        SolverOptions(time_limit_s=1e6),
    ]


def assert_results_identical(a, b):
    assert a.status is b.status
    assert repr(a.best_value) == repr(b.best_value)
    assert a.n_evaluations == b.n_evaluations
    assert a.exhausted == b.exhausted
    if a.best_point is None or b.best_point is None:
        assert a.best_point is None and b.best_point is None
    else:
        assert a.best_point.tobytes() == b.best_point.tobytes()


@needs_native
class TestBitIdentity:
    @pytest.mark.parametrize("m", [1, 2, 3, 5, 16, 64])
    def test_native_equals_numpy_equals_scalar(self, m):
        rng = np.random.default_rng(1000 + m)
        conditions = list(_condition_families(rng, m).values())
        for options in _option_sets(m):
            native_opts = _with_kernel(options, "native")
            numpy_opts = _with_kernel(options, "numpy")
            batch_native = solve_conditions_batch(conditions, native_opts)
            batch_numpy = solve_conditions_batch(conditions, numpy_opts)
            for condition, rn, rp in zip(
                conditions, batch_native, batch_numpy
            ):
                assert_results_identical(rn, rp)
                # the scalar K=1 front end, on both kernels
                assert_results_identical(
                    rn, maximize_rank_one_simplex(condition, native_opts)
                )
                assert_results_identical(
                    rn, maximize_rank_one_simplex(condition, numpy_opts)
                )

    def test_check_condition_matches_across_kernels(self):
        rng = np.random.default_rng(7)
        for m in (2, 9, 33):
            for condition in _condition_families(rng, m).values():
                rn = check_condition(condition, _with_kernel(SolverOptions(), "native"))
                rp = check_condition(condition, _with_kernel(SolverOptions(), "numpy"))
                assert_results_identical(rn, rp)

    def test_work_limit_truncation_mid_block(self):
        # m = 200 with the default 8192-element block target gives
        # 40-row edge blocks; a limit binding inside block 2 must stop
        # both kernels at the same evaluation count.
        rng = np.random.default_rng(11)
        condition = _trusted(
            rng.normal(size=200), rng.normal(size=200), rng.normal(size=200) - 8.0
        )
        for limit in (200, 201, 5000, 12345):
            options = SolverOptions(work_limit=limit)
            rn = maximize_rank_one_simplex(condition, _with_kernel(options, "native"))
            rp = maximize_rank_one_simplex(condition, _with_kernel(options, "numpy"))
            assert_results_identical(rn, rp)
            assert not rn.exhausted  # the limit actually bound

    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_property_random_conditions(self, data):
        m = data.draw(st.integers(1, 9))
        vals = st.floats(-3.0, 3.0, allow_nan=False)

        def vec():
            return np.asarray(data.draw(st.lists(vals, min_size=m, max_size=m)))

        condition = _trusted(vec(), vec(), vec())
        triangle = m + m * (m - 1) // 2
        work_limit = data.draw(
            st.one_of(st.none(), st.integers(1, triangle + 3))
        )
        exhaustive = data.draw(st.booleans())
        options = SolverOptions(work_limit=work_limit, exhaustive=exhaustive)
        rn = maximize_rank_one_simplex(condition, _with_kernel(options, "native"))
        rp = maximize_rank_one_simplex(condition, _with_kernel(options, "numpy"))
        assert_results_identical(rn, rp)


class TestKernelSelection:
    def test_options_beat_environment(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV, "numpy")
        assert resolve_kernel(SolverOptions(kernel="numpy")) == "numpy"
        if native.native_available():
            assert resolve_kernel(SolverOptions(kernel="native")) == "native"
        assert resolve_kernel() == "numpy"

    def test_invalid_environment_value_raises(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV, "fortran")
        with pytest.raises(SolverError, match="REPRO_SOLVER_KERNEL"):
            resolve_kernel()

    def test_invalid_option_rejected_eagerly(self):
        with pytest.raises(SolverError, match="kernel"):
            SolverOptions(kernel="fortran")

    def test_auto_resolves_to_a_real_backend(self):
        assert resolve_kernel(SolverOptions(kernel="auto")) in ("native", "numpy")

    def test_native_request_fails_loudly_when_disabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_DISABLE", "1")
        native.reset()
        try:
            assert not native.native_available()
            assert native.native_detail()["state"] == "disabled"
            with pytest.raises(SolverError, match="native"):
                resolve_kernel(SolverOptions(kernel="native"))
            # auto degrades silently to numpy
            assert resolve_kernel(SolverOptions(kernel="auto")) == "numpy"
            result = maximize_rank_one_simplex(
                _trusted([1.0, 0.0], [1.0, 0.0], [0.0, 0.0]),
                SolverOptions(kernel="auto"),
            )
            assert result.status is SolverStatus.VIOLATED
        finally:
            monkeypatch.delenv("REPRO_NATIVE_DISABLE")
            native.reset()

    def test_fingerprint_excludes_kernel(self):
        base = SolverOptions()
        for kernel in KERNEL_CHOICES:
            assert SolverOptions(kernel=kernel).fingerprint() == base.fingerprint()
        assert SolverOptions(work_limit=5).fingerprint() != base.fingerprint()

    def test_kernel_stats_counts_solved_conditions(self):
        before = kernel_stats()
        conditions = [
            _trusted([1.0, -1.0], [1.0, 2.0], [0.0, 0.0]) for _ in range(3)
        ]
        solve_conditions_batch(conditions, SolverOptions(kernel="numpy"))
        after = kernel_stats()
        assert after["numpy_calls"] == before["numpy_calls"] + 1
        assert after["numpy_conditions"] == before["numpy_conditions"] + 3
        assert after["kernel"] in ("native", "numpy")
        assert after["native_state"] in (
            "unloaded", "disabled", "native", "unavailable"
        )

    def test_forced_numpy_environment_end_to_end(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV, "numpy")
        before = kernel_stats()["numpy_conditions"]
        rng = np.random.default_rng(3)
        conditions = [
            _trusted(rng.normal(size=6), rng.normal(size=6), rng.normal(size=6))
            for _ in range(4)
        ]
        results = solve_conditions_batch(conditions, SolverOptions())
        assert len(results) == 4
        assert kernel_stats()["numpy_conditions"] == before + 4


@needs_native
class TestNativeLoader:
    def test_detail_reports_native(self):
        detail = native.native_detail()
        assert detail["state"] == "native"
        assert detail["path"] is not None
        assert detail["error"] is None

    def test_abi_version_pinned(self):
        lib = native.load_kernel()
        assert lib is not None
        assert lib.ro_kernel_abi_version() == native.KERNEL_ABI_VERSION

    def test_reload_is_stable(self):
        first = native.native_detail()["path"]
        native.reset()
        assert native.native_available()
        assert native.native_detail()["path"] == first
