"""Property-based tests for high-order chain lifting invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.events.events import PresenceEvent
from repro.geo.regions import Region
from repro.markov.highorder import HighOrderChain

M = 3


@st.composite
def trajectories(draw):
    length = draw(st.integers(5, 30))
    return draw(st.lists(st.integers(0, M - 1), min_size=length, max_size=length))


@st.composite
def chains(draw):
    order = draw(st.integers(1, 2))
    trajectory = draw(trajectories())
    return HighOrderChain.fit([trajectory], n_cells=M, order=order, smoothing=0.05)


@st.composite
def distributions(draw):
    raw = draw(st.lists(st.floats(0.05, 1.0, allow_nan=False), min_size=M, max_size=M))
    vec = np.asarray(raw)
    return vec / vec.sum()


@settings(max_examples=50, deadline=None)
@given(chain=chains())
def test_composite_matrix_structurally_valid(chain):
    """Rows stochastic; only suffix-consistent transitions allowed."""
    matrix = chain.matrix.matrix
    assert np.allclose(matrix.sum(axis=1), 1.0)
    if chain.order == 1:
        return
    for src in range(chain.n_composite_states):
        suffix = chain.decode(src)[1:]
        for dst in np.nonzero(matrix[src] > 0)[0]:
            assert chain.decode(int(dst))[:-1] == suffix


@settings(max_examples=50, deadline=None)
@given(chain=chains(), pi=distributions())
def test_lift_initial_preserves_cell_marginal(chain, pi):
    lifted = chain.lift_initial(pi)
    assert abs(lifted.sum() - 1.0) < 1e-12
    marginal = np.zeros(M)
    for composite, mass in enumerate(lifted):
        marginal[chain.last_cell(composite)] += mass
    assert np.allclose(marginal, pi)


@settings(max_examples=50, deadline=None)
@given(chain=chains(), data=st.data())
def test_lift_region_exact_membership(chain, data):
    cells = data.draw(
        st.lists(st.integers(0, M - 1), min_size=1, max_size=M - 1, unique=True)
    )
    region = Region.from_cells(M, cells)
    lifted = chain.lift_region(region)
    for composite in range(chain.n_composite_states):
        assert (composite in lifted) == (chain.last_cell(composite) in region)


@settings(max_examples=40, deadline=None)
@given(chain=chains(), data=st.data())
def test_lift_trajectory_tracks_cells(chain, data):
    cells = data.draw(st.lists(st.integers(0, M - 1), min_size=1, max_size=10))
    composite = chain.lift_trajectory(cells)
    assert len(composite) == len(cells)
    for state, cell in zip(composite, cells):
        assert chain.last_cell(state) == cell
    # Consecutive composite states are suffix-consistent.
    for src, dst in zip(composite[:-1], composite[1:]):
        if chain.order > 1:
            assert chain.decode(dst)[:-1] == chain.decode(src)[1:]


@settings(max_examples=30, deadline=None)
@given(chain=chains(), pi=distributions(), data=st.data())
def test_lifted_event_prior_in_unit_interval(chain, pi, data):
    from repro.core.two_world import TwoWorldModel

    cells = data.draw(
        st.lists(st.integers(0, M - 1), min_size=1, max_size=M - 1, unique=True)
    )
    event = PresenceEvent(Region.from_cells(M, cells), start=2, end=3)
    lifted_event = chain.lift_event(event)
    model = TwoWorldModel(chain.matrix, lifted_event, horizon=4)
    prior = model.prior_probability(chain.lift_initial(pi))
    assert -1e-12 <= prior <= 1.0 + 1e-12
