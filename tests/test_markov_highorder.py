"""Unit tests for high-order Markov support (paper footnote 2)."""

import numpy as np
import pytest

from repro.core.two_world import TwoWorldModel
from repro.errors import MarkovError
from repro.events.events import PresenceEvent
from repro.geo.regions import Region
from repro.markov.highorder import HighOrderChain


def _order2_process(rng, n_steps=6000):
    """A process where the next cell depends on the last *two* cells."""
    m = 3
    conditional = rng.uniform(0.05, 1.0, size=(m, m, m))
    conditional /= conditional.sum(axis=2, keepdims=True)
    cells = [0, 1]
    for _ in range(n_steps):
        probs = conditional[cells[-2], cells[-1]]
        cells.append(int(rng.choice(m, p=probs)))
    return cells, conditional


class TestEncoding:
    def test_encode_decode_roundtrip(self, rng):
        chain = HighOrderChain.fit([[0, 1, 2, 0, 1]], n_cells=3, order=2, smoothing=0.1)
        for composite in range(chain.n_composite_states):
            assert chain.encode(chain.decode(composite)) == composite

    def test_last_cell(self):
        chain = HighOrderChain.fit([[0, 1, 2, 0]], n_cells=3, order=2, smoothing=0.1)
        assert chain.last_cell(chain.encode([2, 1])) == 1

    def test_encode_validation(self):
        chain = HighOrderChain.fit([[0, 1, 0]], n_cells=2, order=2, smoothing=0.1)
        with pytest.raises(MarkovError):
            chain.encode([0])
        with pytest.raises(MarkovError):
            chain.encode([0, 5])


class TestFit:
    def test_composite_rows_stochastic(self, rng):
        cells, _ = _order2_process(rng, n_steps=500)
        chain = HighOrderChain.fit([cells], n_cells=3, order=2, smoothing=0.01)
        assert np.allclose(chain.matrix.matrix.sum(axis=1), 1.0)

    def test_impossible_composite_transitions_zero(self, rng):
        cells, _ = _order2_process(rng, n_steps=500)
        chain = HighOrderChain.fit([cells], n_cells=3, order=2, smoothing=0.5)
        matrix = chain.matrix.matrix
        # Transition (a, b) -> (c, d) requires c == b.
        for src in range(9):
            _, b = chain.decode(src)
            for dst in range(9):
                c, _ = chain.decode(dst)
                if c != b:
                    assert matrix[src, dst] == 0.0

    def test_recovers_conditional(self, rng):
        cells, conditional = _order2_process(rng)
        chain = HighOrderChain.fit([cells], n_cells=3, order=2)
        for a in range(3):
            for b in range(3):
                src = chain.encode([a, b])
                for c in range(3):
                    dst = chain.encode([b, c])
                    assert chain.matrix.matrix[src, dst] == pytest.approx(
                        conditional[a, b, c], abs=0.06
                    )

    def test_order1_matches_plain_fit(self, rng):
        from repro.markov.training import fit_transition_matrix

        cells, _ = _order2_process(rng, n_steps=800)
        high = HighOrderChain.fit([cells], n_cells=3, order=1)
        plain = fit_transition_matrix([cells], 3)
        assert np.allclose(high.matrix.matrix, plain.matrix)

    def test_order2_fits_better_than_order1(self, rng):
        """On a genuinely order-2 process, order 2 has higher likelihood."""
        cells, _ = _order2_process(rng)
        train, test = cells[:4000], cells[4000:]
        order1 = HighOrderChain.fit([train], n_cells=3, order=1, smoothing=0.1)
        order2 = HighOrderChain.fit([train], n_cells=3, order=2, smoothing=0.1)

        def log_likelihood(chain):
            composite = chain.lift_trajectory(test)
            total = 0.0
            for src, dst in zip(composite[:-1], composite[1:]):
                p = chain.matrix.matrix[src, dst]
                total += np.log(p) if p > 0 else -np.inf
            return total

        assert log_likelihood(order2) > log_likelihood(order1)


class TestLifting:
    def test_lift_region_membership(self):
        chain = HighOrderChain.fit([[0, 1, 2, 0]], n_cells=3, order=2, smoothing=0.1)
        region = Region.from_cells(3, [1])
        lifted = chain.lift_region(region)
        for composite in lifted.cells:
            assert chain.last_cell(composite) == 1
        assert len(lifted) == 3  # one per predecessor cell

    def test_lift_initial_dwell(self):
        chain = HighOrderChain.fit([[0, 1, 0, 1]], n_cells=2, order=2, smoothing=0.1)
        pi = np.array([0.3, 0.7])
        lifted = chain.lift_initial(pi)
        assert lifted[chain.encode([0, 0])] == pytest.approx(0.3)
        assert lifted[chain.encode([1, 1])] == pytest.approx(0.7)
        assert lifted.sum() == pytest.approx(1.0)

    def test_lift_initial_with_history(self):
        chain = HighOrderChain.fit([[0, 1, 0, 1]], n_cells=2, order=2, smoothing=0.1)
        pi = np.array([0.5, 0.5])
        lifted = chain.lift_initial(pi, history=[1])
        assert lifted[chain.encode([1, 0])] == pytest.approx(0.5)
        assert lifted[chain.encode([1, 1])] == pytest.approx(0.5)

    def test_lift_emission_rows_repeat(self):
        chain = HighOrderChain.fit([[0, 1, 0, 1]], n_cells=2, order=2, smoothing=0.1)
        emission = np.array([[0.9, 0.1], [0.2, 0.8]])
        lifted = chain.lift_emission_matrix(emission)
        assert lifted.shape == (4, 2)
        for composite in range(4):
            assert np.allclose(lifted[composite], emission[composite % 2])

    def test_lifted_event_through_two_world(self, rng):
        """Footnote 2 end-to-end: quantify a PRESENCE under an order-2 model."""
        cells, _ = _order2_process(rng, n_steps=3000)
        chain = HighOrderChain.fit([cells], n_cells=3, order=2, smoothing=0.05)
        event = PresenceEvent(Region.from_cells(3, [2]), start=2, end=3)
        lifted_event = chain.lift_event(event)
        model = TwoWorldModel(chain.matrix, lifted_event, horizon=4)
        pi = np.array([0.4, 0.3, 0.3])
        prior = model.prior_probability(chain.lift_initial(pi))
        assert 0.0 < prior < 1.0

        # Cross-check against direct simulation of the composite chain.
        sim_rng = np.random.default_rng(0)
        hits = 0
        n = 4000
        matrix = chain.matrix.matrix
        lifted_pi = chain.lift_initial(pi)
        for _ in range(n):
            state = int(sim_rng.choice(lifted_pi.size, p=lifted_pi))
            trajectory = [chain.last_cell(state)]
            for _ in range(3):
                state = int(sim_rng.choice(lifted_pi.size, p=matrix[state]))
                trajectory.append(chain.last_cell(state))
            if event.ground_truth(trajectory):
                hits += 1
        assert prior == pytest.approx(hits / n, abs=0.03)

    def test_lift_trajectory(self):
        chain = HighOrderChain.fit([[0, 1, 0, 1]], n_cells=2, order=2, smoothing=0.1)
        composite = chain.lift_trajectory([0, 1, 1])
        assert composite == [
            chain.encode([0, 0]),
            chain.encode([0, 1]),
            chain.encode([1, 1]),
        ]
