"""Unit tests for the event expression AST."""

import pytest

from repro.errors import EventError
from repro.events.expressions import (
    And,
    FALSE,
    Not,
    Or,
    Predicate,
    TRUE,
    all_of,
    any_of,
    at,
    in_region,
)


class TestPredicate:
    def test_evaluate(self):
        pred = at(2, 1)
        assert pred.evaluate([0, 1, 2]) is True
        assert pred.evaluate([0, 0, 2]) is False

    def test_evaluate_short_trajectory(self):
        with pytest.raises(EventError):
            at(5, 0).evaluate([0, 1])

    def test_validation(self):
        with pytest.raises(Exception):
            at(0, 1)
        with pytest.raises(EventError):
            at(1, -1)

    def test_substitute(self):
        pred = at(2, 1)
        assert pred.substitute({2: 1}) == TRUE
        assert pred.substitute({2: 0}) == FALSE
        assert pred.substitute({1: 1}) == pred

    def test_equality_and_hash(self):
        assert at(1, 2) == at(1, 2)
        assert at(1, 2) != at(1, 3)
        assert len({at(1, 2), at(1, 2)}) == 1


class TestSmartConstructors:
    def test_and_flattens(self):
        expr = And.of([at(1, 0), And.of([at(2, 0), at(3, 0)])])
        assert len(expr.children) == 3

    def test_and_short_circuits_false(self):
        assert And.of([at(1, 0), FALSE]) == FALSE

    def test_and_drops_true(self):
        assert And.of([at(1, 0), TRUE]) == at(1, 0)

    def test_and_same_time_conflict_is_false(self):
        # Fig. 1(a): (u1 = s1) ^ (u1 = s2) is always false.
        assert And.of([at(1, 0), at(1, 1)]) == FALSE

    def test_or_flattens_and_dedupes(self):
        expr = Or.of([at(1, 0), Or.of([at(1, 0), at(1, 1)])])
        assert len(expr.children) == 2

    def test_or_short_circuits_true(self):
        assert Or.of([at(1, 0), TRUE]) == TRUE

    def test_or_empty_is_false(self):
        assert Or.of([]) == FALSE
        assert And.of([]) == TRUE

    def test_not_simplifications(self):
        assert Not.of(TRUE) == FALSE
        assert Not.of(Not.of(at(1, 0))) == at(1, 0)

    def test_operators(self):
        expr = (at(1, 0) | at(1, 1)) & at(2, 5)
        assert expr.evaluate([0, 5]) is True
        assert expr.evaluate([2, 5]) is False
        assert (~at(1, 0)).evaluate([1]) is True

    def test_canonical_order_makes_equal(self):
        assert (at(1, 0) | at(1, 1)) == (at(1, 1) | at(1, 0))


class TestStructure:
    def test_predicates_collected(self):
        expr = (at(1, 0) | at(2, 1)) & ~at(3, 2)
        assert expr.predicates() == {at(1, 0), at(2, 1), at(3, 2)}

    def test_time_window(self):
        expr = at(4, 0) | at(2, 1)
        assert expr.time_window() == (2, 4)
        assert expr.timestamps() == (2, 4)

    def test_constant_has_no_window(self):
        with pytest.raises(EventError):
            TRUE.time_window()

    def test_substitute_resolves_all_at_time(self):
        expr = at(1, 0) | at(1, 1)
        assert expr.substitute({1: 2}) == FALSE
        assert expr.substitute({1: 1}) == TRUE

    def test_immutable(self):
        pred = at(1, 0)
        with pytest.raises(AttributeError):
            pred.t = 5


class TestBuilders:
    def test_in_region(self):
        expr = in_region(3, [0, 2, 4])
        assert expr.evaluate([9, 9, 2]) is True
        assert expr.evaluate([9, 9, 1]) is False

    def test_in_region_empty_is_false(self):
        assert in_region(1, []) == FALSE

    def test_any_all(self):
        exprs = [at(1, 0), at(2, 0)]
        assert any_of(exprs).evaluate([0, 1]) is True
        assert all_of(exprs).evaluate([0, 1]) is False


class TestFig1Examples:
    """The six Boolean combinations from the paper's Fig. 1."""

    def test_a_same_time_and_is_false(self):
        assert (at(1, 0) & at(1, 1)) == FALSE

    def test_b_sensitive_area(self):
        event = at(1, 0) | at(1, 1)
        assert event.evaluate([1, 5]) is True

    def test_c_trajectory(self):
        event = at(1, 0) & at(2, 0)
        assert event.evaluate([0, 0]) is True
        assert event.evaluate([0, 1]) is False

    def test_d_visit_either_time(self):
        event = at(1, 0) | at(2, 0)
        assert event.evaluate([1, 0]) is True

    def test_e_trajectory_pattern(self):
        event = (at(1, 0) | at(1, 1)) & (at(2, 0) | at(2, 1))
        assert event.evaluate([1, 0]) is True
        assert event.evaluate([1, 2]) is False

    def test_f_presence(self):
        event = (at(1, 0) | at(1, 1)) | (at(2, 0) | at(2, 1))
        assert event.evaluate([2, 1]) is True
        assert event.evaluate([2, 2]) is False
