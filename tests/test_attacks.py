"""Unit tests for the adversary toolkit."""

import numpy as np
import pytest

from repro.attacks.inference import (
    EventBelief,
    EventInferenceAttack,
    location_posteriors,
    top_k_locations,
    viterbi_map_trajectory,
)
from repro.errors import QuantificationError
from repro.events.events import PresenceEvent
from repro.events.expressions import at, in_region
from repro.geo.regions import Region
from repro.lppm.uniform import UniformMechanism

from conftest import random_chain, random_emission


class TestEventBelief:
    def test_log_odds_shift(self):
        belief = EventBelief(prior=0.2, posterior=0.5)
        expected = abs(np.log((0.5 / 0.5) / (0.2 / 0.8)))
        assert belief.log_odds_shift == pytest.approx(expected)

    def test_degenerate_rejected(self):
        with pytest.raises(QuantificationError):
            EventBelief(prior=0.0, posterior=0.5).log_odds_shift


class TestEventInference:
    def test_uniform_release_no_update(self, rng):
        chain = random_chain(3, rng)
        event = PresenceEvent(Region.from_cells(3, [0]), start=2, end=3)
        attack = EventInferenceAttack(chain, event, horizon=4)
        assert attack.engine == "two-world"
        pi = np.array([0.3, 0.3, 0.4])
        belief = attack.infer(pi, UniformMechanism(3), [0, 1, 2, 0])
        assert belief.posterior == pytest.approx(belief.prior, rel=1e-9)
        assert belief.log_odds_shift == pytest.approx(0.0, abs=1e-9)

    def test_noiseless_release_resolves_event(self, rng):
        chain = random_chain(3, rng)
        event = PresenceEvent(Region.from_cells(3, [0]), start=1, end=2)
        attack = EventInferenceAttack(chain, event, horizon=2)
        pi = np.array([1 / 3, 1 / 3, 1 / 3])
        belief = attack.infer(pi, np.eye(3), [0, 1])  # saw the region
        assert belief.posterior == pytest.approx(1.0)
        belief = attack.infer(pi, np.eye(3), [1, 2])  # avoided it
        assert belief.posterior == pytest.approx(0.0, abs=1e-12)

    def test_expression_uses_automaton_engine(self, rng):
        chain = random_chain(3, rng)
        attack = EventInferenceAttack(
            chain, in_region(1, [0]) & ~in_region(2, [0]), horizon=3
        )
        assert attack.engine == "automaton"
        pi = np.array([0.3, 0.3, 0.4])
        belief = attack.infer(pi, UniformMechanism(3), [0, 1, 2])
        assert belief.posterior == pytest.approx(belief.prior, rel=1e-9)

    def test_engines_agree_on_presence(self, rng):
        chain = random_chain(3, rng)
        emission = random_emission(3, rng)
        event = PresenceEvent(Region.from_cells(3, [0, 1]), start=2, end=3)
        pi = np.array([0.25, 0.25, 0.5])
        fast = EventInferenceAttack(chain, event, horizon=4)
        general = EventInferenceAttack(chain, event.to_expression(), horizon=4)
        a = fast.infer(pi, emission, [0, 1, 2, 0])
        b = general.infer(pi, emission, [0, 1, 2, 0])
        assert a.posterior == pytest.approx(b.posterior, rel=1e-10)


class TestLocationPosteriors:
    def test_shape_and_normalization(self, rng):
        chain = random_chain(4, rng)
        emission = random_emission(4, rng)
        pi = np.full(4, 0.25)
        posteriors = location_posteriors(chain, pi, emission, [0, 3, 2])
        assert posteriors.shape == (3, 4)
        assert np.allclose(posteriors.sum(axis=1), 1.0)

    def test_top_k(self):
        posteriors = np.array([[0.6, 0.3, 0.1], [0.2, 0.2, 0.6]])
        top = top_k_locations(posteriors, k=2)
        assert top[0][0] == (0, pytest.approx(0.6))
        assert top[1][0] == (2, pytest.approx(0.6))

    def test_top_k_rejects_1d(self):
        with pytest.raises(QuantificationError):
            top_k_locations(np.array([0.5, 0.5]))


class TestViterbi:
    def test_noiseless_recovers_truth(self, paper_chain):
        pi = np.array([1.0, 0.0, 0.0])
        truth = [0, 2, 2, 1]
        path = viterbi_map_trajectory(paper_chain, pi, np.eye(3), truth)
        assert path == truth

    def test_map_beats_noisy_observation(self, paper_chain):
        """With an impossible observed transition, Viterbi repairs it."""
        # Transition 2 -> 0 is impossible; observing [2, 0] through a
        # noisy mechanism must decode to a feasible path.
        noisy = np.full((3, 3), 0.1) + 0.7 * np.eye(3)
        pi = np.array([0.1, 0.1, 0.8])
        path = viterbi_map_trajectory(paper_chain, pi, noisy, [2, 0])
        assert paper_chain.matrix[path[0], path[1]] > 0

    def test_path_probability_is_maximal_small_case(self, rng):
        """Exhaustive check on a 3-state, 3-step instance."""
        import itertools

        chain = random_chain(3, rng)
        emission = random_emission(3, rng)
        pi = np.array([0.3, 0.3, 0.4])
        observations = [0, 2, 1]
        path = viterbi_map_trajectory(chain, pi, emission, observations)

        def score(cells):
            p = pi[cells[0]] * emission[cells[0], observations[0]]
            for t, (a, b) in enumerate(zip(cells[:-1], cells[1:]), start=1):
                p *= chain.matrix[a, b] * emission[b, observations[t]]
            return p

        best = max(itertools.product(range(3), repeat=3), key=score)
        assert score(tuple(path)) == pytest.approx(score(best))

    def test_impossible_trace_rejected(self, paper_chain):
        pi = np.array([0.0, 0.0, 1.0])
        with pytest.raises(QuantificationError):
            # From state 2, state 0 is unreachable and emission identity.
            viterbi_map_trajectory(paper_chain, pi, np.eye(3), [0])
