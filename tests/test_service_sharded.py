"""The sharded serving path end to end over localhost TCP.

``repro serve --shards N`` swaps the in-process backend for a
:class:`~repro.engine.shard.ShardPool`; everything a client can observe
must stay invariant:

* served release streams are bit-identical to the in-process server and
  to driving a ``SessionManager`` directly -- unbatched and with a
  micro-batching window, across eviction/restore churn;
* a graceful drain checkpoints every session *through its owning shard*
  into the store, and a restarted server with a different shard count
  (or none) adopts and continues the streams exactly;
* the ``stats`` op reports per-shard counters plus their aggregate and
  the worker/shard split;
* a dead shard answers with the typed ``shard_down`` error code for its
  sessions only.
"""

import asyncio
import os

import numpy as np
import pytest

from repro.engine import SessionBuilder, SessionManager, ShardPool, shard_for
from repro.errors import ShardDownError
from repro.events.events import PresenceEvent
from repro.geo.grid import GridMap
from repro.geo.regions import Region
from repro.lppm.planar_laplace import PlanarLaplaceMechanism
from repro.markov.simulate import sample_trajectory
from repro.markov.synthetic import gaussian_kernel_transitions
from repro.service import (
    AsyncServiceClient,
    MemorySessionStore,
    ReleaseServer,
    ServerConfig,
    default_workers,
)

HORIZON = 6
N_CELLS = 16


def make_builder() -> SessionBuilder:
    grid = GridMap(4, 4, cell_size_km=1.0)
    chain = gaussian_kernel_transitions(grid, sigma=1.0)
    initial = np.full(N_CELLS, 1.0 / N_CELLS)
    return (
        SessionBuilder()
        .with_grid(grid)
        .with_chain(chain)
        .protecting(PresenceEvent(Region.from_range(N_CELLS, 0, 5), start=2, end=4))
        .with_mechanism(PlanarLaplaceMechanism(grid, 0.5))
        .with_epsilon(0.5)
        .with_fixed_prior(initial)
        .with_horizon(HORIZON)
    )


def make_manager() -> SessionManager:
    return SessionManager(make_builder())


def make_trajectories(n_sessions: int, seed: int = 7) -> dict[str, list[int]]:
    chain = make_builder().build_config().chain
    initial = np.full(N_CELLS, 1.0 / N_CELLS)
    rng = np.random.default_rng(seed)
    return {
        f"u{i}": [
            int(c)
            for c in sample_trajectory(chain, HORIZON, initial=initial, rng=rng)
        ]
        for i in range(n_sessions)
    }


def direct_records(trajectories: dict[str, list[int]]) -> dict[str, list[dict]]:
    manager = make_manager()
    for i, name in enumerate(trajectories):
        manager.open(name, rng=1000 + i)
    out = {
        name: [
            strip_elapsed(manager.step(name, cell).to_json())
            for cell in trajectory
        ]
        for name, trajectory in trajectories.items()
    }
    manager.finish_all()
    return out


def strip_elapsed(record: dict) -> dict:
    return {k: v for k, v in record.items() if k != "elapsed_s"}


def make_engine(shards: int):
    if shards == 0:
        return make_manager()
    return ShardPool(make_manager, shards)


async def serve_trajectories(
    trajectories, shards: int, store=None, finish: bool = True, **overrides
):
    """Drive every trajectory through a fresh server; return the streams."""
    engine = make_engine(shards)
    server = ReleaseServer(engine, store=store, config=ServerConfig(**overrides))
    await server.start()
    streams = {name: [] for name in trajectories}
    client = await AsyncServiceClient.connect("127.0.0.1", server.port)
    for i, name in enumerate(trajectories):
        await client.open(name, seed=1000 + i)
    for t in range(HORIZON):
        records = await asyncio.gather(
            *[
                client.step(name, trajectory[t])
                for name, trajectory in trajectories.items()
            ]
        )
        for name, record in zip(trajectories, records):
            streams[name].append(strip_elapsed(record))
    stats = await client.stats()
    if finish:
        for name in trajectories:
            await client.finish(name)
    await client.close()
    await server.drain()
    return streams, stats


class TestShardedStreamsBitIdentical:
    def test_sharded_serve_matches_in_process_and_direct(self):
        trajectories = make_trajectories(8)
        reference = direct_records(trajectories)
        sharded, _ = asyncio.run(serve_trajectories(trajectories, shards=2))
        in_process, _ = asyncio.run(serve_trajectories(trajectories, shards=0))
        assert sharded == reference
        assert in_process == reference

    def test_sharded_batched_serve_matches_direct(self):
        trajectories = make_trajectories(8)
        reference = direct_records(trajectories)
        batched, stats = asyncio.run(
            serve_trajectories(trajectories, shards=2, batch_window_ms=5.0)
        )
        assert batched == reference
        assert stats["batching"]["steps"] == 8 * HORIZON
        assert stats["batching"]["max_batch"] >= 2

    def test_sharded_serve_with_eviction_churn_matches_direct(self):
        trajectories = make_trajectories(6)
        reference = direct_records(trajectories)
        churned, stats = asyncio.run(
            serve_trajectories(
                trajectories,
                shards=2,
                store=MemorySessionStore(),
                max_resident=2,
            )
        )
        assert churned == reference
        assert stats["sessions"]["evicted"] > 0
        assert stats["sessions"]["restored"] > 0


class TestShardedStats:
    def test_stats_report_per_shard_counters_and_worker_split(self):
        trajectories = make_trajectories(6)
        _, stats = asyncio.run(serve_trajectories(trajectories, shards=2))

        assert stats["server"]["shards"] == 2
        assert stats["server"]["workers"] == default_workers(shards=2)
        shards = stats["shards"]
        assert shards["count"] == 2 and shards["alive"] == 2
        assert len(shards["per_shard"]) == 2
        expected = [0, 0]
        for name in trajectories:
            expected[shard_for(name, 2)] += 1
        for row, n_sessions in zip(shards["per_shard"], expected):
            assert row["alive"] is True
            assert row["sessions"] == n_sessions
            assert row["metrics"]["requests"].get("step", 0) == n_sessions * HORIZON
            assert row["verdict_cache"] is not None
        aggregate = shards["aggregate"]
        assert aggregate["requests"]["step"] == len(trajectories) * HORIZON
        assert aggregate["step_latency"]["count"] == len(trajectories) * HORIZON

    def test_in_process_stats_have_no_shard_section(self):
        trajectories = make_trajectories(2)
        _, stats = asyncio.run(serve_trajectories(trajectories, shards=0))
        assert stats["shards"] is None
        assert stats["server"]["shards"] == 0

    def test_default_workers_accounts_for_shards(self):
        cores = os.cpu_count() or 4
        assert default_workers() == min(32, cores)
        for shards in (2, 4, 8):
            workers = default_workers(shards=shards)
            # the parent pool shrinks with the shard count instead of
            # multiplying it, and never collapses below two slots
            assert workers == min(32, max(2, cores // shards))
            assert workers <= max(2, default_workers())


class TestShardedDrainRestart:
    @pytest.mark.parametrize("restart_shards", [0, 3])
    def test_drain_then_restart_under_other_shard_count(self, restart_shards):
        """2-shard drain -> store -> restart with N != 2, bit-identical."""
        trajectories = make_trajectories(5)
        reference = direct_records(trajectories)
        split = HORIZON // 2
        store = MemorySessionStore()

        async def first_half():
            server = ReleaseServer(
                make_engine(2), store=store, config=ServerConfig()
            )
            await server.start()
            client = await AsyncServiceClient.connect("127.0.0.1", server.port)
            streams = {name: [] for name in trajectories}
            for i, name in enumerate(trajectories):
                await client.open(name, seed=1000 + i)
            for t in range(split):
                for name, trajectory in trajectories.items():
                    streams[name].append(
                        strip_elapsed(await client.step(name, trajectory[t]))
                    )
            await client.close()
            summary = await server.drain()
            assert summary["sessions_checkpointed"] == len(trajectories)
            assert summary["sessions_lost"] == 0
            return streams

        async def second_half(streams):
            server = ReleaseServer(
                make_engine(restart_shards), store=store, config=ServerConfig()
            )
            await server.start()
            client = await AsyncServiceClient.connect("127.0.0.1", server.port)
            for t in range(split, HORIZON):
                for name, trajectory in trajectories.items():
                    streams[name].append(
                        strip_elapsed(await client.step(name, trajectory[t]))
                    )
            await client.close()
            await server.drain()
            return streams

        streams = asyncio.run(first_half())
        streams = asyncio.run(second_half(streams))
        assert streams == reference


class TestShardedGuards:
    def test_inline_workers_rejected_with_sharded_backend(self):
        pool = ShardPool(make_manager, 1)
        try:
            from repro.errors import ServiceError

            with pytest.raises(ServiceError, match="workers=0"):
                ReleaseServer(pool, config=ServerConfig(workers=0))
        finally:
            pool.close()

    def test_eviction_skips_dead_shard_sessions(self):
        """A dead shard's resident sessions must not poison eviction.

        With ``max_resident=1`` every request triggers eviction; if the
        LRU victim lives on the dead shard, the suspend fails -- that
        failure belongs to the lost session, never to the healthy
        client whose request triggered the scan.
        """

        async def run():
            pool = ShardPool(make_manager, 2)
            server = ReleaseServer(
                pool,
                store=MemorySessionStore(),
                config=ServerConfig(max_resident=1),
            )
            await server.start()
            client = await AsyncServiceClient.connect("127.0.0.1", server.port)
            on_zero = next(
                f"s{i}" for i in range(100) if shard_for(f"s{i}", 2) == 0
            )
            on_one = next(
                f"s{i}" for i in range(100) if shard_for(f"s{i}", 2) == 1
            )
            await client.open(on_zero, seed=1)
            await client.open(on_one, seed=2)

            pool._handles[1]._process.kill()
            pool._handles[1]._process.join(10)

            # the healthy session keeps serving through repeated
            # eviction scans that may pick the dead shard's session
            for t in range(3):
                record = await client.step(on_zero, t % N_CELLS)
                assert record["t"] == t + 1
            stats = await client.stats()
            assert stats["errors"].get("shard_down") is None
            await client.close()
            await server.drain()

        asyncio.run(run())


class TestShardDownOverWire:
    def test_dead_shard_answers_shard_down_for_its_sessions_only(self):
        async def run():
            pool = ShardPool(make_manager, 2)
            server = ReleaseServer(pool, config=ServerConfig())
            await server.start()
            client = await AsyncServiceClient.connect("127.0.0.1", server.port)
            on_zero = next(
                f"s{i}" for i in range(100) if shard_for(f"s{i}", 2) == 0
            )
            on_one = next(
                f"s{i}" for i in range(100) if shard_for(f"s{i}", 2) == 1
            )
            await client.open(on_zero, seed=1)
            await client.open(on_one, seed=2)

            pool._handles[1]._process.kill()
            pool._handles[1]._process.join(10)

            with pytest.raises(ShardDownError):
                await client.step(on_one, 3)
            record = await client.step(on_zero, 3)
            assert record["t"] == 1

            stats = await client.stats()
            assert stats["shards"]["alive"] == 1
            assert stats["shards"]["per_shard"][1]["alive"] is False
            assert stats["shards"]["per_shard"][1]["lost_sessions"] == 1
            assert stats["errors"].get("shard_down") == 1

            await client.close()
            summary = await server.drain()
            assert summary["sessions_lost"] == 1
            assert summary["sessions_checkpointed"] == 1

        asyncio.run(run())
