"""Micro-batched serving (``--batch-window-ms``): identity and ordering.

A server with a batch window coalesces concurrent step requests onto
``SessionManager.step_many``; the served release streams must stay
bit-identical to an unbatched server and to driving the manager
directly, per-session ordering must survive same-session bursts, and a
bad request must fail alone without poisoning its batch.
"""

import asyncio

import numpy as np
import pytest

from repro.engine import SessionBuilder, SessionManager
from repro.errors import SessionError
from repro.lppm.planar_laplace import PlanarLaplaceMechanism
from repro.markov.simulate import sample_trajectory
from repro.service import AsyncServiceClient, ReleaseServer, ServerConfig


def strip_json(record):
    return tuple(
        record[key]
        for key in (
            "t",
            "true_cell",
            "released_cell",
            "budget",
            "n_attempts",
            "conservative",
            "forced_uniform",
        )
    )


@pytest.fixture(scope="module")
def setting():
    from repro.experiments.scenarios import synthetic_scenario

    scenario = synthetic_scenario(n_rows=5, n_cols=5, sigma=1.0, horizon=8)
    event = scenario.presence_event(0, 4, 3, 5)
    builder = (
        SessionBuilder()
        .with_grid(scenario.grid)
        .with_chain(scenario.chain)
        .protecting(event)
        .with_mechanism(PlanarLaplaceMechanism(scenario.grid, 0.5))
        .with_epsilon(0.4)
        .with_horizon(8)
    )
    return scenario, builder


async def _serve_fleet(builder, scenario, n_sessions, n_steps, batch_window_ms):
    rng = np.random.default_rng(0)
    trajectories = [
        sample_trajectory(scenario.chain, n_steps, initial=scenario.initial, rng=rng)
        for _ in range(n_sessions)
    ]
    server = ReleaseServer(
        SessionManager(builder),
        config=ServerConfig(batch_window_ms=batch_window_ms, workers=2),
    )
    await server.start()
    clients = [
        await AsyncServiceClient.connect("127.0.0.1", server.port) for _ in range(4)
    ]
    by_session = [clients[i % len(clients)] for i in range(n_sessions)]
    for i in range(n_sessions):
        await by_session[i].open(f"u{i}", seed=1000 + i)
    streams = {f"u{i}": [] for i in range(n_sessions)}
    for t in range(n_steps):
        records = await asyncio.gather(
            *[
                by_session[i].step(f"u{i}", int(trajectories[i][t]))
                for i in range(n_sessions)
            ]
        )
        for i, record in enumerate(records):
            streams[f"u{i}"].append(strip_json(record))
    stats = await clients[0].stats()
    for client in clients:
        await client.close()
    await server.drain()
    return streams, stats


class TestBatchedServing:
    def test_streams_bit_identical_to_unbatched(self, setting):
        scenario, builder = setting
        batched, stats = asyncio.run(_serve_fleet(builder, scenario, 8, 6, 5.0))
        unbatched, _ = asyncio.run(_serve_fleet(builder, scenario, 8, 6, 0.0))
        assert batched == unbatched
        assert stats["batching"] is not None
        assert stats["batching"]["steps"] == 8 * 6
        assert stats["batching"]["max_batch"] >= 2, (
            "concurrent requests should coalesce into multi-session batches"
        )

    def test_matches_direct_manager(self, setting):
        scenario, builder = setting
        served, _ = asyncio.run(_serve_fleet(builder, scenario, 6, 6, 5.0))
        rng = np.random.default_rng(0)
        trajectories = [
            sample_trajectory(scenario.chain, 6, initial=scenario.initial, rng=rng)
            for _ in range(6)
        ]
        manager = SessionManager(builder)
        for i in range(6):
            manager.open(f"u{i}", rng=1000 + i)
        direct = {f"u{i}": [] for i in range(6)}
        for t in range(6):
            for i in range(6):
                record = manager.step(f"u{i}", int(trajectories[i][t]))
                direct[f"u{i}"].append(strip_json(record.to_json()))
        assert served == direct

    def test_same_session_burst_stays_ordered(self, setting):
        scenario, builder = setting

        async def run():
            server = ReleaseServer(
                SessionManager(builder),
                config=ServerConfig(batch_window_ms=20.0, workers=2),
            )
            await server.start()
            client = await AsyncServiceClient.connect("127.0.0.1", server.port)
            await client.open("u0", seed=5)
            # Fire a burst of steps for one session without awaiting in
            # between: each must land in its own batch, in order.
            records = await asyncio.gather(
                *[client.step("u0", cell) for cell in (3, 7, 1, 4)]
            )
            await client.close()
            await server.drain()
            return records

        records = asyncio.run(run())
        assert [record["t"] for record in records] == [1, 2, 3, 4]
        assert [record["true_cell"] for record in records] == [3, 7, 1, 4]

    def test_bad_request_fails_alone(self, setting):
        scenario, builder = setting

        async def run():
            server = ReleaseServer(
                SessionManager(builder),
                config=ServerConfig(batch_window_ms=10.0, workers=2),
            )
            await server.start()
            client = await AsyncServiceClient.connect("127.0.0.1", server.port)
            await client.open("good", seed=1)
            results = await asyncio.gather(
                client.step("good", 3),
                client.step("ghost", 4),
                return_exceptions=True,
            )
            await client.close()
            await server.drain()
            return results

        good, ghost = asyncio.run(run())
        assert good["t"] == 1
        assert isinstance(ghost, SessionError)

    def test_batched_step_restores_suspended_sessions(self, setting):
        scenario, builder = setting

        async def run():
            server = ReleaseServer(
                SessionManager(builder),
                config=ServerConfig(
                    batch_window_ms=10.0, workers=2, max_resident=2
                ),
            )
            await server.start()
            client = await AsyncServiceClient.connect("127.0.0.1", server.port)
            for i in range(5):
                await client.open(f"u{i}", seed=i)
            # With max_resident=2, most sessions are evicted between
            # rounds; batched steps must restore them transparently.
            for t in range(3):
                records = await asyncio.gather(
                    *[client.step(f"u{i}", (t + i) % 25) for i in range(5)]
                )
                assert [record["t"] for record in records] == [t + 1] * 5
            stats = await client.stats()
            await client.close()
            await server.drain()
            return stats

        stats = asyncio.run(run())
        assert stats["sessions"]["restored"] > 0
        assert stats["batching"]["batches"] >= 3


class TestBatchOrderingUnderContention:
    def test_same_session_batches_apply_in_flush_order(self, setting):
        # Regression: batch 1 = {a, b} flushes while session a's lock is
        # held elsewhere; batch 2 = {b} must NOT leapfrog it -- the
        # acquisition gate serializes lock acquisition across batches.
        scenario, builder = setting
        from repro.service import SessionExecutor, StepBatcher

        async def run():
            manager = SessionManager(builder)
            manager.open("a", rng=1)
            manager.open("b", rng=2)
            calls = []
            original = manager.step_many

            def spy(cells):
                calls.append(dict(cells))
                return original(cells)

            manager.step_many = spy
            executor = SessionExecutor(workers=0)
            batcher = StepBatcher(manager, executor, window_s=0.01)
            async with executor.hold_many(["a"]):
                task_a = asyncio.ensure_future(batcher.submit("a", 1))
                task_b1 = asyncio.ensure_future(batcher.submit("b", 1))
                await asyncio.sleep(0)  # both land in batch 1
                # Duplicate session: flushes batch 1, seeds batch 2.
                task_b2 = asyncio.ensure_future(batcher.submit("b", 2))
                # Batch 2's window expires while a's lock is still held;
                # without the gate it would acquire b's lock first and
                # apply b's second step before its first.
                await asyncio.sleep(0.05)
            (_, rec_a), (_, rec_b1), (_, rec_b2) = await asyncio.gather(
                task_a, task_b1, task_b2
            )
            return calls, rec_a, rec_b1, rec_b2

        calls, rec_a, rec_b1, rec_b2 = asyncio.run(run())
        assert rec_a.t == 1 and rec_a.true_cell == 1
        assert (rec_b1.t, rec_b1.true_cell) == (1, 1)
        assert (rec_b2.t, rec_b2.true_cell) == (2, 2)
        assert calls[0] == {"a": 1, "b": 1}
        assert calls[1] == {"b": 2}

    def test_finish_waits_for_pending_batched_step(self, setting):
        # A pipelined step + finish on one session: the finish op's
        # barrier must let the collected step complete first.
        scenario, builder = setting

        async def run():
            server = ReleaseServer(
                SessionManager(builder),
                config=ServerConfig(batch_window_ms=30.0, workers=2),
            )
            await server.start()
            client = await AsyncServiceClient.connect("127.0.0.1", server.port)
            await client.open("u0", seed=3)
            step_task = asyncio.ensure_future(client.step("u0", 4))
            await asyncio.sleep(0)  # step parked in the open window
            summary = await client.finish("u0")
            record = await step_task
            await client.close()
            await server.drain()
            return record, summary

        record, summary = asyncio.run(run())
        assert record["t"] == 1
        assert summary["n_released"] == 1

    def test_barrier_covers_flushed_but_unexecuted_batches(self, setting):
        # Regression: after the window closes, the batch leaves
        # _pending before its flush task has run; a barrier arriving in
        # that gap must still wait for the step instead of letting a
        # finish/checkpoint overtake it.
        scenario, builder = setting
        from repro.service import SessionExecutor, StepBatcher

        async def run():
            manager = SessionManager(builder)
            manager.open("a", rng=1)
            executor = SessionExecutor(workers=0)
            batcher = StepBatcher(manager, executor, window_s=60.0)
            step_task = asyncio.ensure_future(batcher.submit("a", 3))
            await asyncio.sleep(0)  # request lands in the window
            batcher._spawn_flush()  # window closes; flush task not yet run
            assert "a" not in batcher._pending
            await batcher.barrier("a")
            t_after_barrier = manager.session("a").t
            _, record = await step_task
            return t_after_barrier, record

        t_after_barrier, record = asyncio.run(run())
        assert t_after_barrier == 2, "barrier returned before the step applied"
        assert record.t == 1
