"""The service wire protocol: framing, validation, typed errors."""

import json

import pytest

from repro.errors import (
    ProtocolError,
    QuantificationError,
    ReproError,
    ServiceBusyError,
    SessionError,
    ValidationError,
)
from repro.service.protocol import (
    ERROR_CODES,
    PROTOCOL_VERSION,
    Request,
    decode_frame,
    encode_frame,
    error_code_for,
    error_frame,
    exception_for,
    ok_frame,
    parse_reply,
    parse_request,
)


def frame(**fields) -> bytes:
    payload = {"v": PROTOCOL_VERSION, "id": 1}
    payload.update(fields)
    return encode_frame(payload)


class TestParseRequest:
    def test_step_roundtrip(self):
        request = parse_request(frame(op="step", session="u1", cell=17))
        assert request.op == "step"
        assert request.session == "u1"
        assert request.cell == 17
        assert request.request_id == 1
        again = parse_request(request.to_frame())
        assert again == request

    def test_open_with_seed(self):
        request = parse_request(frame(op="open", session="u1", seed=42))
        assert request.seed == 42

    def test_open_without_session_is_fine(self):
        request = parse_request(frame(op="open"))
        assert request.session is None

    @pytest.mark.parametrize(
        "bad",
        [
            b"not json\n",
            b"[1, 2]\n",
            frame(op="warp"),
            frame(op="step", session="u1"),            # missing cell
            frame(op="step", session="u1", cell="x"),  # non-int cell
            frame(op="step", session="u1", cell=True), # bool is not an int
            frame(op="step", cell=1),                  # missing session
            frame(op="step", session="", cell=1),      # empty session
            frame(op="open", seed="abc"),              # non-int seed
            frame(op="step", session="u", cell=1, seed=2),  # seed on step
        ],
    )
    def test_malformed_frames_raise_protocol_error(self, bad):
        with pytest.raises(ProtocolError):
            parse_request(bad)

    def test_wrong_version_rejected_with_id_attached(self):
        line = encode_frame({"v": 99, "id": 7, "op": "stats"})
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(line)
        assert excinfo.value.request_id == 7
        assert "version" in str(excinfo.value)

    def test_oversized_frame_rejected(self):
        line = frame(op="open", session="x" * (1 << 21))
        with pytest.raises(ProtocolError, match="exceeds"):
            parse_request(line)

    def test_non_session_ops_ignore_cell(self):
        request = parse_request(frame(op="stats", cell=5))
        assert request.cell is None

    @pytest.mark.parametrize("op", ["migrate", "join", "leave"])
    def test_worker_ops_roundtrip(self, op):
        request = parse_request(
            frame(op=op, worker="tcp://127.0.0.1:9001")
        )
        assert request.op == op
        assert request.worker == "tcp://127.0.0.1:9001"
        assert parse_request(request.to_frame()) == request

    @pytest.mark.parametrize(
        "bad",
        [
            frame(op="join"),                          # missing worker
            frame(op="leave"),                         # missing worker
            frame(op="join", worker=""),               # empty worker
            frame(op="cluster_status", worker="tcp://h:1"),  # status takes none
            frame(op="step", session="u", cell=1, worker="tcp://h:1"),
        ],
    )
    def test_worker_field_is_validated(self, bad):
        with pytest.raises(ProtocolError, match="worker"):
            parse_request(bad)

    def test_cluster_status_parses_bare(self):
        request = parse_request(frame(op="cluster_status"))
        assert request.op == "cluster_status"
        assert request.worker is None


class TestErrorMapping:
    def test_code_and_exception_are_inverses(self):
        for code, exc_type in ERROR_CODES.items():
            rebuilt = exception_for(code, "msg")
            assert isinstance(rebuilt, exc_type)
            assert error_code_for(rebuilt) == code

    def test_most_derived_type_wins(self):
        assert error_code_for(ServiceBusyError("x")) == "busy"
        assert error_code_for(SessionError("x")) == "session"
        assert error_code_for(QuantificationError("x")) == "quantification"
        assert error_code_for(ValidationError("x")) == "validation"
        assert error_code_for(ReproError("x")) == "internal"

    def test_foreign_exception_is_internal(self):
        assert error_code_for(RuntimeError("boom")) == "internal"
        assert isinstance(exception_for("nonsense", "m"), ReproError)


class TestReplies:
    def test_ok_frame_carries_payload(self):
        reply = parse_reply(ok_frame(3, "step", {"t": 1, "released_cell": 4}))
        assert reply["id"] == 3
        assert reply["op"] == "step"
        assert reply["released_cell"] == 4

    def test_error_frame_reraises_typed_exception(self):
        line = error_frame(9, ServiceBusyError("cap reached"))
        with pytest.raises(ServiceBusyError, match="cap reached") as excinfo:
            parse_reply(line)
        assert excinfo.value.request_id == 9

    def test_error_frame_is_json_with_code(self):
        payload = json.loads(error_frame(None, SessionError("gone")))
        assert payload["ok"] is False
        assert payload["error"]["code"] == "session"

    def test_garbage_reply_is_protocol_error(self):
        with pytest.raises(ProtocolError):
            parse_reply(b'{"v":1,"id":1}\n')

    def test_decode_frame_requires_object(self):
        with pytest.raises(ProtocolError):
            decode_frame(b"3\n")


class TestRequestDataclass:
    def test_extra_fields_ride_along(self):
        request = Request(op="stats", request_id=5, extra={"verbose": True})
        payload = json.loads(request.to_frame())
        assert payload["verbose"] is True
