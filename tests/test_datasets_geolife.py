"""Unit tests for the Geolife loader and simulator substitute."""

import os

import numpy as np
import pytest

from repro.datasets.discretize import discretize_trace, grid_for_traces
from repro.datasets.geolife import (
    BEIJING_LAT,
    BEIJING_LON,
    GeolifeSimulator,
    load_geolife_directory,
    load_plt_file,
)
from repro.errors import DatasetError
from repro.markov.training import fit_transition_matrix

PLT_BODY = """Geolife trajectory
WGS 84
Altitude is in Feet
Reserved 3
0,2,255,My Track,0,0,2,8421376
0
39.906631,116.385564,0,492,39745.1,2008-10-24,02:09:59
39.906554,116.385625,0,492,39745.100011574,2008-10-24,02:10:00
39.906400,116.385700,0,492,39745.100023148,2008-10-24,02:10:01
"""


class TestPLTLoader:
    def test_parses_points(self, tmp_path):
        path = tmp_path / "traj.plt"
        path.write_text(PLT_BODY)
        trace = load_plt_file(str(path))
        assert len(trace) == 3
        assert trace[0].latitude == pytest.approx(39.906631)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "bad.plt"
        path.write_text("header\n" * 6)
        with pytest.raises(DatasetError):
            load_plt_file(str(path))

    def test_directory_loader(self, tmp_path):
        traj_dir = tmp_path / "Data" / "000" / "Trajectory"
        os.makedirs(traj_dir)
        (traj_dir / "a.plt").write_text(PLT_BODY)
        traces = load_geolife_directory(str(tmp_path))
        assert len(traces) == 1
        assert traces[0].user_id == "000"

    def test_directory_loader_missing_root(self, tmp_path):
        with pytest.raises(DatasetError):
            load_geolife_directory(str(tmp_path / "nope"))


class TestSimulator:
    def test_trace_near_beijing(self):
        simulator = GeolifeSimulator(extent_km=5.0)
        trace = simulator.simulate_user(n_days=1, rng=0)
        for point in trace:
            assert abs(point.latitude - BEIJING_LAT) < 1.0
            assert abs(point.longitude - BEIJING_LON) < 1.0

    def test_reproducible(self):
        simulator = GeolifeSimulator()
        a = simulator.simulate_user(n_days=1, rng=3)
        b = simulator.simulate_user(n_days=1, rng=3)
        assert [p.latitude for p in a] == [p.latitude for p in b]

    def test_regular_sampling(self):
        simulator = GeolifeSimulator(interval_s=120.0)
        trace = simulator.simulate_user(n_days=1, rng=0)
        times = [p.time_s for p in trace]
        deltas = {round(b - a, 6) for a, b in zip(times[:-1], times[1:])}
        assert deltas == {120.0}

    def test_multi_user(self):
        simulator = GeolifeSimulator()
        traces = simulator.simulate_users(3, n_days=1, rng=0)
        assert len(traces) == 3
        assert len({t.user_id for t in traces}) == 3

    def test_rejects_bad_params(self):
        with pytest.raises(DatasetError):
            GeolifeSimulator(extent_km=-1.0)
        with pytest.raises(DatasetError):
            GeolifeSimulator().simulate_user(n_days=0)

    def test_commute_structure_trains_patterned_chain(self):
        """The substitute must yield a strongly patterned chain (DESIGN §4)."""
        simulator = GeolifeSimulator(interval_s=300.0)
        traces = simulator.simulate_users(3, n_days=2, rng=1)
        grid, ref = grid_for_traces(traces, cell_size_km=1.0)
        cell_trajs = [discretize_trace(t, grid, ref) for t in traces]
        chain = fit_transition_matrix(cell_trajs, grid.n_cells)
        # Dwell-heavy commuting: every user contributes at least a home
        # and a work anchor where the self-loop dominates (transit cells
        # in between are passed through and have near-zero self-loops).
        visited = sorted({c for traj in cell_trajs for c in traj})
        anchor_like = [c for c in visited if chain.matrix[c, c] > 0.9]
        assert len(anchor_like) >= 2
