"""Property-based tests for the exact simplex solver.

Soundness: the reported maximum dominates every sampled feasible point and
is itself attained at a reported feasible point.  These two properties
together pin the solver to the true global maximum up to sampling.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.qp import SolverOptions, SolverStatus, maximize_rank_one_simplex
from repro.core.theorem import RankOneCondition, sufficient_safe


@st.composite
def conditions(draw, n_min=2, n_max=6):
    n = draw(st.integers(n_min, n_max))
    vals = st.floats(-2.0, 2.0, allow_nan=False)
    u = np.asarray(draw(st.lists(vals, min_size=n, max_size=n)))
    v = np.asarray(draw(st.lists(vals, min_size=n, max_size=n)))
    w = np.asarray(draw(st.lists(vals, min_size=n, max_size=n)))
    return RankOneCondition(u=u, v=v, w=w)


@st.composite
def simplex_points(draw, n):
    raw = draw(st.lists(st.floats(0.01, 1.0, allow_nan=False), min_size=n, max_size=n))
    vec = np.asarray(raw)
    return vec / vec.sum()


@settings(max_examples=80, deadline=None)
@given(cond=conditions(), data=st.data())
def test_solver_dominates_random_points(cond, data):
    # Global dominance holds for the exhaustive sweep; the default mode
    # may stop at the first violation certificate instead.
    result = maximize_rank_one_simplex(cond, SolverOptions(exhaustive=True))
    for _ in range(25):
        pi = data.draw(simplex_points(cond.n))
        assert cond.value(pi) <= result.best_value + 1e-9


@settings(max_examples=80, deadline=None)
@given(cond=conditions())
def test_best_point_feasible_and_consistent(cond):
    result = maximize_rank_one_simplex(cond, SolverOptions())
    pi = result.best_point
    assert pi is not None
    assert np.all(pi >= -1e-12)
    assert abs(pi.sum() - 1.0) < 1e-9
    assert abs(cond.value(pi) - result.best_value) < 1e-9


@settings(max_examples=80, deadline=None)
@given(cond=conditions())
def test_status_consistent_with_value(cond):
    options = SolverOptions()
    result = maximize_rank_one_simplex(cond, options)
    if result.status is SolverStatus.SAFE:
        assert result.best_value <= options.tolerance
    elif result.status is SolverStatus.VIOLATED:
        assert result.best_value > options.tolerance


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_sufficient_certificate_never_contradicts_solver(data):
    """If the O(m) certificate says SAFE, the exact solver must agree."""
    from repro.core.theorem import privacy_conditions

    n = data.draw(st.integers(2, 5))
    a = np.asarray(
        data.draw(st.lists(st.floats(0.05, 0.95), min_size=n, max_size=n))
    )
    c = np.asarray(data.draw(st.lists(st.floats(0.1, 1.0), min_size=n, max_size=n)))
    factors = np.asarray(
        data.draw(st.lists(st.floats(0.2, 1.0), min_size=n, max_size=n))
    )
    b = c * a * factors
    epsilon = data.draw(st.floats(0.1, 2.0))
    if not sufficient_safe(a, b, c, epsilon):
        return
    for cond in privacy_conditions(a, b, c, epsilon):
        result = maximize_rank_one_simplex(cond, SolverOptions())
        assert result.status is SolverStatus.SAFE, (
            cond.label,
            result.best_value,
        )
