"""Unit tests for GPS trace containers."""

import pytest

from repro.datasets.trace import GPSPoint, GPSTrace
from repro.errors import DatasetError


def _trace(points):
    return GPSTrace([GPSPoint(t, lat, lon) for t, lat, lon in points])


class TestGPSPoint:
    def test_validation(self):
        with pytest.raises(DatasetError):
            GPSPoint(0.0, 91.0, 0.0)
        with pytest.raises(DatasetError):
            GPSPoint(0.0, 0.0, -181.0)

    def test_distance_symmetry(self):
        a = GPSPoint(0.0, 39.9, 116.4)
        b = GPSPoint(1.0, 40.0, 116.5)
        assert a.distance_km(b) == pytest.approx(b.distance_km(a))

    def test_ordering_by_time(self):
        assert GPSPoint(1.0, 0, 0) < GPSPoint(2.0, 0, 0)


class TestGPSTrace:
    def test_sorts_points(self):
        trace = _trace([(10, 0, 0), (5, 1, 1)])
        assert trace[0].time_s == 5

    def test_rejects_empty(self):
        with pytest.raises(DatasetError):
            GPSTrace([])

    def test_rejects_duplicate_times(self):
        with pytest.raises(DatasetError):
            _trace([(0, 0, 0), (0, 1, 1)])

    def test_duration_and_distance(self):
        trace = _trace([(0, 0.0, 0.0), (60, 1.0, 0.0)])
        assert trace.duration_s == 60
        assert trace.total_distance_km() == pytest.approx(111.19, rel=1e-2)

    def test_bounding_box(self):
        trace = _trace([(0, 1.0, 2.0), (1, -1.0, 5.0)])
        assert trace.bounding_box() == (-1.0, 2.0, 1.0, 5.0)


class TestInterpolation:
    def test_midpoint(self):
        trace = _trace([(0, 0.0, 0.0), (10, 1.0, 2.0)])
        mid = trace.point_at(5.0)
        assert mid.latitude == pytest.approx(0.5)
        assert mid.longitude == pytest.approx(1.0)

    def test_clamps_outside(self):
        trace = _trace([(0, 0.0, 0.0), (10, 1.0, 2.0)])
        assert trace.point_at(-5.0).latitude == 0.0
        assert trace.point_at(15.0).latitude == 1.0

    def test_resample_interval(self):
        trace = _trace([(0, 0.0, 0.0), (100, 1.0, 0.0)])
        resampled = trace.resample(10.0)
        times = [p.time_s for p in resampled]
        assert times == [10.0 * k for k in range(11)]

    def test_resample_preserves_endpoints(self):
        trace = _trace([(0, 0.0, 0.0), (100, 1.0, 0.0)])
        resampled = trace.resample(30.0)
        assert resampled[0].latitude == 0.0

    def test_resample_rejects_bad_interval(self):
        trace = _trace([(0, 0.0, 0.0), (10, 1.0, 0.0)])
        with pytest.raises(DatasetError):
            trace.resample(0.0)
