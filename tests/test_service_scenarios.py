"""Multi-tenant serving: many ScenarioSpecs in one server.

The acceptance bar of the scenario layer: a single ``repro serve``
process concurrently drives sessions from distinct ScenarioSpecs --
different grids and mechanisms -- with release streams bit-identical to
dedicated single-scenario servers, at shard counts 0 and 2; checkpoints
carry the spec, so mixed fleets survive eviction churn and a drain →
restart under a *different* shard count; the ``stats`` op reports
per-scenario counters; the allowlist rejects unlisted specs with the
typed ``scenario`` wire code.
"""

import asyncio

import numpy as np
import pytest

from repro.engine import SessionManager, ShardPool
from repro.errors import ScenarioError
from repro.markov.simulate import sample_trajectory
from repro.scenario import (
    ChainSpec,
    EventSpec,
    GridSpec,
    MechanismSpec,
    ScenarioSpec,
)
from repro.service import (
    AsyncServiceClient,
    MemorySessionStore,
    ReleaseServer,
    ServerConfig,
)
from repro.service.protocol import Request

HORIZON = 6

#: The server's flag-built default setting (5x5 map).
DEFAULT_SPEC = ScenarioSpec(
    grid=GridSpec(rows=5, cols=5),
    chain=ChainSpec.gaussian(sigma=1.0),
    events=(EventSpec.presence_range(0, 7, start=2, end=4),),
    mechanism=MechanismSpec("planar_laplace", {"alpha": 0.5}),
    epsilon=0.5,
    horizon=HORIZON,
    prior_mode="fixed",
)

#: Tenant A: 4x4 map, planar Laplace.
SPEC_A = ScenarioSpec(
    grid=GridSpec(rows=4, cols=4),
    chain=ChainSpec.gaussian(sigma=1.0),
    events=(EventSpec.presence_range(0, 5, start=2, end=4),),
    mechanism=MechanismSpec("planar_laplace", {"alpha": 0.5}),
    epsilon=0.5,
    horizon=HORIZON,
    prior_mode="fixed",
)

#: Tenant B: 3x3 map, randomized response, different epsilon.
SPEC_B = ScenarioSpec(
    grid=GridSpec(rows=3, cols=3),
    chain=ChainSpec.lazy_walk(stay_probability=0.3),
    events=(EventSpec.presence_range(0, 3, start=2, end=3),),
    mechanism=MechanismSpec("randomized_response", {"budget": 2.0}),
    epsilon=0.8,
    horizon=HORIZON,
    prior_mode="fixed",
)


def strip_elapsed(record: dict) -> dict:
    return {k: v for k, v in record.items() if k != "elapsed_s"}


def seed_for(name: str) -> int:
    return 1000 + int(name.split("-")[1])


def make_trajectories(spec: ScenarioSpec, prefix: str, n: int) -> dict[str, list[int]]:
    compiled = spec.compile()
    rng = np.random.default_rng(11)
    return {
        f"{prefix}-{i}": [
            int(c)
            for c in sample_trajectory(
                compiled.chain, HORIZON, initial=compiled.initial, rng=rng
            )
        ]
        for i in range(n)
    }


def direct_records(spec: ScenarioSpec, trajectories) -> dict[str, list[dict]]:
    """Reference streams: a dedicated single-scenario manager."""
    manager = SessionManager(spec)
    for name in trajectories:
        manager.open(name, rng=seed_for(name))
    return {
        name: [
            strip_elapsed(manager.step(name, cell).to_json()) for cell in trajectory
        ]
        for name, trajectory in trajectories.items()
    }


def make_engine(shards: int):
    if shards == 0:
        return SessionManager(DEFAULT_SPEC)
    return ShardPool(lambda: SessionManager(DEFAULT_SPEC), shards)


async def serve_dedicated(spec: ScenarioSpec, trajectories) -> dict[str, list[dict]]:
    """A dedicated single-scenario server: ``spec`` is its default engine."""
    server = ReleaseServer(SessionManager(spec))
    await server.start()
    client = await AsyncServiceClient.connect("127.0.0.1", server.port)
    for name in trajectories:
        await client.open(name, seed=seed_for(name))
    streams = {
        name: [
            strip_elapsed(await client.step(name, cell)) for cell in trajectory
        ]
        for name, trajectory in trajectories.items()
    }
    await client.close()
    await server.drain()
    return streams


async def serve_mixed(
    sessions: dict[str, tuple[ScenarioSpec | None, list[int]]],
    shards: int,
    steps: range | None = None,
    store=None,
    server_out: list | None = None,
    **overrides,
):
    """Drive a mixed-tenant fleet through one server; return the streams."""
    engine = make_engine(shards)
    server = ReleaseServer(
        engine,
        store=store,
        config=ServerConfig(**overrides),
        scenarios=[SPEC_A, SPEC_B],
    )
    await server.start()
    if server_out is not None:
        server_out.append(server)
    streams = {name: [] for name in sessions}
    client = await AsyncServiceClient.connect("127.0.0.1", server.port)
    if steps is None or steps.start == 0:
        for name, (spec, _) in sessions.items():
            await client.open(name, seed=seed_for(name), scenario=spec)
    for t in steps if steps is not None else range(HORIZON):
        records = await asyncio.gather(
            *[
                client.step(name, trajectory[t])
                for name, (_, trajectory) in sessions.items()
            ]
        )
        for name, record in zip(sessions, records):
            streams[name].append(strip_elapsed(record))
    stats = await client.stats()
    await client.close()
    await server.drain()
    return streams, stats


def mixed_sessions(n_per_tenant: int = 3):
    trajectories_a = make_trajectories(SPEC_A, "a", n_per_tenant)
    trajectories_b = make_trajectories(SPEC_B, "b", n_per_tenant)
    sessions: dict = {}
    for name, trajectory in trajectories_a.items():
        sessions[name] = (SPEC_A, trajectory)
    for name, trajectory in trajectories_b.items():
        sessions[name] = (SPEC_B, trajectory)
    return sessions, trajectories_a, trajectories_b


class TestMixedScenarioServe:
    @pytest.mark.parametrize("shards", [0, 2])
    def test_one_server_matches_dedicated_single_scenario_servers(self, shards):
        sessions, trajectories_a, trajectories_b = mixed_sessions()
        reference = {
            **direct_records(SPEC_A, trajectories_a),
            **direct_records(SPEC_B, trajectories_b),
        }

        async def dedicated():
            return {
                **(await serve_dedicated(SPEC_A, trajectories_a)),
                **(await serve_dedicated(SPEC_B, trajectories_b)),
            }

        # Two dedicated servers, each with one scenario as its default
        # engine, agree with the direct manager streams ...
        assert asyncio.run(dedicated()) == reference
        # ... and the single mixed-tenant server reproduces them all.
        mixed, stats = asyncio.run(serve_mixed(sessions, shards=shards))
        assert mixed == reference
        counters = stats["scenarios"]["counters"]
        assert counters[SPEC_A.digest()]["opened"] == len(trajectories_a)
        assert counters[SPEC_B.digest()]["opened"] == len(trajectories_b)
        assert counters[SPEC_A.digest()]["steps"] == len(trajectories_a) * HORIZON
        assert counters[SPEC_B.digest()]["steps"] == len(trajectories_b) * HORIZON

    def test_mixed_serve_with_batching_and_eviction_churn(self):
        sessions, trajectories_a, trajectories_b = mixed_sessions()
        reference = {
            **direct_records(SPEC_A, trajectories_a),
            **direct_records(SPEC_B, trajectories_b),
        }
        churned, stats = asyncio.run(
            serve_mixed(
                sessions,
                shards=0,
                store=MemorySessionStore(),
                max_resident=2,
                batch_window_ms=5.0,
            )
        )
        assert churned == reference
        assert stats["sessions"]["evicted"] > 0
        assert stats["sessions"]["restored"] > 0

    @pytest.mark.parametrize("shards_before,shards_after", [(2, 3), (2, 0), (0, 2)])
    def test_drain_and_restart_under_different_shard_count(
        self, shards_before, shards_after
    ):
        sessions, trajectories_a, trajectories_b = mixed_sessions(2)
        reference = {
            **direct_records(SPEC_A, trajectories_a),
            **direct_records(SPEC_B, trajectories_b),
        }
        store = MemorySessionStore()
        half = HORIZON // 2

        async def run_split():
            first, _ = await serve_mixed(
                sessions, shards=shards_before, steps=range(0, half), store=store
            )
            second, _ = await serve_mixed(
                sessions, shards=shards_after, steps=range(half, HORIZON), store=store
            )
            return {
                name: first[name] + second[name] for name in sessions
            }

        assert asyncio.run(run_split()) == reference

    def test_scenario_sessions_survive_drain_with_spec_in_state(self):
        store = MemorySessionStore()
        sessions = {"b-0": (SPEC_B, make_trajectories(SPEC_B, "b", 1)["b-0"])}
        asyncio.run(
            serve_mixed(sessions, shards=0, steps=range(0, 2), store=store)
        )
        state = store.get("b-0")
        assert state is not None
        assert state.scenario["digest"] == SPEC_B.digest()


class TestScenarioAdmission:
    def test_unlisted_scenario_is_rejected_with_typed_error(self):
        async def run():
            engine = SessionManager(DEFAULT_SPEC)
            server = ReleaseServer(engine, scenarios=[SPEC_A])
            await server.start()
            client = await AsyncServiceClient.connect("127.0.0.1", server.port)
            try:
                with pytest.raises(ScenarioError, match="allowlist"):
                    await client.open("u", seed=1, scenario=SPEC_B)
                # the allowlisted tenant still opens fine
                assert await client.open("v", seed=2, scenario=SPEC_A) == "v"
            finally:
                await client.close()
                await server.drain()

        asyncio.run(run())

    def test_allow_any_scenario_admits_arbitrary_specs(self):
        async def run():
            engine = SessionManager(DEFAULT_SPEC)
            server = ReleaseServer(engine, allow_any_scenario=True)
            await server.start()
            client = await AsyncServiceClient.connect("127.0.0.1", server.port)
            try:
                assert await client.open("u", seed=1, scenario=SPEC_B) == "u"
                record = await client.step("u", 1)
                assert record["t"] == 1
            finally:
                await client.close()
                await server.drain()

        asyncio.run(run())

    def test_malformed_inline_scenario_is_a_scenario_error(self):
        async def run():
            engine = SessionManager(DEFAULT_SPEC)
            server = ReleaseServer(engine, allow_any_scenario=True)
            await server.start()
            client = await AsyncServiceClient.connect("127.0.0.1", server.port)
            try:
                with pytest.raises(ScenarioError):
                    await client.open("u", scenario={"grid": {"rows": 0, "cols": 1}})
            finally:
                await client.close()
                await server.drain()

        asyncio.run(run())

    def test_open_reply_reports_horizon_and_digest_of_the_scenario(self):
        longer = ScenarioSpec.from_json(
            {**SPEC_B.to_json(), "horizon": HORIZON + 4}
        )

        async def run():
            engine = SessionManager(DEFAULT_SPEC)
            server = ReleaseServer(engine, allow_any_scenario=True)
            await server.start()
            client = await AsyncServiceClient.connect("127.0.0.1", server.port)
            try:
                reply = await client.request(
                    Request(
                        op="open", session="u", seed=1, scenario=longer.to_json()
                    )
                )
                assert reply["horizon"] == HORIZON + 4
                assert reply["scenario"] == longer.digest()
            finally:
                await client.close()
                await server.drain()

        asyncio.run(run())
