"""``repro stats`` / ``repro top``: one-shot JSON and the live screen."""

import io
import json
import os
import signal
import subprocess
import sys
import urllib.request

import pytest

from repro.obs.top import render_screen

SRC = os.path.join(os.path.dirname(__file__), os.pardir, "src")


def _sharded_stats(step_count=120, shard0_alive=True):
    """A canned ``stats`` payload shaped like a 2-shard server's."""
    per_shard = [
        {
            "shard": 0,
            "alive": shard0_alive,
            "sessions": 3,
            "lost_sessions": 0 if shard0_alive else 3,
            "health": {
                "alive": shard0_alive,
                "inflight": 1,
                "heartbeat_age_s": 0.4,
                "rpc_latency": {"count": 60, "p99_ms": 2.5},
            },
        },
        {
            "shard": 1,
            "alive": True,
            "sessions": 2,
            "health": {
                "alive": True,
                "inflight": 0,
                "heartbeat_age_s": 1.1,
                "rpc_latency": {"count": 60, "p99_ms": 3.0},
            },
        },
    ]
    return {
        "server": {"connections": 2, "workers": 4, "shards": 2, "draining": False},
        "sessions": {"open": 5, "resident": 5, "stored": 0, "evicted": 0, "restored": 0},
        "requests": {"step": step_count, "open": 5},
        "errors": {},
        "failures": {"sessions_lost": 0, "worker_down": 0, "shard_down": 0},
        "step_latency": {
            "count": step_count,
            "p50_ms": 1.0,
            "p95_ms": 2.0,
            "p99_ms": 3.0,
            "max_ms": 4.0,
        },
        "event_loop": {"current_ms": 0.1, "max_ms": 0.9},
        "tracing": {"count": step_count * 4, "slow_count": 1, "slow_threshold_ms": 1000.0},
        "shards": {"count": 2, "alive": 1 + int(shard0_alive), "per_shard": per_shard},
    }


class TestRenderScreen:
    def test_frame_summarizes_a_sharded_server(self):
        frame = render_screen(_sharded_stats(), None, 0.0, "127.0.0.1:9")
        assert "repro top — 127.0.0.1:9" in frame
        assert "serving" in frame
        assert "open=5" in frame
        assert "p99=    3.00ms" in frame
        assert "shards: 2/2 alive" in frame
        assert "rpc_p99=" in frame and "hb_age=" in frame
        assert "spans=480" in frame

    def test_rates_derive_from_successive_snapshots(self):
        before = _sharded_stats(step_count=100)
        now = _sharded_stats(step_count=160)
        frame = render_screen(now, before, 2.0, "a:1")
        assert "steps/s=    30.0" in frame
        # first frame (no prior snapshot) shows zero rates, not garbage
        first = render_screen(now, None, 0.0, "a:1")
        assert "steps/s=     0.0" in first

    def test_dead_shard_row_is_loud(self):
        frame = render_screen(
            _sharded_stats(shard0_alive=False), None, 0.0, "a:1"
        )
        assert "shards: 1/2 alive" in frame
        assert "DOWN  lost_sessions=3" in frame

    def test_in_process_backend_row(self):
        stats = _sharded_stats()
        stats["shards"] = None
        frame = render_screen(stats, None, 0.0, "a:1")
        assert "in-process (no shard workers)" in frame


class TestCliStatsAndTop:
    @pytest.fixture
    def serve_process(self, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--port", "0", "--rows", "4", "--cols", "4", "--horizon", "6",
                "--event-window", "2", "4", "--metrics-port", "0",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            banner = json.loads(proc.stdout.readline())
            assert banner["op"] == "serving"
            yield proc, banner, env
        finally:
            if proc.poll() is None:
                proc.send_signal(signal.SIGINT)
                proc.communicate(timeout=30)

    def _run(self, env, *argv):
        return subprocess.run(
            [sys.executable, "-m", "repro.cli", *argv],
            capture_output=True,
            text=True,
            timeout=60,
            env=env,
        )

    def test_stats_top_and_metrics_against_one_server(self, serve_process):
        proc, banner, env = serve_process
        address = f"127.0.0.1:{banner['port']}"

        # the banner announces the ephemeral metrics port
        assert banner["metrics_port"] not in (None, 0)

        from repro.service import ServiceClient

        with ServiceClient("127.0.0.1", banner["port"]) as client:
            client.open("u0", seed=0)
            for t in range(3):
                client.step("u0", t)

        # repro stats: one pretty-printed JSON document
        result = self._run(env, "stats", address)
        assert result.returncode == 0, result.stderr
        stats = json.loads(result.stdout)
        assert stats["requests"]["step"] == 3
        assert stats["tracing"]["enabled"] is True
        assert "spans" not in stats

        # --spans pulls the recent span buffer
        result = self._run(env, "stats", address, "--spans", "50")
        assert result.returncode == 0, result.stderr
        spans = json.loads(result.stdout)["spans"]["recent"]
        assert any(s["name"] == "solve" for s in spans)

        # repro top: two non-TTY frames, rates between them
        result = self._run(
            env, "top", address, "--iterations", "2", "--interval", "0.05"
        )
        assert result.returncode == 0, result.stderr
        assert result.stdout.count("repro top —") == 2
        assert "sessions  open=1" in result.stdout

        # the serve process's /metrics agrees with the stats op
        with urllib.request.urlopen(
            f"http://127.0.0.1:{banner['metrics_port']}/metrics", timeout=10
        ) as response:
            text = response.read().decode()
        assert 'repro_requests_total{op="step"} 3' in text
        assert "repro_spans_total" in text

    def test_stats_against_nothing_fails_cleanly(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        result = self._run(env, "stats", "127.0.0.1:1")
        assert result.returncode == 1
        assert result.stderr.strip()

    @pytest.mark.parametrize(
        "argv",
        [
            ("stats", "localhost"),  # no port
            ("stats", "127.0.0.1:9", "--spans", "-1"),
            ("top", "127.0.0.1:9", "--interval", "0"),
        ],
    )
    def test_bad_arguments_rejected(self, argv):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        result = self._run(env, *argv)
        assert result.returncode != 0
