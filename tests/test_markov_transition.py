"""Unit tests for TransitionMatrix and TimeVaryingChain."""

import numpy as np
import pytest

from repro.errors import MarkovError, ValidationError
from repro.markov.transition import TimeVaryingChain, TransitionMatrix


class TestValidation:
    def test_rejects_non_stochastic(self):
        with pytest.raises(ValidationError):
            TransitionMatrix([[0.5, 0.4], [0.5, 0.5]])

    def test_rejects_non_square(self):
        with pytest.raises(ValidationError):
            TransitionMatrix([[1.0, 0.0]])

    def test_matrix_is_read_only(self, paper_chain):
        with pytest.raises(ValueError):
            paper_chain.matrix[0, 0] = 0.5


class TestDynamics:
    def test_step(self, paper_chain):
        out = paper_chain.step([1.0, 0.0, 0.0])
        assert out.tolist() == pytest.approx([0.1, 0.2, 0.7])

    def test_step_preserves_mass(self, paper_chain):
        out = paper_chain.step([0.2, 0.3, 0.5])
        assert out.sum() == pytest.approx(1.0)

    def test_power_zero_is_identity(self, paper_chain):
        assert np.allclose(paper_chain.power(0), np.eye(3))

    def test_power_two(self, paper_chain):
        assert np.allclose(paper_chain.power(2), paper_chain.matrix @ paper_chain.matrix)

    def test_propagate(self, paper_chain):
        pi = np.array([1.0, 0.0, 0.0])
        marginals = paper_chain.propagate(pi, 3)
        assert marginals.shape == (3, 3)
        assert np.allclose(marginals[0], pi)
        assert np.allclose(marginals[2], pi @ paper_chain.power(2))

    def test_step_size_mismatch(self, paper_chain):
        with pytest.raises(MarkovError):
            paper_chain.step([0.5, 0.5])


class TestStructure:
    def test_paper_chain_ergodic(self, paper_chain):
        assert paper_chain.is_irreducible
        assert paper_chain.is_aperiodic
        assert paper_chain.is_ergodic

    def test_stationary_is_fixed_point(self, paper_chain):
        pi = paper_chain.stationary_distribution
        assert np.allclose(pi @ paper_chain.matrix, pi)
        assert pi.sum() == pytest.approx(1.0)

    def test_reducible_chain_detected(self):
        chain = TransitionMatrix([[1.0, 0.0], [0.0, 1.0]])
        assert not chain.is_irreducible
        with pytest.raises(MarkovError):
            _ = chain.stationary_distribution

    def test_periodic_chain_detected(self):
        chain = TransitionMatrix([[0.0, 1.0], [1.0, 0.0]])
        assert chain.is_irreducible
        assert not chain.is_aperiodic

    def test_entropy_rate_uniform(self):
        chain = TransitionMatrix(np.full((4, 4), 0.25))
        assert chain.entropy_rate() == pytest.approx(2.0)
        assert chain.pattern_strength() == pytest.approx(0.0)

    def test_pattern_strength_deterministic_cycle(self):
        chain = TransitionMatrix([[0.0, 1.0, 0.0], [0.0, 0.0, 1.0], [1.0, 0.0, 0.0]])
        assert chain.entropy_rate() == pytest.approx(0.0)
        assert chain.pattern_strength() == pytest.approx(1.0)

    def test_mixing_time(self, paper_chain):
        steps = paper_chain.mixing_time_bound(tolerance=1e-3)
        assert 1 <= steps <= 100

    def test_mixing_time_fails_for_periodic(self):
        chain = TransitionMatrix([[0.0, 1.0], [1.0, 0.0]])
        with pytest.raises(MarkovError):
            chain.mixing_time_bound(max_steps=50)


class TestTimeVaryingChain:
    def test_homogeneous(self, paper_chain):
        chain = TimeVaryingChain.homogeneous(paper_chain)
        assert chain.is_homogeneous
        assert chain.matrix_at(1) is paper_chain
        assert chain.matrix_at(99) is paper_chain

    def test_time_varying_lookup(self, paper_chain):
        other = TransitionMatrix(np.eye(3))
        chain = TimeVaryingChain([paper_chain, other])
        assert chain.matrix_at(1) is paper_chain
        assert chain.matrix_at(2) is other
        with pytest.raises(MarkovError):
            chain.matrix_at(3)

    def test_rejects_empty(self):
        with pytest.raises(MarkovError):
            TimeVaryingChain([])

    def test_rejects_mixed_sizes(self, paper_chain):
        with pytest.raises(MarkovError):
            TimeVaryingChain([paper_chain, TransitionMatrix(np.eye(2))])

    def test_propagate_matches_manual(self, paper_chain):
        identity = TransitionMatrix(np.eye(3))
        chain = TimeVaryingChain([paper_chain, identity])
        pi = np.array([0.5, 0.5, 0.0])
        out = chain.propagate(pi, 3)
        assert np.allclose(out[1], pi @ paper_chain.matrix)
        assert np.allclose(out[2], out[1])  # identity step

    def test_raw_array_accepted(self):
        chain = TimeVaryingChain([np.eye(2)])
        assert chain.n_states == 2
