"""Streaming engine: session equivalence, checkpointing, lifecycle."""

import json

import numpy as np
import pytest

from repro.core.priste import PriSTE, PriSTEConfig, PriSTEDeltaLocationSet
from repro.core.quantify import quantify_fixed_prior
from repro.engine import (
    ReleaseSession,
    SessionBuilder,
    SessionState,
)
from repro.errors import QuantificationError, SessionError
from repro.events.events import PresenceEvent
from repro.geo.regions import Region
from repro.lppm.planar_laplace import PlanarLaplaceMechanism
from repro.markov.simulate import sample_trajectory


@pytest.fixture
def setting(grid5, chain5, uniform5):
    event = PresenceEvent(Region.from_range(grid5.n_cells, 0, 4), start=3, end=5)
    return grid5, chain5, uniform5, event


def strip(records):
    """Records minus wall-clock, for exact comparison."""
    return [
        (r.t, r.true_cell, r.released_cell, r.budget, r.n_attempts,
         r.conservative, r.forced_uniform)
        for r in records
    ]


def geoind_builder(grid, chain, pi, event, alpha=1.0, epsilon=0.5, horizon=8):
    return (
        SessionBuilder()
        .with_grid(grid)
        .with_chain(chain)
        .protecting(event)
        .with_mechanism(PlanarLaplaceMechanism(grid, alpha))
        .with_epsilon(epsilon)
        .with_fixed_prior(pi)
        .with_horizon(horizon)
    )


class TestStreamingBatchEquivalence:
    def test_geoind_worst_case(self, setting):
        grid, chain, pi, event = setting
        priste = PriSTE(
            chain, event, PlanarLaplaceMechanism(grid, 1.0),
            PriSTEConfig(epsilon=0.5), horizon=8,
        )
        truth = sample_trajectory(chain, 8, initial=pi, rng=1)
        batch = priste.run(truth, rng=1)

        session = (
            SessionBuilder()
            .with_chain(chain)
            .protecting(event)
            .with_mechanism(PlanarLaplaceMechanism(grid, 1.0))
            .with_epsilon(0.5)
            .with_horizon(8)
            .build(rng=1)
        )
        for cell in truth:
            session.step(cell)
        streamed = session.finish()
        assert strip(streamed.records) == strip(batch.records)

    def test_geoind_fixed_prior(self, setting):
        grid, chain, pi, event = setting
        priste = PriSTE(
            chain, event, PlanarLaplaceMechanism(grid, 0.5),
            PriSTEConfig(epsilon=0.3, prior_mode="fixed", prior=pi), horizon=8,
        )
        truth = sample_trajectory(chain, 8, initial=pi, rng=2)
        batch = priste.run(truth, rng=2)

        session = geoind_builder(
            grid, chain, pi, event, alpha=0.5, epsilon=0.3
        ).build(rng=2)
        for cell in truth:
            session.step(cell)
        assert strip(session.finish().records) == strip(batch.records)

    def test_delta_location_set(self, setting):
        grid, chain, pi, event = setting
        config = PriSTEConfig(
            epsilon=0.5, prior_mode="fixed", prior=pi, record_emissions=True
        )
        priste = PriSTEDeltaLocationSet(
            chain, event, grid, alpha=1.0, delta=0.3, initial=pi,
            config=config, horizon=6,
        )
        truth = sample_trajectory(chain, 6, initial=pi, rng=8)
        batch = priste.run(truth, rng=8)

        session = (
            SessionBuilder()
            .with_grid(grid)
            .with_chain(chain)
            .protecting(event)
            .with_delta_location_set(1.0, 0.3, pi)
            .with_epsilon(0.5)
            .with_fixed_prior(pi)
            .with_horizon(6)
            .recording_emissions()
            .build(rng=8)
        )
        for cell in truth:
            session.step(cell)
        streamed = session.finish()
        assert strip(streamed.records) == strip(batch.records)
        np.testing.assert_array_equal(
            streamed.emission_stack(), batch.emission_stack()
        )

    def test_priste_session_method_matches_run(self, setting):
        grid, chain, pi, event = setting
        priste = PriSTE(
            chain, event, PlanarLaplaceMechanism(grid, 0.5),
            PriSTEConfig(epsilon=0.4, prior_mode="fixed", prior=pi), horizon=6,
        )
        truth = sample_trajectory(chain, 6, initial=pi, rng=3)
        batch = priste.run(truth, rng=3)
        session = priste.session(rng=3)
        for cell in truth:
            session.step(cell)
        assert strip(session.finish().records) == strip(batch.records)


class TestCheckpointRestore:
    def _drive(self, session, cells):
        for cell in cells:
            session.step(cell)
        return session

    def test_round_trip_mid_trajectory(self, setting):
        grid, chain, pi, event = setting
        builder = geoind_builder(grid, chain, pi, event)
        config = builder.build_config()
        truth = sample_trajectory(chain, 8, initial=pi, rng=4)

        reference = self._drive(builder.build(rng=4), truth).finish()

        session = builder.build(rng=4)
        self._drive(session, truth[:3])
        state = session.to_state()
        # JSON round trip: the state survives serialization to a store.
        state = SessionState.from_json(json.loads(json.dumps(state.to_json())))
        resumed = ReleaseSession.from_state(config, state)
        assert resumed.t == 4
        self._drive(resumed, truth[3:])
        assert strip(resumed.finish().records) == strip(reference.records)

    def test_delta_posterior_survives_round_trip(self, setting):
        grid, chain, pi, event = setting
        builder = (
            SessionBuilder()
            .with_grid(grid)
            .with_chain(chain)
            .protecting(event)
            .with_delta_location_set(1.0, 0.3, pi)
            .with_epsilon(0.5)
            .with_fixed_prior(pi)
            .with_horizon(6)
        )
        config = builder.build_config()
        truth = sample_trajectory(chain, 6, initial=pi, rng=5)
        reference = self._drive(builder.build(rng=5), truth).finish()

        session = builder.build(rng=5)
        self._drive(session, truth[:2])
        state = SessionState.from_json(
            json.loads(json.dumps(session.to_state().to_json()))
        )
        resumed = ReleaseSession.from_state(config, state)
        self._drive(resumed, truth[2:])
        assert strip(resumed.finish().records) == strip(reference.records)

    def test_checkpoint_keeps_session_usable(self, setting):
        grid, chain, pi, event = setting
        builder = geoind_builder(grid, chain, pi, event)
        truth = sample_trajectory(chain, 8, initial=pi, rng=6)
        session = builder.build(rng=6)
        session.step(truth[0])
        session.to_state()  # snapshot is non-destructive
        record = session.step(truth[1])
        assert record.t == 2

    def test_mismatched_state_rejected(self, setting):
        grid, chain, pi, event = setting
        builder = geoind_builder(grid, chain, pi, event)
        session = builder.build(rng=0)
        session.step(0)
        state = session.to_state()
        state.records = []  # committed_t now disagrees
        with pytest.raises(SessionError):
            ReleaseSession.from_state(builder.build_config(), state)


class TestSessionLifecycle:
    def test_peek_budget_is_side_effect_free(self, setting):
        grid, chain, pi, event = setting
        builder = geoind_builder(grid, chain, pi, event, alpha=0.7)
        truth = sample_trajectory(chain, 8, initial=pi, rng=7)

        plain = builder.build(rng=7)
        peeked = builder.build(rng=7)
        assert peeked.peek_budget() == pytest.approx(0.7)
        for cell in truth:
            plain.step(cell)
            peeked.peek_budget()
            peeked.step(cell)
        assert strip(plain.records) == strip(peeked.records)

    def test_step_past_horizon_raises(self, setting):
        grid, chain, pi, event = setting
        session = geoind_builder(grid, chain, pi, event, horizon=5).build(rng=0)
        for _ in range(5):
            session.step(0)
        with pytest.raises(SessionError):
            session.step(0)

    def test_bad_cell_raises(self, setting):
        grid, chain, pi, event = setting
        session = geoind_builder(grid, chain, pi, event).build(rng=0)
        with pytest.raises(QuantificationError):
            session.step(99)

    def test_finished_session_is_sealed(self, setting):
        grid, chain, pi, event = setting
        session = geoind_builder(grid, chain, pi, event).build(rng=0)
        session.step(0)
        session.finish()
        assert session.finished
        for operation in (
            lambda: session.step(0),
            session.finish,
            session.peek_budget,
            session.to_state,
        ):
            with pytest.raises(SessionError):
                operation()

    def test_builder_requires_all_parts(self, setting):
        grid, chain, pi, event = setting
        with pytest.raises(SessionError):
            SessionBuilder().build_config()
        with pytest.raises(SessionError):
            SessionBuilder().with_chain(chain).protecting(event).build_config()
        with pytest.raises(SessionError):
            # delta without a grid
            (
                SessionBuilder()
                .with_chain(chain)
                .protecting(event)
                .with_epsilon(0.5)
                .with_horizon(5)
                .with_delta_location_set(1.0, 0.3, pi)
                .build_config()
            )

    def test_delta_sessions_are_isolated(self, setting):
        grid, chain, pi, event = setting
        config = PriSTEConfig(epsilon=0.5, prior_mode="fixed", prior=pi)
        priste = PriSTEDeltaLocationSet(
            chain, event, grid, alpha=1.0, delta=0.3, initial=pi,
            config=config, horizon=6,
        )
        truth = sample_trajectory(chain, 6, initial=pi, rng=11)
        # Two interleaved sessions with the same seed must behave like
        # two independent users: each provider posterior is private.
        first, second = priste.session(rng=11), priste.session(rng=11)
        for cell in truth:
            first.step(cell)
            second.step(cell)
        assert strip(first.finish().records) == strip(second.finish().records)
        # And neither a session nor a resumed checkpoint of one must
        # perturb the batch API's posterior.
        resumed = ReleaseSession.from_state(
            priste._core, priste.session(rng=13).to_state()
        )
        resumed.step(truth[0])
        fresh = PriSTEDeltaLocationSet(
            chain, event, grid, alpha=1.0, delta=0.3, initial=pi,
            config=config, horizon=6,
        )
        assert strip(priste.run(truth, rng=12).records) == strip(
            fresh.run(truth, rng=12).records
        )

    def test_failed_step_keeps_session_checkpointable(self, setting, monkeypatch):
        grid, chain, pi, event = setting
        builder = geoind_builder(grid, chain, pi, event)
        truth = sample_trajectory(chain, 8, initial=pi, rng=13)
        reference = builder.build(rng=13)
        for cell in truth:
            reference.step(cell)

        session = builder.build(rng=13)
        for cell in truth[:3]:
            session.step(cell)
        # A solver blow-up mid-step must roll back to the committed
        # boundary: the session stays steppable and checkpointable.
        from repro.engine import session as session_module

        def boom(self, *args):
            raise RuntimeError("solver died")

        monkeypatch.setattr(session_module.ReleaseSession, "_check_all", boom)
        with pytest.raises(RuntimeError):
            session.step(truth[3])
        monkeypatch.undo()

        state = session.to_state()  # would raise before the rollback fix
        resumed = ReleaseSession.from_state(builder.build_config(), state)
        for cell in truth[3:]:
            resumed.step(cell)
        assert strip(resumed.finish().records) == strip(reference.records)

    def test_quantify_accepts_release_log(self, setting):
        grid, chain, pi, event = setting
        session = (
            geoind_builder(grid, chain, pi, event, epsilon=0.4)
            .recording_emissions()
            .build(rng=9)
        )
        truth = sample_trajectory(chain, 8, initial=pi, rng=9)
        for cell in truth:
            session.step(cell)
        log = session.finish()
        direct = quantify_fixed_prior(
            chain, event, log, log.released_cells, pi, horizon=8
        )
        via_stack = quantify_fixed_prior(
            chain, event, log.emission_stack(), log.released_cells, pi, horizon=8
        )
        assert direct.epsilon == pytest.approx(via_stack.epsilon)
        assert direct.epsilon <= 0.4 + 1e-6
