"""Shared fixtures: small maps, chains and events used across the suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.events.events import PatternEvent, PresenceEvent
from repro.geo.grid import GridMap
from repro.geo.regions import Region
from repro.markov.synthetic import gaussian_kernel_transitions
from repro.markov.transition import TransitionMatrix

#: The paper's Example III.1 / Appendix C transition matrix.
PAPER_M = np.array(
    [
        [0.1, 0.2, 0.7],
        [0.4, 0.1, 0.5],
        [0.0, 0.1, 0.9],
    ]
)


@pytest.fixture
def paper_chain() -> TransitionMatrix:
    """The 3-state chain of the paper's worked examples."""
    return TransitionMatrix(PAPER_M)


@pytest.fixture
def paper_presence() -> PresenceEvent:
    """Example III.1: PRESENCE at {s1, s2} during t = 3..4."""
    return PresenceEvent(Region.from_cells(3, [0, 1]), start=3, end=4)


@pytest.fixture
def paper_pattern() -> PatternEvent:
    """A small PATTERN on the 3-state map."""
    return PatternEvent(
        [
            Region.from_cells(3, [0, 1]),
            Region.from_cells(3, [1, 2]),
            Region.from_cells(3, [0]),
        ],
        start=2,
    )


@pytest.fixture
def grid5() -> GridMap:
    """A 5x5 km grid."""
    return GridMap(5, 5, cell_size_km=1.0)


@pytest.fixture
def chain5(grid5) -> TransitionMatrix:
    """Gaussian-kernel chain on the 5x5 grid."""
    return gaussian_kernel_transitions(grid5, sigma=1.0)


@pytest.fixture
def uniform5(grid5) -> np.ndarray:
    """Uniform initial distribution on the 5x5 grid."""
    return np.full(grid5.n_cells, 1.0 / grid5.n_cells)


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for tests."""
    return np.random.default_rng(12345)


def random_chain(n_states: int, rng: np.random.Generator) -> TransitionMatrix:
    """A random strictly-positive chain (helper, not a fixture)."""
    raw = rng.uniform(0.05, 1.0, size=(n_states, n_states))
    return TransitionMatrix(raw / raw.sum(axis=1, keepdims=True))


def random_emission(n_states: int, rng: np.random.Generator) -> np.ndarray:
    """A random strictly-positive emission matrix (helper)."""
    raw = rng.uniform(0.05, 1.0, size=(n_states, n_states))
    return raw / raw.sum(axis=1, keepdims=True)
