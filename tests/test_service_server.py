"""End-to-end tests of the serving layer over localhost TCP.

The load-bearing guarantees:

* server-mediated release streams are **bit-identical** to driving the
  ``SessionManager`` directly under the same seeds -- including when the
  residency cap forces eviction/restore round-trips through each
  ``SessionStore`` backend and steps run on the worker pool;
* admission control answers with a typed ``busy`` error, never a hang;
* a graceful drain checkpoints every open session into the store, from
  which a fresh engine can continue the streams exactly.
"""

import asyncio
import json
import threading

import numpy as np
import pytest

from repro.engine import SessionBuilder, SessionManager
from repro.errors import ServiceBusyError, SessionError
from repro.events.events import PresenceEvent
from repro.geo.grid import GridMap
from repro.geo.regions import Region
from repro.lppm.planar_laplace import PlanarLaplaceMechanism
from repro.markov.simulate import sample_trajectory
from repro.markov.synthetic import gaussian_kernel_transitions
from repro.service import (
    AsyncServiceClient,
    DirectorySessionStore,
    MemorySessionStore,
    ReleaseServer,
    ServerConfig,
    ServiceClient,
    SQLiteSessionStore,
)

HORIZON = 6
N_CELLS = 16


def make_builder() -> SessionBuilder:
    grid = GridMap(4, 4, cell_size_km=1.0)
    chain = gaussian_kernel_transitions(grid, sigma=1.0)
    initial = np.full(N_CELLS, 1.0 / N_CELLS)
    return (
        SessionBuilder()
        .with_grid(grid)
        .with_chain(chain)
        .protecting(PresenceEvent(Region.from_range(N_CELLS, 0, 5), start=2, end=4))
        .with_mechanism(PlanarLaplaceMechanism(grid, 0.5))
        .with_epsilon(0.5)
        .with_fixed_prior(initial)
        .with_horizon(HORIZON)
    )


def make_trajectories(n_sessions: int, seed: int = 7) -> dict[str, list[int]]:
    chain = make_builder().build_config().chain
    initial = np.full(N_CELLS, 1.0 / N_CELLS)
    rng = np.random.default_rng(seed)
    return {
        f"u{i}": [
            int(c)
            for c in sample_trajectory(chain, HORIZON, initial=initial, rng=rng)
        ]
        for i in range(n_sessions)
    }


def direct_records(trajectories: dict[str, list[int]]) -> dict[str, list[dict]]:
    """The reference: the same streams driven straight on a manager."""
    manager = SessionManager(make_builder())
    for i, name in enumerate(trajectories):
        manager.open(name, rng=1000 + i)
    out = {
        name: [manager.step(name, cell).to_json() for cell in trajectory]
        for name, trajectory in trajectories.items()
    }
    manager.finish_all()
    return out


def make_store(kind: str, tmp_path):
    if kind == "memory":
        return MemorySessionStore()
    if kind == "dir":
        return DirectorySessionStore(str(tmp_path / "sessions"))
    return SQLiteSessionStore(str(tmp_path / "sessions.db"))


async def start_server(store=None, **overrides) -> ReleaseServer:
    config = ServerConfig(**overrides)
    server = ReleaseServer(SessionManager(make_builder()), store=store, config=config)
    await server.start()
    return server


def strip_elapsed(record: dict) -> dict:
    """Release records minus wall-clock (identical math, not identical time)."""
    return {k: v for k, v in record.items() if k != "elapsed_s"}


class TestEndToEndEquivalence:
    @pytest.mark.parametrize("kind", ["memory", "dir", "sqlite"])
    def test_served_releases_bit_identical_with_eviction(self, kind, tmp_path):
        """8 sessions through a 3-resident server == direct runs.

        ``max_resident=3`` forces constant evict/restore churn through
        the store backend; the worker pool runs steps concurrently.
        """
        trajectories = make_trajectories(8)
        reference = direct_records(trajectories)

        async def run():
            store = make_store(kind, tmp_path)
            server = await start_server(store=store, max_resident=3, workers=4)
            client = await AsyncServiceClient.connect("127.0.0.1", server.port)
            for i, name in enumerate(trajectories):
                assert await client.open(name, seed=1000 + i) == name
            served = {name: [] for name in trajectories}
            for t in range(HORIZON):
                records = await asyncio.gather(
                    *[
                        client.step(name, trajectory[t])
                        for name, trajectory in trajectories.items()
                    ]
                )
                for name, record in zip(trajectories, records):
                    served[name].append(record)
            stats = await client.stats()
            # the eviction LRU tracks residents only: suspended sessions
            # must not be rescanned on every eviction pass
            assert set(server._resident_lru) <= set(server._backend.session_ids())
            assert len(server._open) == len(trajectories)
            await client.close()
            await server.drain()
            store.close()
            return served, stats

        served, stats = asyncio.run(run())
        for name, expected in reference.items():
            actual = [strip_elapsed(record) for record in served[name]]
            assert actual == [strip_elapsed(record) for record in expected]
        # the residency cap was really under pressure
        assert stats["sessions"]["evicted"] > 0
        assert stats["sessions"]["restored"] > 0
        assert stats["sessions"]["resident"] <= 3

    def test_finish_summary_matches_direct_log(self):
        trajectories = make_trajectories(2)

        async def run():
            server = await start_server()
            client = await AsyncServiceClient.connect("127.0.0.1", server.port)
            for i, name in enumerate(trajectories):
                await client.open(name, seed=1000 + i)
            for t in range(HORIZON):
                for name, trajectory in trajectories.items():
                    await client.step(name, trajectory[t])
            summaries = {
                name: await client.finish(name) for name in trajectories
            }
            await client.close()
            await server.drain()
            return summaries

        summaries = asyncio.run(run())
        manager = SessionManager(make_builder())
        for i, (name, trajectory) in enumerate(trajectories.items()):
            manager.open(name, rng=1000 + i)
            for cell in trajectory:
                manager.step(name, cell)
            log = manager.finish(name)
            assert summaries[name]["n_released"] == len(log)
            assert summaries[name]["average_budget"] == pytest.approx(
                log.average_budget
            )
            assert summaries[name]["n_conservative"] == log.n_conservative


class TestAdmissionAndErrors:
    def test_opens_beyond_cap_get_typed_busy_error_not_a_hang(self):
        async def run():
            server = await start_server(max_sessions=2)
            client = await AsyncServiceClient.connect("127.0.0.1", server.port)
            await client.open("a", seed=1)
            await client.open("b", seed=2)
            with pytest.raises(ServiceBusyError, match="cap"):
                await asyncio.wait_for(client.open("c", seed=3), timeout=5.0)
            # existing sessions still serve
            record = await client.step("a", 0)
            assert record["t"] == 1
            # finishing frees a slot
            await client.finish("b")
            assert await client.open("c", seed=3) == "c"
            await client.close()
            await server.drain()

        asyncio.run(run())

    def test_unknown_session_and_double_open_are_session_errors(self):
        async def run():
            server = await start_server()
            client = await AsyncServiceClient.connect("127.0.0.1", server.port)
            with pytest.raises(SessionError, match="no open session"):
                await client.step("ghost", 0)
            await client.open("a", seed=1)
            with pytest.raises(SessionError, match="already open"):
                await client.open("a", seed=1)
            await client.close()
            await server.drain()

        asyncio.run(run())

    def test_step_past_horizon_is_a_session_error(self):
        async def run():
            server = await start_server()
            client = await AsyncServiceClient.connect("127.0.0.1", server.port)
            await client.open("a", seed=1)
            for t in range(HORIZON):
                await client.step("a", 0)
            with pytest.raises(SessionError, match="horizon"):
                await client.step("a", 0)
            await client.close()
            await server.drain()

        asyncio.run(run())

    def test_malformed_frames_get_error_replies_and_connection_survives(self):
        async def run():
            server = await start_server()
            reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
            writer.write(b"not json at all\n")
            writer.write(b'{"v": 99, "id": 5, "op": "stats"}\n')
            writer.write(b'{"v": 1, "id": 6, "op": "stats"}\n')
            await writer.drain()
            replies = [json.loads(await reader.readline()) for _ in range(3)]
            writer.close()
            await writer.wait_closed()
            await server.drain()
            return replies

        replies = asyncio.run(run())
        by_id = {reply.get("id"): reply for reply in replies}
        assert by_id[None]["error"]["code"] == "protocol"
        assert by_id[5]["error"]["code"] == "protocol"
        assert by_id[6]["ok"] is True


class TestDrainAndRestart:
    def test_drain_checkpoints_sessions_and_a_new_engine_continues(self, tmp_path):
        trajectories = make_trajectories(3)
        reference = direct_records(trajectories)
        split = 3  # steps before the drain

        async def serve_first_half(store):
            server = await start_server(store=store, workers=2)
            client = await AsyncServiceClient.connect("127.0.0.1", server.port)
            for i, name in enumerate(trajectories):
                await client.open(name, seed=1000 + i)
            served = {name: [] for name in trajectories}
            for t in range(split):
                for name, trajectory in trajectories.items():
                    served[name].append(await client.step(name, trajectory[t]))
            await client.close()
            summary = await server.drain()
            return served, summary

        store = DirectorySessionStore(str(tmp_path / "drain"))
        served, summary = asyncio.run(serve_first_half(store))
        assert summary["sessions_checkpointed"] == 3
        assert sorted(store.ids()) == sorted(trajectories)

        # a brand-new manager picks the streams up from the store
        manager = SessionManager(make_builder())
        for name, trajectory in trajectories.items():
            manager.resume(store.get(name))
            for t in range(split, HORIZON):
                served[name].append(manager.step(name, trajectory[t]).to_json())
        for name, expected in reference.items():
            assert [strip_elapsed(r) for r in served[name]] == [
                strip_elapsed(r) for r in expected
            ]

    def test_open_while_draining_is_busy(self):
        async def run():
            server = await start_server()
            client = await AsyncServiceClient.connect("127.0.0.1", server.port)
            await client.open("a", seed=1)
            server._draining.set()  # drain decided, sockets still up
            with pytest.raises(ServiceBusyError, match="draining"):
                await client.open("b", seed=2)
            server._draining.clear()
            await client.close()
            await server.drain()

        asyncio.run(run())

    def test_durable_store_sessions_are_adopted_on_restart(self, tmp_path):
        store_path = str(tmp_path / "fleet.db")
        trajectories = make_trajectories(2)

        async def first():
            store = SQLiteSessionStore(store_path)
            server = await start_server(store=store)
            client = await AsyncServiceClient.connect("127.0.0.1", server.port)
            for i, name in enumerate(trajectories):
                await client.open(name, seed=1000 + i)
                await client.step(name, trajectories[name][0])
            await client.close()
            await server.drain()
            store.close()

        async def second():
            store = SQLiteSessionStore(store_path)
            server = await start_server(store=store)
            client = await AsyncServiceClient.connect("127.0.0.1", server.port)
            # no open needed: the store's sessions were adopted
            records = {
                name: await client.step(name, trajectories[name][1])
                for name in trajectories
            }
            with pytest.raises(SessionError, match="already open"):
                await client.open(next(iter(trajectories)), seed=0)
            await client.close()
            await server.drain()
            store.close()
            return records

        asyncio.run(first())
        records = asyncio.run(second())
        reference = direct_records(trajectories)
        for name in trajectories:
            assert strip_elapsed(records[name]) == strip_elapsed(reference[name][1])


class TestCheckpointOpAndStats:
    def test_checkpoint_returns_state_and_persists(self):
        async def run():
            server = await start_server()
            client = await AsyncServiceClient.connect("127.0.0.1", server.port)
            await client.open("a", seed=5)
            await client.step("a", 1)
            reply = await client.checkpoint("a")
            stored = server.store.get("a")
            await client.close()
            await server.drain()
            return reply, stored

        reply, stored = asyncio.run(run())
        assert reply["t"] == 1
        assert reply["state"]["session_id"] == "a"
        assert stored is not None
        assert stored.to_json() == reply["state"]

    def test_stats_shape(self):
        async def run():
            server = await start_server()
            client = await AsyncServiceClient.connect("127.0.0.1", server.port)
            await client.open("a", seed=5)
            await client.step("a", 1)
            stats = await client.stats()
            await client.close()
            await server.drain()
            return stats

        stats = asyncio.run(run())
        assert stats["sessions"]["open"] == 1
        assert stats["sessions"]["resident"] == 1
        assert stats["requests"]["step"] == 1
        assert stats["step_latency"]["count"] == 1
        assert stats["step_latency"]["p99_ms"] > 0
        assert stats["verdict_cache"]["hits"] + stats["verdict_cache"]["misses"] > 0
        assert stats["server"]["draining"] is False


class TestSyncClient:
    def test_sync_client_round_trip_against_threaded_server(self):
        started = threading.Event()
        box: dict = {}

        def run_server():
            async def go():
                server = await start_server()
                box["server"] = server
                box["loop"] = asyncio.get_running_loop()
                started.set()
                await server.wait_drained()

            asyncio.run(go())

        thread = threading.Thread(target=run_server, daemon=True)
        thread.start()
        assert started.wait(timeout=10)
        server = box["server"]

        with ServiceClient("127.0.0.1", server.port) as client:
            assert client.open("sync-u", seed=9) == "sync-u"
            record = client.step("sync-u", 2)
            assert record["t"] == 1
            assert client.peek_budget("sync-u") > 0
            stats = client.stats()
            assert stats["sessions"]["open"] == 1
            summary = client.finish("sync-u")
            assert summary["n_released"] == 1
            with pytest.raises(SessionError):
                client.step("sync-u", 0)

        box["loop"].call_soon_threadsafe(server.request_drain)
        thread.join(timeout=10)
        assert not thread.is_alive()
