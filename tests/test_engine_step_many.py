"""``SessionManager.step_many`` vs per-session stepping: bit-identity.

The batched pipeline (stacked prepare, lockstep calibration rounds, one
batched solver call per round) must produce release streams identical to
``step_all``'s sequential per-session loop under fixed seeds -- same
released cells, budgets, attempt counts and flags.  ``elapsed_s`` is
wall-clock and excluded.
"""

import numpy as np
import pytest

from repro.core.joint import EventQuantifier, prepare_many
from repro.engine import SessionBuilder, SessionManager
from repro.errors import QuantificationError, SessionError
from repro.lppm.planar_laplace import PlanarLaplaceMechanism
from repro.markov.simulate import sample_trajectory


def strip(records):
    return [
        (
            r.t,
            r.true_cell,
            r.released_cell,
            r.budget,
            r.n_attempts,
            r.conservative,
            r.forced_uniform,
        )
        for r in records
    ]


@pytest.fixture(scope="module")
def setting():
    from repro.experiments.scenarios import synthetic_scenario

    scenario = synthetic_scenario(n_rows=6, n_cols=6, sigma=1.0, horizon=8)
    event = scenario.presence_event(0, 9, 3, 5)
    return scenario, event


def make_builder(scenario, event, prior="worst", mechanism="plm", epsilon=0.4):
    builder = (
        SessionBuilder()
        .with_grid(scenario.grid)
        .with_chain(scenario.chain)
        .protecting(event)
        .with_epsilon(epsilon)
        .with_horizon(8)
    )
    if prior == "fixed":
        builder.with_fixed_prior(scenario.initial)
    if mechanism == "delta":
        builder.with_delta_location_set(0.5, 0.2, scenario.initial)
    else:
        builder.with_mechanism(PlanarLaplaceMechanism(scenario.grid, 0.5))
    return builder


def drive(builder, scenario, n_sessions, horizon, batched, cache_size=131_072):
    rng = np.random.default_rng(7)
    trajectories = {
        f"u{i}": sample_trajectory(
            scenario.chain, horizon, initial=scenario.initial, rng=rng
        )
        for i in range(n_sessions)
    }
    manager = SessionManager(builder, cache_size=cache_size)
    for i, name in enumerate(trajectories):
        manager.open(name, rng=100 + i)
    step = manager.step_many if batched else manager.step_all
    for t in range(horizon):
        step({name: traj[t] for name, traj in trajectories.items()})
    return {sid: strip(log.records) for sid, log in manager.finish_all().items()}


class TestStepManyBitIdentity:
    @pytest.mark.parametrize("prior", ["worst", "fixed"])
    @pytest.mark.parametrize("mechanism", ["plm", "delta"])
    def test_matches_step_all(self, setting, prior, mechanism):
        scenario, event = setting
        builder = make_builder(scenario, event, prior, mechanism)
        sequential = drive(builder, scenario, 10, 8, batched=False)
        batched = drive(builder, scenario, 10, 8, batched=True)
        assert batched == sequential

    def test_matches_without_cache(self, setting):
        scenario, event = setting
        builder = make_builder(scenario, event)
        sequential = drive(builder, scenario, 8, 8, batched=False, cache_size=0)
        batched = drive(builder, scenario, 8, 8, batched=True, cache_size=0)
        assert batched == sequential

    def test_multi_event_matches(self, setting):
        scenario, event = setting
        second = scenario.presence_event(20, 29, 6, 7)
        builder = (
            SessionBuilder()
            .with_grid(scenario.grid)
            .with_chain(scenario.chain)
            .protecting(event, second)
            .with_mechanism(PlanarLaplaceMechanism(scenario.grid, 0.5))
            .with_epsilon(0.4)
            .with_horizon(8)
        )
        sequential = drive(builder, scenario, 8, 8, batched=False)
        batched = drive(builder, scenario, 8, 8, batched=True)
        assert batched == sequential

    def test_work_limit_matches(self, setting):
        # The conservative-release setting: a binding work limit keeps
        # verdicts deterministic, so batched stepping stays identical.
        scenario, event = setting
        from repro.core.qp import SolverOptions

        builder = make_builder(scenario, event).with_solver(
            SolverOptions(work_limit=200)
        )
        sequential = drive(builder, scenario, 8, 6, batched=False)
        batched = drive(builder, scenario, 8, 6, batched=True)
        assert batched == sequential
        assert any(
            any(entry[5] for entry in records) for records in sequential.values()
        ), "work limit should force conservative releases somewhere"

    def test_mixed_phase_fleet(self, setting):
        # Sessions at different timestamps batch per phase group and
        # still match their solo counterparts.
        scenario, event = setting
        builder = make_builder(scenario, event)
        rng = np.random.default_rng(3)
        trajectories = {
            f"u{i}": sample_trajectory(
                scenario.chain, 8, initial=scenario.initial, rng=rng
            )
            for i in range(6)
        }
        reference = SessionManager(builder)
        staggered = SessionManager(builder)
        for i, name in enumerate(trajectories):
            reference.open(name, rng=50 + i)
            staggered.open(name, rng=50 + i)
        # Advance half the fleet two steps ahead on both managers.
        ahead = list(trajectories)[:3]
        for t in range(2):
            for name in ahead:
                reference.step(name, trajectories[name][t])
                staggered.step(name, trajectories[name][t])
        # Now step everyone together: two phase groups inside step_many.
        for t in range(2, 6):
            cells = {}
            for name, trajectory in trajectories.items():
                offset = t if name in ahead else t - 2
                cells[name] = trajectory[offset]
            for name, cell in cells.items():
                reference.step(name, cell)
            staggered.step_many(cells)
        logs_ref = {s: strip(reference.finish(s).records) for s in list(reference.session_ids)}
        logs_bat = {s: strip(staggered.finish(s).records) for s in list(staggered.session_ids)}
        assert logs_bat == logs_ref

    def test_single_session_group(self, setting):
        scenario, event = setting
        builder = make_builder(scenario, event)
        sequential = drive(builder, scenario, 1, 8, batched=False)
        batched = drive(builder, scenario, 1, 8, batched=True)
        assert batched == sequential


class TestStepManyValidation:
    def test_bad_cell_rejects_whole_batch_without_stepping(self, setting):
        scenario, event = setting
        manager = SessionManager(make_builder(scenario, event))
        manager.open("a", rng=1)
        manager.open("b", rng=2)
        with pytest.raises(SessionError):
            manager.step_many({"a": 3, "b": 999})
        assert manager.session("a").t == 1
        assert manager.session("b").t == 1

    def test_unknown_session_rejects(self, setting):
        scenario, event = setting
        manager = SessionManager(make_builder(scenario, event))
        manager.open("a", rng=1)
        with pytest.raises(SessionError):
            manager.step_many({"a": 3, "ghost": 4})
        assert manager.session("a").t == 1

    def test_failed_group_rolls_back_every_session(self, setting, monkeypatch):
        scenario, event = setting
        builder = make_builder(scenario, event)
        manager = SessionManager(builder)
        reference = SessionManager(builder)
        for i in range(4):
            manager.open(f"u{i}", rng=10 + i)
            reference.open(f"u{i}", rng=10 + i)
        cells = {f"u{i}": i for i in range(4)}
        manager.step_many(cells)
        reference.step_many(cells)

        from repro.engine import session as session_module

        calls = {"n": 0}
        original = session_module.ReleaseSession._event_conditions

        def boom(self, *args):
            calls["n"] += 1
            if calls["n"] > 3:
                raise RuntimeError("solver died mid-batch")
            return original(self, *args)

        monkeypatch.setattr(session_module.ReleaseSession, "_event_conditions", boom)
        with pytest.raises(RuntimeError):
            manager.step_many(cells)
        monkeypatch.undo()
        # Every session rolled back to t=2; a retry matches the
        # untouched reference manager exactly.
        assert all(manager.session(f"u{i}").t == 2 for i in range(4))
        records = manager.step_many(cells)
        expected = reference.step_many(cells)
        assert {s: strip([r]) for s, r in records.items()} == {
            s: strip([r]) for s, r in expected.items()
        }

    def test_resumed_sessions_batch_like_fresh_ones(self, setting):
        scenario, event = setting
        builder = make_builder(scenario, event)
        rng = np.random.default_rng(11)
        trajectories = {
            f"u{i}": sample_trajectory(
                scenario.chain, 6, initial=scenario.initial, rng=rng
            )
            for i in range(5)
        }
        reference = SessionManager(builder)
        manager = SessionManager(builder)
        for i, name in enumerate(trajectories):
            reference.open(name, rng=30 + i)
            manager.open(name, rng=30 + i)
        for t in range(3):
            cells = {n: tr[t] for n, tr in trajectories.items()}
            reference.step_many(cells)
            manager.step_many(cells)
        # Suspend + resume half the fleet mid-trajectory.
        for name in list(trajectories)[:2]:
            manager.resume(manager.suspend(name))
        for t in range(3, 6):
            cells = {n: tr[t] for n, tr in trajectories.items()}
            reference.step_many(cells)
            manager.step_many(cells)
        logs_ref = {s: strip(log.records) for s, log in reference.finish_all().items()}
        logs_res = {s: strip(log.records) for s, log in manager.finish_all().items()}
        assert logs_res == logs_ref


class TestQuantifierBatchHelpers:
    def test_prepare_many_matches_solo_prepare(self, setting):
        scenario, event = setting
        from repro.core.two_world import TwoWorldModel

        model = TwoWorldModel(scenario.chain, event, 8)
        rng = np.random.default_rng(5)
        m = model.n_states

        solo = [EventQuantifier(model) for _ in range(4)]
        batch = [EventQuantifier(model) for _ in range(4)]
        for t in range(1, 8):
            for quantifier in solo:
                quantifier.prepare(t)
            prepare_many(batch, t)
            probe = rng.uniform(0.0, 0.05, size=m)
            for qs, qb in zip(solo, batch):
                b1, c1 = qs.candidate_bc(t, probe)
                b2, c2 = qb.candidate_bc(t, probe)
                np.testing.assert_array_equal(b1, b2)
                np.testing.assert_array_equal(c1, c2)
                column = rng.uniform(0.0, 0.05, size=m)
                qs.commit(t, column)
                qb.commit(t, column)
                assert qs.log_scale == qb.log_scale

    def test_prepare_many_rejects_out_of_order(self, setting):
        scenario, event = setting
        from repro.core.two_world import TwoWorldModel

        model = TwoWorldModel(scenario.chain, event, 8)
        quantifiers = [EventQuantifier(model) for _ in range(2)]
        with pytest.raises(QuantificationError):
            prepare_many(quantifiers, 2)

    def test_prepare_many_rejects_mixed_models(self, setting):
        scenario, event = setting
        from repro.core.two_world import TwoWorldModel

        model_a = TwoWorldModel(scenario.chain, event, 8)
        model_b = TwoWorldModel(scenario.chain, event, 8)
        with pytest.raises(QuantificationError):
            prepare_many([EventQuantifier(model_a), EventQuantifier(model_b)], 1)

    def test_candidate_bc_many_matches_per_column(self, setting):
        scenario, event = setting
        from repro.core.two_world import TwoWorldModel

        model = TwoWorldModel(scenario.chain, event, 8)
        rng = np.random.default_rng(9)
        m = model.n_states
        quantifier = EventQuantifier(model)
        for t in range(1, 8):
            quantifier.prepare(t)
            columns = rng.uniform(0.0, 0.05, size=(6, m))
            B, C = quantifier.candidate_bc_many(t, columns)
            assert B.shape == C.shape == (6, m)
            for n in range(6):
                b, c = quantifier.candidate_bc(t, columns[n])
                np.testing.assert_allclose(b, B[n], rtol=1e-12, atol=1e-18)
                np.testing.assert_allclose(c, C[n], rtol=1e-12, atol=1e-18)
            quantifier.commit(t, columns[0])

    def test_candidate_bc_many_validates(self, setting):
        scenario, event = setting
        from repro.core.two_world import TwoWorldModel

        model = TwoWorldModel(scenario.chain, event, 8)
        quantifier = EventQuantifier(model)
        quantifier.prepare(1)
        with pytest.raises(QuantificationError):
            quantifier.candidate_bc_many(2, np.zeros((2, model.n_states)))
        with pytest.raises(QuantificationError):
            quantifier.candidate_bc_many(1, np.zeros((2, model.n_states + 1)))
        with pytest.raises(QuantificationError):
            quantifier.candidate_bc_many(
                1, np.full((2, model.n_states), 1.5)
            )
