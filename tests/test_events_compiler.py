"""Unit tests for the event-to-automaton compiler."""

import itertools

import pytest

from repro.errors import EventError
from repro.events.compiler import compile_event
from repro.events.events import PatternEvent, PresenceEvent
from repro.events.expressions import FALSE, TRUE, at, in_region
from repro.geo.regions import Region


def _exhaustive_check(expression, n_cells: int):
    """The automaton must agree with direct evaluation on every window path."""
    compiled = compile_event(expression)
    start, end = compiled.start, compiled.end
    for window in itertools.product(range(n_cells), repeat=compiled.length):
        trajectory = [0] * (start - 1) + list(window)
        assert compiled.run(window) == expression.evaluate(trajectory), (
            expression,
            window,
        )


class TestCompileBasics:
    def test_single_predicate(self):
        compiled = compile_event(at(2, 1))
        assert compiled.start == compiled.end == 2
        assert compiled.length == 1
        assert compiled.run([1]) is True
        assert compiled.run([0]) is False

    def test_rejects_constants(self):
        with pytest.raises(EventError):
            compile_event(TRUE)
        with pytest.raises(EventError):
            compile_event(FALSE)

    def test_run_length_checked(self):
        compiled = compile_event(at(1, 0) | at(2, 0))
        with pytest.raises(EventError):
            compiled.run([0])

    def test_max_states_guard(self):
        # A parity-like expression over many timestamps stays small, but an
        # artificial limit of 1 state must trip.
        expr = at(1, 0) | at(2, 0)
        with pytest.raises(EventError, match="max_states"):
            compile_event(expr, max_states=1)


class TestTwoStateEquivalences:
    def test_presence_compiles_to_two_worlds(self):
        event = PresenceEvent(Region.from_cells(4, [1, 2]), start=2, end=5)
        compiled = compile_event(event.to_expression())
        # Residuals are only "already true" / "not yet": <= 2 live states.
        assert compiled.max_states <= 2

    def test_pattern_compiles_to_two_worlds(self):
        event = PatternEvent(
            [Region.from_cells(4, [0, 1]), Region.from_cells(4, [2, 3])], start=3
        )
        compiled = compile_event(event.to_expression())
        assert compiled.max_states <= 2


class TestExhaustiveAgreement:
    def test_presence(self):
        event = PresenceEvent(Region.from_cells(3, [0, 2]), start=2, end=4)
        _exhaustive_check(event.to_expression(), 3)

    def test_pattern(self):
        event = PatternEvent(
            [Region.from_cells(3, [0, 1]), Region.from_cells(3, [2])], start=1
        )
        _exhaustive_check(event.to_expression(), 3)

    def test_negated_presence(self):
        event = PresenceEvent(Region.from_cells(3, [1]), start=1, end=3)
        _exhaustive_check(~event.to_expression(), 3)

    def test_fig1e_mixed(self):
        expr = (in_region(1, [0, 1]) & in_region(2, [1, 2])) | at(3, 0)
        _exhaustive_check(expr, 3)

    def test_xor_style(self):
        # "visited at t=1 but not at t=2" -- not PRESENCE or PATTERN.
        expr = in_region(1, [0]) & ~in_region(2, [0])
        _exhaustive_check(expr, 3)

    def test_three_way_alternation(self):
        expr = (at(1, 0) & at(3, 2)) | (at(2, 1) & ~at(3, 0))
        _exhaustive_check(expr, 3)

    def test_gap_in_window(self):
        # Predicates at t=1 and t=3 only; t=2 is unconstrained.
        expr = at(1, 0) & at(3, 1)
        _exhaustive_check(expr, 3)


class TestLayerStructure:
    def test_unmentioned_cells_share_default(self):
        expr = at(1, 0) | at(2, 5)
        compiled = compile_event(expr)
        layer = compiled.layers[0]
        assert layer.mentioned_cells == (0,)
        # Cells 1..4 all use the default transition.
        assert layer.next_state(0, 3) == layer.next_state(0, 4) == layer.defaults[0]

    def test_final_layer_boolean(self):
        compiled = compile_event(at(1, 0))
        assert set(compiled.accepting) == {True, False}

    def test_residual_inspection(self):
        expr = at(1, 0) & at(2, 1)
        compiled = compile_event(expr)
        assert compiled.residual_at(0, 0) == expr
