"""Batched solver front ends vs the scalar loop: exact equivalence.

The engine's batched verdict pipeline funnels many sessions' conditions
into :func:`solve_conditions_batch` / :func:`check_conditions_batch`;
its bit-identity guarantee rests on these returning exactly what the
scalar :func:`check_condition` loop returns -- statuses, best values,
best points, evaluation counts and the exhausted flag, including under
work/time limits and for the K=1 degenerate case.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.qp import (
    SolverOptions,
    SolverStatus,
    check_condition,
    check_conditions,
    check_conditions_batch,
    solve_conditions_batch,
)
from repro.core.theorem import RankOneCondition


def _random_conditions(rng, k, n, w_shift=0.0):
    return [
        RankOneCondition(
            u=rng.normal(size=n), v=rng.normal(size=n), w=rng.normal(size=n) + w_shift
        )
        for _ in range(k)
    ]


def assert_result_equal(batch, scalar):
    assert batch.status is scalar.status
    assert batch.best_value == scalar.best_value
    assert batch.n_evaluations == scalar.n_evaluations
    assert batch.exhausted == scalar.exhausted
    np.testing.assert_array_equal(batch.best_point, scalar.best_point)


class TestSolveConditionsBatch:
    @pytest.mark.parametrize("k", [1, 2, 7, 40])
    @pytest.mark.parametrize("w_shift", [0.0, -4.0])
    def test_matches_scalar_loop(self, rng, k, w_shift):
        conditions = _random_conditions(rng, k, n=9, w_shift=w_shift)
        options = SolverOptions()
        batch = solve_conditions_batch(conditions, options)
        assert len(batch) == k
        for result, condition in zip(batch, conditions):
            assert_result_equal(result, check_condition(condition, options))

    def test_empty_batch(self):
        assert solve_conditions_batch([]) == ()

    def test_work_limit_equivalence(self, rng):
        conditions = _random_conditions(rng, 12, n=30, w_shift=-3.0)
        options = SolverOptions(work_limit=95)
        batch = solve_conditions_batch(conditions, options)
        for result, condition in zip(batch, conditions):
            assert_result_equal(result, check_condition(condition, options))
        # The limit actually binds for this size (30 + 435 > 95).
        assert any(not result.exhausted for result in batch)
        assert any(result.status is SolverStatus.UNKNOWN for result in batch)

    def test_non_binding_time_limit_equivalence(self, rng):
        # A huge wall-clock limit never fires but still disables the
        # early exit, so both paths run the deterministic full sweep.
        conditions = _random_conditions(rng, 8, n=12)
        options = SolverOptions(time_limit_s=1e6)
        batch = solve_conditions_batch(conditions, options)
        for result, condition in zip(batch, conditions):
            assert_result_equal(result, check_condition(condition, options))
            assert result.exhausted

    def test_exhaustive_equivalence(self, rng):
        conditions = _random_conditions(rng, 10, n=8)
        options = SolverOptions(exhaustive=True)
        batch = solve_conditions_batch(conditions, options)
        for result, condition in zip(batch, conditions):
            assert_result_equal(result, check_condition(condition, options))

    def test_mixed_sizes_fall_back(self, rng):
        conditions = _random_conditions(rng, 3, n=5) + _random_conditions(
            rng, 3, n=8
        )
        batch = solve_conditions_batch(conditions)
        for result, condition in zip(batch, conditions):
            assert_result_equal(result, check_condition(condition))

    def test_box_constraint_falls_back(self, rng):
        conditions = _random_conditions(rng, 4, n=5)
        options = SolverOptions(constraint="box")
        batch = solve_conditions_batch(conditions, options)
        for result, condition in zip(batch, conditions):
            scalar = check_condition(condition, options)
            assert result.status is scalar.status
            assert result.best_value == scalar.best_value


class TestCheckConditionsBatch:
    @pytest.mark.parametrize("w_shift", [0.0, -4.0])
    def test_matches_sequential_front_end(self, rng, w_shift):
        for _ in range(10):
            conditions = _random_conditions(rng, 6, n=7, w_shift=w_shift)
            combined_seq, results_seq = check_conditions(conditions)
            combined_bat, results_bat = check_conditions_batch(conditions)
            assert combined_bat is combined_seq
            assert len(results_bat) == len(results_seq)
            for batch, scalar in zip(results_bat, results_seq):
                assert_result_equal(batch, scalar)

    def test_truncates_at_first_violation(self):
        violated = RankOneCondition(u=np.ones(3), v=np.ones(3), w=np.zeros(3))
        safe = RankOneCondition(u=np.ones(3), v=-np.ones(3), w=np.zeros(3))
        combined, results = check_conditions_batch([safe, violated, safe, safe])
        assert combined is SolverStatus.VIOLATED
        assert len(results) == 2
        assert results[0].status is SolverStatus.SAFE
        assert results[1].status is SolverStatus.VIOLATED

    def test_violation_beyond_first_chunk(self, rng):
        # 20 safe conditions, then a violated one: the batch must walk
        # two chunks and stop exactly where the loop stops.
        safe = _random_conditions(rng, 20, n=6, w_shift=-5.0)
        violated = RankOneCondition(u=np.ones(6), v=np.ones(6), w=np.zeros(6))
        conditions = safe + [violated] + safe[:3]
        combined_seq, results_seq = check_conditions(conditions)
        combined_bat, results_bat = check_conditions_batch(conditions)
        assert combined_bat is combined_seq is SolverStatus.VIOLATED
        assert len(results_bat) == len(results_seq) == 21

    def test_empty(self):
        combined, results = check_conditions_batch([])
        assert combined is SolverStatus.SAFE
        assert results == ()


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_property_batch_equals_scalar(data):
    n = data.draw(st.integers(2, 7))
    k = data.draw(st.integers(1, 8))
    vals = st.floats(-2.0, 2.0, allow_nan=False)
    conditions = [
        RankOneCondition(
            u=np.asarray(data.draw(st.lists(vals, min_size=n, max_size=n))),
            v=np.asarray(data.draw(st.lists(vals, min_size=n, max_size=n))),
            w=np.asarray(data.draw(st.lists(vals, min_size=n, max_size=n))),
        )
        for _ in range(k)
    ]
    work_limit = data.draw(
        st.one_of(st.none(), st.integers(1, n + n * (n - 1) // 2 + 5))
    )
    options = SolverOptions(work_limit=work_limit)
    batch = solve_conditions_batch(conditions, options)
    for result, condition in zip(batch, conditions):
        assert_result_equal(result, check_condition(condition, options))
