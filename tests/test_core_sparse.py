"""Sparse front propagation: routing policy, equivalence, observability.

The CSR path is a *routing* decision made once per
:class:`TwoWorldModel` at construction (env override > explicit arg >
``ChainSpec``/``TransitionMatrix`` hint > density x size heuristic).
Within one model every propagation takes the same backend, so the
engine's stacked-equals-solo bit-identity contract holds; across
backends dense BLAS and CSR traversal agree to a few ulps, which this
suite pins with a near-zero tolerance on lazy-walk, trace-trained and
explicit-matrix chains, and exactly (bitwise) for the stacked-vs-solo
invariant ``prepare_many`` relies on.
"""

import numpy as np
import pytest

from repro.core.joint import EventQuantifier, prepare_many
from repro.core.two_world import (
    SPARSE_ENV,
    TwoWorldModel,
    _reset_front_stats,
    _scipy_sparse,
    front_stats,
)
from repro.errors import EventError
from repro.events.events import PresenceEvent
from repro.geo.grid import GridMap
from repro.geo.regions import Region
from repro.markov.synthetic import lazy_random_walk_transitions
from repro.markov.training import fit_transition_matrix
from repro.markov.transition import TimeVaryingChain, TransitionMatrix
from repro.scenario.spec import ChainSpec

needs_scipy = pytest.mark.skipif(
    _scipy_sparse is None, reason="scipy unavailable"
)

HORIZON = 6


def _event(m):
    return PresenceEvent(
        Region.from_range(m, 0, max(1, m // 8)), start=2, end=4
    )


def _lazy_walk_chain(side):
    grid = GridMap(side, side, cell_size_km=1.0)
    return lazy_random_walk_transitions(grid, stay_probability=0.3)


def _trace_chain(m, rng):
    # One long self-avoiding-ish walk with zero smoothing: every row has
    # at most a handful of non-zeros, like a real trace-trained model.
    path = list(range(m)) + list(range(m - 1, -1, -1))
    path += [int(c) for c in rng.integers(0, m, size=4 * m)]
    return fit_transition_matrix([path], m, smoothing=0.0)


def _banded_matrix(m, bandwidth=2):
    matrix = np.zeros((m, m))
    for i in range(m):
        lo, hi = max(0, i - bandwidth), min(m, i + bandwidth + 1)
        matrix[i, lo:hi] = 1.0
        matrix[i] /= matrix[i].sum()
    return TransitionMatrix(matrix)


def _chains(rng):
    return {
        "lazy_walk": _lazy_walk_chain(12),
        "trace": _trace_chain(100, rng),
        "explicit_banded": _banded_matrix(150),
    }


@needs_scipy
class TestSparseVsDense:
    def test_propagate_front_matches_dense_to_ulps(self, rng):
        for name, chain in _chains(rng).items():
            m = chain.n_states
            event = _event(m)
            dense = TwoWorldModel(chain, event, HORIZON, sparse=False)
            sparse = TwoWorldModel(chain, event, HORIZON, sparse=True)
            assert not dense.sparse_routing
            assert sparse.sparse_routing
            front = rng.uniform(size=(4, 2 * m))
            for t in range(1, HORIZON):
                out_dense = dense.propagate_front(front, t)
                out_sparse = sparse.propagate_front(front, t)
                np.testing.assert_allclose(
                    out_sparse,
                    out_dense,
                    rtol=1e-12,
                    atol=1e-15,
                    err_msg=f"{name} t={t}",
                )
                # both agree with the reference dense product
                reference = front @ dense.lifted_matrix(t)
                np.testing.assert_allclose(
                    out_sparse, reference, rtol=1e-12, atol=1e-15
                )

    def test_stacked_equals_solo_bitwise_in_sparse_backend(self, rng):
        # prepare_many stacks committed fronts whenever 2 m^2 fits the
        # stack budget; scipy's CSR matmat accumulates each output row
        # independently of the stack width, so stacked rows must equal
        # solo propagation *bitwise* -- the invariant that lets sparse
        # models keep the engine's batched-equals-solo contract.
        chain = _banded_matrix(150)
        model = TwoWorldModel(chain, _event(150), HORIZON, sparse=True)
        front = rng.uniform(size=(6, 300))
        for t in range(1, HORIZON):
            stacked = model.propagate_front(front, t)
            for k in range(front.shape[0]):
                solo = model.propagate_front(front[k : k + 1], t)
                assert stacked[k].tobytes() == solo[0].tobytes(), (
                    f"t={t} row={k}"
                )

    def test_prepare_many_bit_identical_on_sparse_model(self, rng):
        chain = _lazy_walk_chain(12)
        event = _event(144)
        model = TwoWorldModel(chain, event, HORIZON, sparse=True)
        assert model.sparse_routing
        batched = [EventQuantifier(model) for _ in range(5)]
        solo = [EventQuantifier(model) for _ in range(5)]
        columns = rng.uniform(0.05, 1.0, size=(HORIZON, 144))
        for t in range(1, HORIZON + 1):
            prepare_many(batched, t)
            for quantifier in solo:
                quantifier.prepare(t)
            for qb, qs in zip(batched, solo):
                bb, cb = qb.candidate_bc(t, columns[t - 1])
                bs, cs = qs.candidate_bc(t, columns[t - 1])
                assert bb.tobytes() == bs.tobytes()
                assert cb.tobytes() == cs.tobytes()
                qb.commit(t, columns[t - 1])
                qs.commit(t, columns[t - 1])

    def test_candidate_bc_many_matches_solo_to_ulps(self, rng):
        chain = _lazy_walk_chain(12)
        m = 144
        model = TwoWorldModel(chain, _event(m), HORIZON, sparse=True)
        quantifier = EventQuantifier(model)
        quantifier.prepare(1)
        # wide, mostly-zero column set: the adaptive CSR branch engages
        columns = np.zeros((40, m))
        columns[:, :6] = rng.uniform(0.1, 1.0, size=(40, 6))
        _reset_front_stats()
        b_many, c_many = quantifier.candidate_bc_many(1, columns)
        assert front_stats()["sparse_matmuls"] > 0  # CSR branch engaged
        for k in range(columns.shape[0]):
            b, c = quantifier.candidate_bc(1, columns[k])
            np.testing.assert_allclose(b_many[k], b, rtol=1e-12, atol=1e-15)
            np.testing.assert_allclose(c_many[k], c, rtol=1e-12, atol=1e-15)


@needs_scipy
class TestRoutingPolicy:
    def test_auto_heuristic_by_density_and_size(self):
        # 144-cell lazy walk: density ~0.056 <= 1/16 and m >= 128
        big = TwoWorldModel(_lazy_walk_chain(12), _event(144), HORIZON)
        assert big.sparse_routing
        # 16-cell lazy walk: too small regardless of density
        small = TwoWorldModel(_lazy_walk_chain(4), _event(16), HORIZON)
        assert not small.sparse_routing
        # 150-cell banded but hint pins dense
        hinted = TwoWorldModel(
            TransitionMatrix(_banded_matrix(150).matrix, sparse_hint=False),
            _event(150),
            HORIZON,
        )
        assert not hinted.sparse_routing

    def test_hint_promotes_small_chain(self):
        chain = TransitionMatrix(
            _lazy_walk_chain(4).matrix, sparse_hint=True
        )
        model = TwoWorldModel(chain, _event(16), HORIZON)
        assert model.sparse_routing

    def test_env_overrides_everything(self, monkeypatch):
        monkeypatch.setenv(SPARSE_ENV, "never")
        model = TwoWorldModel(_lazy_walk_chain(12), _event(144), HORIZON, sparse=True)
        assert not model.sparse_routing
        monkeypatch.setenv(SPARSE_ENV, "always")
        model = TwoWorldModel(_lazy_walk_chain(4), _event(16), HORIZON, sparse=False)
        assert model.sparse_routing

    def test_invalid_env_value_raises(self, monkeypatch):
        monkeypatch.setenv(SPARSE_ENV, "maybe")
        with pytest.raises(EventError, match="REPRO_SPARSE_FRONT"):
            TwoWorldModel(_lazy_walk_chain(4), _event(16), HORIZON)

    def test_time_varying_chain_hints_combine(self):
        banded = _banded_matrix(150)
        pinned_dense = TransitionMatrix(banded.matrix, sparse_hint=False)
        pinned_sparse = TransitionMatrix(banded.matrix, sparse_hint=True)
        assert TimeVaryingChain([banded, pinned_sparse]).sparse_hint is True
        # one dense-pinned matrix pins the whole chain
        assert (
            TimeVaryingChain([pinned_sparse, pinned_dense]).sparse_hint is False
        )
        assert TimeVaryingChain([banded, banded]).sparse_hint is None


@needs_scipy
class TestFrontStats:
    def test_counters_move(self, rng):
        _reset_front_stats()
        chain = _banded_matrix(150)
        sparse = TwoWorldModel(chain, _event(150), HORIZON, sparse=True)
        dense = TwoWorldModel(chain, _event(150), HORIZON, sparse=False)
        stats = front_stats()
        assert stats["sparse_models"] == 1
        assert stats["dense_models"] == 1
        front = rng.uniform(size=(2, 300))
        sparse.propagate_front(front, 2)
        sparse.propagate_front(front, 2)  # same t: CSR cache hit
        dense.propagate_front(front, 2)
        stats = front_stats()
        assert stats["sparse_matmuls"] > 0
        assert stats["dense_matmuls"] > 0
        assert stats["csr_misses"] > 0
        assert stats["csr_hits"] > 0
        assert stats["scipy_available"] is True
        assert stats["mode"] in ("auto", "always", "never")


class TestChainSpecHint:
    def test_hint_plumbs_through_build(self):
        grid = GridMap(12, 12, cell_size_km=1.0)
        assert ChainSpec.lazy_walk(sparse=True).build(grid).sparse_hint is True
        assert ChainSpec.lazy_walk(sparse=False).build(grid).sparse_hint is False
        assert ChainSpec.lazy_walk().build(grid).sparse_hint is None

    def test_json_roundtrip_and_digest_stability(self):
        plain = ChainSpec.lazy_walk(stay_probability=0.3)
        hinted = ChainSpec.lazy_walk(stay_probability=0.3, sparse=True)
        # unset hint is omitted, so pre-existing spec digests are stable
        assert "sparse" not in plain.to_json()
        assert hinted.to_json()["sparse"] is True
        assert ChainSpec.from_json(plain.to_json()).sparse is None
        assert ChainSpec.from_json(hinted.to_json()).sparse is True

    def test_all_kinds_carry_the_hint(self):
        specs = [
            ChainSpec.gaussian(1.0, sparse=True),
            ChainSpec.lazy_walk(sparse=True),
            ChainSpec.from_traces([[0, 1, 0, 1]], sparse=True),
            ChainSpec.explicit([[0.5, 0.5], [0.5, 0.5]], sparse=True),
        ]
        for spec in specs:
            assert spec.sparse is True
            assert ChainSpec.from_json(spec.to_json()).sparse is True
