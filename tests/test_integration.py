"""Integration tests: end-to-end pipelines across modules."""

import numpy as np
import pytest

from repro import (
    PlanarLaplaceMechanism,
    PresenceEvent,
    PriSTE,
    PriSTEConfig,
    PriSTEDeltaLocationSet,
    Region,
    quantify_fixed_prior,
    sample_trajectory,
    verify_event_privacy,
)
from repro.experiments.scenarios import geolife_scenario, synthetic_scenario
from repro.metrics.utility import aggregate_logs, average_budget_over_time


class TestSyntheticPipeline:
    def test_full_loop_small(self):
        scenario = synthetic_scenario(n_rows=6, n_cols=6, sigma=1.0, horizon=12)
        event = scenario.presence_event(0, 5, 4, 6)
        config = PriSTEConfig(
            epsilon=0.5, prior_mode="fixed", prior=scenario.initial
        )
        priste = PriSTE(
            scenario.chain,
            event,
            PlanarLaplaceMechanism(scenario.grid, 0.5),
            config,
            scenario.horizon,
        )
        truth = scenario.sample_trajectory(rng=0)
        log = priste.run(truth, rng=0)
        assert len(log) == 12
        # The guarantee the fixed mode promises: realized loss <= epsilon.
        mats = np.stack(
            [
                PlanarLaplaceMechanism(scenario.grid, r.budget).emission_matrix()
                for r in log.records
            ]
        )
        result = quantify_fixed_prior(
            scenario.chain, event, mats, log.released_cells,
            scenario.initial, horizon=scenario.horizon,
        )
        assert result.epsilon <= 0.5 + 1e-6

    def test_aggregation_over_runs(self):
        scenario = synthetic_scenario(n_rows=5, n_cols=5, horizon=8)
        event = scenario.presence_event(0, 4, 3, 5)
        config = PriSTEConfig(
            epsilon=1.0, prior_mode="fixed", prior=scenario.initial
        )
        priste = PriSTE(
            scenario.chain, event,
            PlanarLaplaceMechanism(scenario.grid, 0.5), config, scenario.horizon,
        )
        rng = np.random.default_rng(0)
        truths = [scenario.sample_trajectory(rng) for _ in range(3)]
        logs = [priste.run(t, rng) for t in truths]
        means, stds = average_budget_over_time(logs)
        assert means.shape == (8,)
        aggregate = aggregate_logs(logs, scenario.grid, truths)
        assert aggregate.n_runs == 3
        assert aggregate.mean_budget > 0
        assert aggregate.mean_error_km >= 0

    def test_delta_location_set_pipeline(self):
        scenario = synthetic_scenario(n_rows=5, n_cols=5, horizon=8)
        event = scenario.presence_event(0, 4, 3, 5)
        priste = PriSTEDeltaLocationSet(
            scenario.chain, event, scenario.grid,
            alpha=1.0, delta=0.3, initial=scenario.initial,
            config=PriSTEConfig(
                epsilon=1.0, prior_mode="fixed", prior=scenario.initial
            ),
            horizon=scenario.horizon,
        )
        truth = scenario.sample_trajectory(rng=1)
        log = priste.run(truth, rng=1)
        assert len(log) == 8


class TestGeolifePipeline:
    def test_scenario_builds_and_runs(self):
        scenario = geolife_scenario(
            n_users=2, n_days=1, cell_size_km=2.0, horizon=10, rng=0
        )
        assert scenario.chain.n_states == scenario.grid.n_cells
        assert scenario.source == "geolife-simulator"
        truth = scenario.sample_trajectory(rng=0)
        assert len(truth) == 10
        event = scenario.presence_event(0, min(5, scenario.grid.n_cells - 2), 3, 5)
        config = PriSTEConfig(
            epsilon=1.0, prior_mode="fixed", prior=scenario.initial
        )
        priste = PriSTE(
            scenario.chain, event,
            PlanarLaplaceMechanism(scenario.grid, 1.0), config, scenario.horizon,
        )
        log = priste.run(truth, rng=0)
        assert len(log) == 10

    def test_trajectories_reused_from_traces(self):
        scenario = geolife_scenario(
            n_users=2, n_days=2, cell_size_km=2.0, horizon=5, rng=1
        )
        truth = scenario.sample_trajectory(rng=0)
        # The sampled trajectory must be a contiguous segment of a trace.
        found = any(
            tuple(truth) == trace[k : k + 5]
            for trace in scenario.trajectories
            for k in range(max(0, len(trace) - 4))
        )
        assert found


class TestWorstCaseSoundness:
    def test_worst_case_bounds_every_prior(self):
        """A worst-case-mode release is safe under adversarial priors."""
        scenario = synthetic_scenario(n_rows=4, n_cols=4, horizon=6)
        event = scenario.presence_event(0, 3, 3, 4)
        epsilon = 0.8
        priste = PriSTE(
            scenario.chain, event,
            PlanarLaplaceMechanism(scenario.grid, 1.0),
            PriSTEConfig(epsilon=epsilon), scenario.horizon,
        )
        truth = scenario.sample_trajectory(rng=2)
        log = priste.run(truth, rng=2)
        mats = np.stack(
            [
                PlanarLaplaceMechanism(scenario.grid, r.budget).emission_matrix()
                for r in log.records
            ]
        )
        check = verify_event_privacy(
            scenario.chain, event, mats, log.released_cells, epsilon,
            horizon=scenario.horizon,
        )
        assert check.holds
        # Spot-check sharp priors concentrated on two random cells.
        rng = np.random.default_rng(3)
        a = None
        for _ in range(10):
            pi = np.zeros(scenario.grid.n_cells)
            i, j = rng.choice(scenario.grid.n_cells, size=2, replace=False)
            lam = rng.uniform(0.05, 0.95)
            pi[i], pi[j] = lam, 1 - lam
            try:
                realized = quantify_fixed_prior(
                    scenario.chain, event, mats, log.released_cells, pi,
                    horizon=scenario.horizon,
                )
            except Exception:
                continue
            assert realized.epsilon <= epsilon + 1e-6
