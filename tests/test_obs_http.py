"""The metrics/probe HTTP listener: paths, status codes, failure modes."""

import asyncio
import urllib.error
import urllib.request

import pytest

from repro.obs.http import ObsHttpServer


def _fetch(port, path, method="GET"):
    """Blocking HTTP fetch -> (status, body, content_type).

    Always called via ``run_in_executor``: a blocking urlopen on the
    event-loop thread would deadlock against the asyncio listener.
    """
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", method=method
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return (
                response.status,
                response.read().decode(),
                response.headers.get("Content-Type"),
            )
    except urllib.error.HTTPError as error:
        return error.code, error.read().decode(), error.headers.get("Content-Type")


async def _get(server, path, method="GET"):
    loop = asyncio.get_running_loop()
    return await loop.run_in_executor(None, _fetch, server.port, path, method)


def run(coro):
    return asyncio.run(coro)


class TestProbes:
    def test_healthz_and_default_readyz(self):
        async def main():
            server = ObsHttpServer("127.0.0.1", 0)
            await server.start()
            assert server.port != 0  # ephemeral bind reported
            try:
                status, body, _ = await _get(server, "/healthz")
                assert (status, body) == (200, "ok\n")
                status, body, _ = await _get(server, "/readyz")
                assert (status, body) == (200, "ok\n")
            finally:
                await server.stop()

        run(main())

    def test_readyz_follows_callback(self):
        async def main():
            state = {"ready": True}
            server = ObsHttpServer(
                "127.0.0.1",
                0,
                readiness=lambda: (state["ready"], "2 workers"),
            )
            await server.start()
            try:
                status, body, _ = await _get(server, "/readyz")
                assert (status, body) == (200, "2 workers\n")
                state["ready"] = False
                status, _, _ = await _get(server, "/readyz")
                assert status == 503
            finally:
                await server.stop()

        run(main())

    def test_readyz_callback_exception_reads_unready(self):
        async def main():
            def broken():
                raise RuntimeError("probe broke")

            server = ObsHttpServer("127.0.0.1", 0, readiness=broken)
            await server.start()
            try:
                status, body, _ = await _get(server, "/readyz")
                assert status == 503
                assert "probe broke" in body
            finally:
                await server.stop()

        run(main())


class TestMetrics:
    def test_sync_render(self):
        async def main():
            server = ObsHttpServer(
                "127.0.0.1", 0, render_metrics=lambda: "repro_up 1\n"
            )
            await server.start()
            try:
                status, body, content_type = await _get(server, "/metrics")
                assert (status, body) == (200, "repro_up 1\n")
                assert content_type == "text/plain; version=0.0.4; charset=utf-8"
            finally:
                await server.stop()

        run(main())

    def test_async_render(self):
        async def main():
            async def render():
                await asyncio.sleep(0)
                return "repro_up 1\n"

            server = ObsHttpServer("127.0.0.1", 0, render_metrics=render)
            await server.start()
            try:
                status, body, _ = await _get(server, "/metrics")
                assert (status, body) == (200, "repro_up 1\n")
            finally:
                await server.stop()

        run(main())

    def test_render_failure_is_a_500_not_a_crash(self):
        async def main():
            calls = {"n": 0}

            def render():
                calls["n"] += 1
                if calls["n"] == 1:
                    raise ValueError("scrape exploded")
                return "repro_up 1\n"

            server = ObsHttpServer("127.0.0.1", 0, render_metrics=render)
            await server.start()
            try:
                status, body, _ = await _get(server, "/metrics")
                assert status == 500
                assert "scrape exploded" in body
                status, _, _ = await _get(server, "/metrics")
                assert status == 200  # listener survived the failed scrape
            finally:
                await server.stop()

        run(main())

    def test_metrics_404_when_no_renderer(self):
        async def main():
            server = ObsHttpServer("127.0.0.1", 0)
            await server.start()
            try:
                status, _, _ = await _get(server, "/metrics")
                assert status == 404
            finally:
                await server.stop()

        run(main())


class TestProtocolEdges:
    @pytest.mark.parametrize("path", ["/", "/nope", "/metrics/extra"])
    def test_unknown_paths_404(self, path):
        async def main():
            server = ObsHttpServer("127.0.0.1", 0)
            await server.start()
            try:
                status, _, _ = await _get(server, path)
                assert status == 404
            finally:
                await server.stop()

        run(main())

    def test_non_get_405(self):
        async def main():
            server = ObsHttpServer("127.0.0.1", 0)
            await server.start()
            try:
                status, _, _ = await _get(server, "/healthz", method="POST")
                assert status == 405
            finally:
                await server.stop()

        run(main())

    def test_head_allowed(self):
        async def main():
            server = ObsHttpServer("127.0.0.1", 0)
            await server.start()
            try:
                status, _, _ = await _get(server, "/healthz", method="HEAD")
                assert status == 200
            finally:
                await server.stop()

        run(main())

    def test_query_strings_ignored(self):
        async def main():
            server = ObsHttpServer("127.0.0.1", 0)
            await server.start()
            try:
                status, _, _ = await _get(server, "/healthz?verbose=1")
                assert status == 200
            finally:
                await server.stop()

        run(main())

    def test_stop_is_idempotent(self):
        async def main():
            server = ObsHttpServer("127.0.0.1", 0)
            await server.start()
            await server.stop()
            await server.stop()

        run(main())
