"""The self-healing control plane: retry policy, recovery, membership.

The load-bearing guarantees of :mod:`repro.cluster.control`:

* a worker kill with a durable store and auto-checkpointing costs zero
  sessions: every stream recovers onto the ring successor, replays past
  its checkpoint, and stays bit-identical to an unfaulted run (the
  acceptance drill, 100+ sessions);
* without a checkpoint the loss is *typed* -- ``WorkerDownError`` with
  the recorded reason, counted as ``sessions_lost`` -- never silent;
* runtime ``join`` migrates exactly the ring arcs the newcomer owns
  (untouched sessions never move) and ``leave`` drains a live member;
* recovery converges under cascades (the restore target dying
  mid-recovery just walks to the next successor), across scenario-bound
  sessions and previous-schema checkpoints, and through a scripted
  mid-batch kill (``FaultPlan``) that never acknowledges the killing
  step.
"""

import json
import threading
import time

import pytest

from repro.cluster.backend import ClusterBackend
from repro.cluster.chaos import FaultPlan
from repro.cluster.control import ClusterSupervisor, RetryPolicy, StepJournal
from repro.cluster.worker import spawn_local_worker
from repro.engine.session import SessionState
from repro.errors import ServiceError, WorkerDownError
from repro.scenario import (
    CalibrationSpec,
    ChainSpec,
    EventSpec,
    GridSpec,
    MechanismSpec,
    ScenarioSpec,
)
from repro.service.metrics import ServiceMetrics
from repro.service.store import DirectorySessionStore, MemorySessionStore

from test_cluster_backend import spawn_fleet, stop_fleet
from test_engine_shard import (
    HORIZON,
    N_CELLS,
    make_manager,
    make_trajectories,
    reference_records,
    strip,
)

#: A fast, deterministic policy for tests: real backoff shape, tiny
#: delays.
FAST_RETRY = RetryPolicy(
    attempts=5, base_delay_s=0.01, max_delay_s=0.05, deadline_s=30.0, seed=1
)


def make_supervisor(addresses, store, **kwargs):
    kwargs.setdefault("retry", FAST_RETRY)
    backend = ClusterBackend(addresses, heartbeat_interval_s=0)
    return ClusterSupervisor(backend, store, **kwargs)


def kill_worker(procs, addresses, victim):
    for process, address in zip(procs, addresses):
        if address == victim:
            process.kill()
            process.join(10)


class TestRetryPolicy:
    def test_first_attempt_is_immediate(self):
        assert next(RetryPolicy().schedule()) == 0.0

    def test_seeded_schedules_are_deterministic(self):
        policy = RetryPolicy(attempts=6, seed=17)
        assert list(policy.schedule()) == list(policy.schedule())
        other = RetryPolicy(attempts=6, seed=18)
        assert list(policy.schedule()) != list(other.schedule())

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            attempts=8, base_delay_s=0.1, max_delay_s=0.4, jitter=0.0, seed=0
        )
        delays = list(policy.schedule())
        assert delays[0] == 0.0
        assert delays[1:4] == [0.1, 0.2, 0.4]
        assert all(d == 0.4 for d in delays[4:])  # capped
        assert len(delays) == 8

    def test_deadline_cuts_the_schedule(self):
        policy = RetryPolicy(
            attempts=50, base_delay_s=10.0, deadline_s=0.05, jitter=0.0
        )
        delays = list(policy.schedule())
        assert delays == [0.0]  # the first backoff would blow the budget

    def test_at_least_one_attempt(self):
        assert list(RetryPolicy(attempts=0).schedule()) == [0.0]


class TestStepJournal:
    def test_reset_pins_a_new_base(self):
        journal = StepJournal()
        assert (journal.base_t, journal.cells) == (0, [])
        journal.cells.extend([3, 1, 4])
        journal.reset(5)
        assert (journal.base_t, journal.cells) == (5, [])


class TestRecoveryDrill:
    def test_kill_worker_drill_zero_loss_bit_identical(self, tmp_path):
        """The acceptance drill: 100+ sessions over two workers with a
        durable store and auto-checkpoints, one worker killed
        mid-stream.  Every stream recovers, replays, and finishes
        bit-identical to the unfaulted reference; zero sessions lost."""
        procs, addresses = spawn_fleet(2)
        store = DirectorySessionStore(str(tmp_path / "ckpt"))
        metrics = ServiceMetrics()
        try:
            trajectories = make_trajectories(100, seed=47)
            reference = reference_records(trajectories)
            with make_supervisor(addresses, store, checkpoint_every=2) as sup:
                sup.bind_metrics(metrics)
                for i, name in enumerate(trajectories):
                    assert sup.open(name, seed=1000 + i) == HORIZON
                got = {name: [] for name in trajectories}
                half = HORIZON // 2
                # mixed load: batched waves for the first half...
                for t in range(half):
                    records, errors = sup.step_batch(
                        {n: trajectories[n][t] for n in trajectories}
                    )
                    assert errors == {}
                    for name, record in records.items():
                        got[name].append(strip(record))

                victim = sup.backend.shard_stats()[0]["worker"]
                on_victim = [
                    n for n in trajectories
                    if sup.backend.assignment_of(n) == victim
                ]
                assert on_victim  # the drill must actually cover losses
                kill_worker(procs, addresses, victim)

                # ...solo steps for one post-kill round (each victim
                # session trips WorkerDownError and heals in-line), then
                # batched waves to the horizon.
                for name in trajectories:
                    got[name].append(
                        strip(sup.step(name, trajectories[name][half]))
                    )
                for t in range(half + 1, HORIZON):
                    records, errors = sup.step_batch(
                        {n: trajectories[n][t] for n in trajectories}
                    )
                    assert errors == {}, f"dropped streams: {sorted(errors)}"
                    for name, record in records.items():
                        got[name].append(strip(record))

                assert got == reference  # bit-identical across the kill
                assert sup.lost_session_ids() == []
                stats = sup.recovery_stats()
                assert stats["sessions_recovered"] == len(on_victim)
                assert stats["sessions_lost"] == 0
                assert stats["workers_recovered"] >= 1
                # checkpoint_every=2 bounds replay to < 2 steps/session
                assert stats["steps_replayed"] < 2 * len(on_victim)
                recovered = metrics.snapshot()["recoveries"]
                assert recovered["worker"] >= 1
                assert recovered["session"] == len(on_victim)
                for name in trajectories:
                    assert len(sup.finish(name)) == HORIZON
                assert store.ids() == []  # finish drops auto-checkpoints
        finally:
            stop_fleet(procs)

    def test_no_checkpoint_degrades_to_typed_loss(self):
        procs, addresses = spawn_fleet(2)
        metrics = ServiceMetrics()
        try:
            with make_supervisor(
                addresses, MemorySessionStore(), checkpoint_every=0
            ) as sup:
                sup.bind_metrics(metrics)
                for i in range(12):
                    sup.open(f"u{i}", seed=i)
                    sup.step(f"u{i}", 3)
                victim = sup.backend.shard_stats()[0]["worker"]
                doomed = sorted(
                    f"u{i}" for i in range(12)
                    if sup.backend.assignment_of(f"u{i}") == victim
                )
                survivors = [
                    f"u{i}" for i in range(12) if f"u{i}" not in doomed
                ]
                assert doomed and survivors
                kill_worker(procs, addresses, victim)

                with pytest.raises(WorkerDownError, match="no durable"):
                    sup.step(doomed[0], 2)
                assert sup.lost_session_ids() == doomed
                for name in survivors:
                    sup.step(name, 2)  # the rest keep serving
                stats = sup.recovery_stats()
                assert stats["sessions_lost"] == len(doomed)
                assert stats["sessions_recovered"] == 0
                failures = metrics.snapshot()["failures"]
                assert failures["sessions_lost"] == len(doomed)
                # the loss stays typed on every later touch too
                with pytest.raises(WorkerDownError):
                    sup.peek_budget(doomed[0])
        finally:
            stop_fleet(procs)

    def test_explicit_checkpoints_bound_the_damage(self, tmp_path):
        """checkpoint_every=0 still recovers sessions with an explicit
        `checkpoint` snapshot: replay resumes from the snapshot."""
        procs, addresses = spawn_fleet(2)
        store = DirectorySessionStore(str(tmp_path / "ckpt"))
        try:
            trajectories = make_trajectories(8, seed=53)
            reference = reference_records(trajectories)
            with make_supervisor(addresses, store, checkpoint_every=0) as sup:
                for i, name in enumerate(trajectories):
                    sup.open(name, seed=1000 + i)
                got = {n: [] for n in trajectories}
                for t in range(3):
                    for name in trajectories:
                        got[name].append(
                            strip(sup.step(name, trajectories[name][t]))
                        )
                for name in trajectories:
                    sup.checkpoint(name)
                victim = sup.backend.shard_stats()[0]["worker"]
                kill_worker(procs, addresses, victim)
                for t in range(3, HORIZON):
                    for name in trajectories:
                        got[name].append(
                            strip(sup.step(name, trajectories[name][t]))
                        )
                assert got == reference
                assert sup.lost_session_ids() == []
        finally:
            stop_fleet(procs)


class TestMembership:
    def test_join_migrates_only_moved_arcs(self):
        procs, addresses = spawn_fleet(2)
        newcomer_proc, newcomer = spawn_local_worker(make_manager)
        try:
            trajectories = make_trajectories(32, seed=61)
            reference = reference_records(trajectories)
            with make_supervisor(addresses, MemorySessionStore()) as sup:
                for i, name in enumerate(trajectories):
                    sup.open(name, seed=1000 + i)
                before = {
                    n: sup.backend.assignment_of(n) for n in trajectories
                }
                got = {
                    n: [strip(sup.step(n, trajectories[n][0]))]
                    for n in trajectories
                }
                summary = sup.join_worker(newcomer)
                assert summary["joined"] is True
                assert len(summary["workers"]) == 3
                after = {
                    n: sup.backend.assignment_of(n) for n in trajectories
                }
                moved = [n for n in trajectories if after[n] != before[n]]
                # the ring invariant: a session either stayed put or
                # moved to the newcomer -- never between old members
                for name in moved:
                    assert after[name] == summary["worker"]
                assert summary["migrated"] == len(moved)
                assert 0 < len(moved) < len(trajectories)
                status = sup.cluster_status()
                assert len(status["workers"]) == 3
                assert status["recovery"]["sessions_lost"] == 0
                # streams cross the join bit-identically
                for name in trajectories:
                    for cell in trajectories[name][1:]:
                        got[name].append(strip(sup.step(name, cell)))
                assert got == reference
                for name in trajectories:
                    sup.finish(name)
        finally:
            stop_fleet(procs)
            stop_fleet([newcomer_proc])

    def test_join_rejects_a_live_duplicate(self):
        procs, addresses = spawn_fleet(2)
        try:
            with make_supervisor(addresses, MemorySessionStore()) as sup:
                with pytest.raises(ServiceError, match="already"):
                    sup.join_worker(addresses[0])
        finally:
            stop_fleet(procs)

    def test_leave_drains_a_live_member(self):
        procs, addresses = spawn_fleet(2)
        try:
            trajectories = make_trajectories(10, seed=67)
            reference = reference_records(trajectories)
            with make_supervisor(addresses, MemorySessionStore()) as sup:
                for i, name in enumerate(trajectories):
                    sup.open(name, seed=1000 + i)
                got = {
                    n: [strip(sup.step(n, trajectories[n][0]))]
                    for n in trajectories
                }
                summary = sup.leave_worker(addresses[0])
                assert summary["workers"] == [addresses[1]]
                assert summary["lost"] == []
                assert sup.backend.worker_addresses() == [addresses[1]]
                for name in trajectories:
                    assert sup.backend.assignment_of(name) == addresses[1]
                    for cell in trajectories[name][1:]:
                        got[name].append(strip(sup.step(name, cell)))
                assert got == reference
                with pytest.raises(ServiceError, match="the last live worker"):
                    sup.leave_worker(addresses[1])
        finally:
            stop_fleet(procs)

    def test_leave_of_a_dead_worker_rescues_checkpointed_sessions(
        self, tmp_path
    ):
        procs, addresses = spawn_fleet(2)
        store = DirectorySessionStore(str(tmp_path / "ckpt"))
        try:
            with make_supervisor(addresses, store, checkpoint_every=1) as sup:
                for i in range(12):
                    sup.open(f"u{i}", seed=i)
                    sup.step(f"u{i}", 3)
                victim = sup.backend.shard_stats()[0]["worker"]
                on_victim = [
                    f"u{i}" for i in range(12)
                    if sup.backend.assignment_of(f"u{i}") == victim
                ]
                kill_worker(procs, addresses, victim)
                # the supervisor heals before membership forgets the
                # dead worker's assignments: nothing is stranded
                summary = sup.leave_worker(victim)
                assert summary["lost"] == []
                assert len(summary["workers"]) == 1
                assert sup.lost_session_ids() == []
                assert (
                    sup.recovery_stats()["sessions_recovered"]
                    == len(on_victim)
                )
                for i in range(12):
                    sup.step(f"u{i}", 2)
        finally:
            stop_fleet(procs)


def scenario_spec() -> ScenarioSpec:
    """A spec matching the workers' 4x4/horizon-6 default config shape
    but bound explicitly (sessions carry it in their checkpoints)."""
    return ScenarioSpec(
        grid=GridSpec(rows=4, cols=4),
        chain=ChainSpec.gaussian(sigma=1.0),
        events=(EventSpec.presence_range(0, 5, start=2, end=4),),
        mechanism=MechanismSpec("planar_laplace", {"alpha": 0.5}),
        epsilon=0.5,
        horizon=HORIZON,
        calibration=CalibrationSpec("halving"),
        prior_mode="fixed",
    )


class TestHeterogeneousRecovery:
    def test_scenario_bound_sessions_recover(self, tmp_path):
        """A mixed fleet -- default-config and ScenarioSpec-bound
        sessions -- recovers both kinds: checkpoints embed the spec, so
        the surviving worker re-materializes the right models."""
        procs, addresses = spawn_fleet(2)
        store = DirectorySessionStore(str(tmp_path / "ckpt"))
        spec = scenario_spec()
        try:
            trajectories = make_trajectories(12, seed=71)
            names = list(trajectories)
            bound = {n for i, n in enumerate(names) if i % 2}
            manager = make_manager()
            for i, name in enumerate(names):
                manager.open(
                    name,
                    rng=1000 + i,
                    scenario=spec if name in bound else None,
                )
            reference = {
                name: [strip(manager.step(name, c)) for c in trajectory]
                for name, trajectory in trajectories.items()
            }
            with make_supervisor(addresses, store, checkpoint_every=2) as sup:
                for i, name in enumerate(names):
                    sup.open(
                        name, seed=1000 + i,
                        scenario=spec if name in bound else None,
                    )
                got = {n: [] for n in names}
                for t in range(3):
                    for name in names:
                        got[name].append(
                            strip(sup.step(name, trajectories[name][t]))
                        )
                victim = sup.backend.shard_stats()[0]["worker"]
                kill_worker(procs, addresses, victim)
                for t in range(3, HORIZON):
                    for name in names:
                        got[name].append(
                            strip(sup.step(name, trajectories[name][t]))
                        )
                assert got == reference
                assert sup.lost_session_ids() == []
        finally:
            stop_fleet(procs)

    def test_previous_schema_checkpoint_recovers(self, tmp_path):
        """A v1 checkpoint (a PR-1 build's format) sitting in the store
        still recovers a killed session."""
        procs, addresses = spawn_fleet(2)
        store = DirectorySessionStore(str(tmp_path / "ckpt"))
        try:
            trajectories = make_trajectories(6, seed=73)
            reference = reference_records(trajectories)
            with make_supervisor(addresses, store, checkpoint_every=0) as sup:
                for i, name in enumerate(trajectories):
                    sup.open(name, seed=1000 + i)
                got = {n: [] for n in trajectories}
                for t in range(3):
                    for name in trajectories:
                        got[name].append(
                            strip(sup.step(name, trajectories[name][t]))
                        )
                for name in trajectories:
                    state = sup.checkpoint(name)
                    data = state.to_json()
                    assert data["schema"] == 2
                    del data["schema"]
                    del data["scenario"]
                    store.put(
                        SessionState.from_json(json.loads(json.dumps(data)))
                    )
                victim = sup.backend.shard_stats()[0]["worker"]
                kill_worker(procs, addresses, victim)
                for t in range(3, HORIZON):
                    for name in trajectories:
                        got[name].append(
                            strip(sup.step(name, trajectories[name][t]))
                        )
                assert got == reference
                assert sup.lost_session_ids() == []
        finally:
            stop_fleet(procs)


class TestScriptedKill:
    def test_kill_mid_batch_is_healed(self, tmp_path):
        """A FaultPlan kill fires *inside* an in-flight batched wave:
        the killing steps are never acknowledged, the supervisor
        recovers the worker's sessions and the retried wave regenerates
        the identical records."""
        armed_proc, armed = spawn_local_worker(
            make_manager, fault_plan=FaultPlan(kill_at_step=5)
        )
        calm_proc, calm = spawn_local_worker(make_manager)
        store = DirectorySessionStore(str(tmp_path / "ckpt"))
        try:
            trajectories = make_trajectories(16, seed=79)
            reference = reference_records(trajectories)
            with make_supervisor([armed, calm], store, checkpoint_every=1) as sup:
                for i, name in enumerate(trajectories):
                    sup.open(name, seed=1000 + i)
                on_armed = [
                    n for n in trajectories
                    if sup.backend.assignment_of(n) == armed
                ]
                assert on_armed  # the scripted kill must have victims
                got = {n: [] for n in trajectories}
                for t in range(HORIZON):
                    records, errors = sup.step_batch(
                        {n: trajectories[n][t] for n in trajectories}
                    )
                    assert errors == {}, f"dropped streams: {sorted(errors)}"
                    for name, record in records.items():
                        got[name].append(strip(record))
                assert got == reference
                assert sup.lost_session_ids() == []
                stats = sup.recovery_stats()
                assert stats["sessions_recovered"] == len(on_armed)
                assert armed_proc.exitcode == 137  # died exactly as scripted
        finally:
            stop_fleet([armed_proc, calm_proc])


class TestCachedStatus:
    def test_status_serves_cached_view_mid_recovery(self):
        """While a recovery pass holds the exclusive lock the status op
        answers from the last-good snapshot (flagged ``cached``) instead
        of blocking behind membership surgery -- the regression where a
        mid-recovery ``cluster_status`` hung the operator's probe."""
        procs, addresses = spawn_fleet(2)
        try:
            with make_supervisor(addresses, MemorySessionStore()) as sup:
                live = sup.cluster_status()
                assert live["cached"] is False
                assert len(live["workers"]) == 2
                assert sup._recovery_lock.acquire(blocking=False)
                try:
                    held = sup.cluster_status()
                finally:
                    sup._recovery_lock.release()
                assert held["cached"] is True
                assert [w["worker"] for w in held["workers"]] == [
                    w["worker"] for w in live["workers"]
                ]
                # recovery counters and standby rows stay live even on
                # the cached path (they are the supervisor's own state)
                assert held["recovery"]["sessions_lost"] == 0
                assert held["standbys"] == []
                # lock released: straight back to the live path
                assert sup.cluster_status()["cached"] is False
        finally:
            stop_fleet(procs)

    def test_first_status_under_the_lock_goes_live(self):
        """No snapshot cached yet: the live path is the only option, so
        it is used even mid-recovery rather than erroring."""
        procs, addresses = spawn_fleet(2)
        try:
            with make_supervisor(addresses, MemorySessionStore()) as sup:
                assert sup._recovery_lock.acquire(blocking=False)
                try:
                    status = sup.cluster_status()
                finally:
                    sup._recovery_lock.release()
                assert status["cached"] is False
                assert len(status["workers"]) == 2
        finally:
            stop_fleet(procs)


class TestStandbys:
    def test_dead_member_is_replaced_by_a_warm_standby(self, tmp_path):
        """The membership actuator closes PR 8's operator loop: a kill
        heals sessions onto the survivor *and* auto-joins the pooled
        standby in the corpse's place -- bit-identical streams, zero
        loss, one counted promotion."""
        procs, addresses = spawn_fleet(2)
        standby_proc, standby = spawn_local_worker(make_manager)
        store = DirectorySessionStore(str(tmp_path / "ckpt"))
        metrics = ServiceMetrics()
        try:
            trajectories = make_trajectories(24, seed=83)
            reference = reference_records(trajectories)
            with make_supervisor(
                addresses,
                store,
                checkpoint_every=1,
                standbys=[standby],
                standby_check_interval_s=0.05,
            ) as sup:
                sup.bind_metrics(metrics)
                deadline = time.time() + 10.0
                while time.time() < deadline:
                    rows = sup.standby_status()
                    if rows and rows[0]["healthy"]:
                        break
                    time.sleep(0.02)
                assert sup.standby_status() == [
                    {"worker": standby, "healthy": True}
                ]
                for i, name in enumerate(trajectories):
                    sup.open(name, seed=1000 + i)
                got = {n: [] for n in trajectories}
                for t in range(3):
                    for name in trajectories:
                        got[name].append(
                            strip(sup.step(name, trajectories[name][t]))
                        )
                victim = sup.backend.shard_stats()[0]["worker"]
                survivor = next(a for a in addresses if a != victim)
                kill_worker(procs, addresses, victim)
                for t in range(3, HORIZON):
                    for name in trajectories:
                        got[name].append(
                            strip(sup.step(name, trajectories[name][t]))
                        )
                assert got == reference
                assert sup.lost_session_ids() == []
                # the fleet healed to full strength without an operator
                assert sorted(sup.backend.worker_addresses()) == sorted(
                    [survivor, standby]
                )
                assert sup.standby_status() == []  # pool spent
                stats = sup.recovery_stats()
                assert stats["standby_promotions"] == 1
                assert stats["standbys_pooled"] == 0
                assert stats["sessions_lost"] == 0
                assert metrics.snapshot()["standby_promotions"] == 1
        finally:
            stop_fleet(procs)
            stop_fleet([standby_proc])

    def test_without_a_standby_the_corpse_stays_visible(self):
        """An empty pool must not silently shrink the fleet: the dead
        member remains in membership, reporting the hole."""
        procs, addresses = spawn_fleet(2)
        metrics = ServiceMetrics()
        try:
            with make_supervisor(
                addresses, MemorySessionStore(), checkpoint_every=1
            ) as sup:
                sup.bind_metrics(metrics)
                victim = addresses[0]
                kill_worker(procs, addresses, victim)
                sup._run_recoveries(wait=True)
                assert victim in sup.backend.worker_addresses()
                assert sup.recovery_stats()["standby_promotions"] == 0
                assert metrics.snapshot()["standby_promotions"] == 0
        finally:
            stop_fleet(procs)

    def test_standby_promotion_under_load(self, tmp_path):
        """The chaos drill: a worker dies while concurrent drivers are
        actively stepping a durable fleet.  Every stream heals inline
        and finishes bit-identical, zero sessions are lost, and the
        warm standby is holding the corpse's arcs by the time the load
        completes."""
        procs, addresses = spawn_fleet(2)
        standby_proc, standby = spawn_local_worker(make_manager)
        store = DirectorySessionStore(str(tmp_path / "ckpt"))
        try:
            trajectories = make_trajectories(32, seed=89)
            reference = reference_records(trajectories)
            names = list(trajectories)
            with make_supervisor(
                addresses, store, checkpoint_every=1, standbys=[standby]
            ) as sup:
                for i, name in enumerate(names):
                    sup.open(name, seed=1000 + i)
                got = {n: [] for n in names}
                errors: list[Exception] = []
                started = threading.Barrier(5)

                def drive(shard: list[str]) -> None:
                    try:
                        started.wait(timeout=10)
                        for t in range(HORIZON):
                            for name in shard:
                                got[name].append(
                                    strip(sup.step(name, trajectories[name][t]))
                                )
                                time.sleep(0.002)  # paced, not lockstep
                    except Exception as error:  # pragma: no cover
                        errors.append(error)

                threads = [
                    threading.Thread(target=drive, args=(names[k::4],))
                    for k in range(4)
                ]
                for thread in threads:
                    thread.start()
                started.wait(timeout=10)
                time.sleep(0.05)  # the fleet is mid-flight
                victim = sup.backend.shard_stats()[0]["worker"]
                survivor = next(a for a in addresses if a != victim)
                kill_worker(procs, addresses, victim)
                for thread in threads:
                    thread.join(timeout=120)
                assert not any(thread.is_alive() for thread in threads)
                assert errors == []
                assert got == reference  # bit-identical across the kill
                assert sup.lost_session_ids() == []
                stats = sup.recovery_stats()
                assert stats["sessions_lost"] == 0
                assert stats["standby_promotions"] == 1
                assert sorted(sup.backend.worker_addresses()) == sorted(
                    [survivor, standby]
                )
                # the promoted standby is really serving: it owns ring
                # arcs and answers steps (the fleet is at full strength)
                status = sup.cluster_status()
                standby_row = next(
                    row for row in status["workers"]
                    if row["worker"] == standby
                )
                assert standby_row["alive"] is True
                assert standby_row["ring_points"] > 0
        finally:
            stop_fleet(procs)
            stop_fleet([standby_proc])


class _CascadeBackend:
    """A scripted backend: one dead worker, and the first restore
    attempt dies too (the cascade recovery must walk past)."""

    def __init__(self, failures_before_accept: int = 1):
        self.assignments = {"s1": "tcp://w1:1"}
        self.failures_left = failures_before_accept
        self.resumed: list[str] = []
        self.stepped: list[tuple[str, int]] = []
        self.forgotten: list[str] = []

    def down_assignments(self):
        return {
            "tcp://w1:1": [s for s, a in self.assignments.items() if a]
        } if self.assignments.get("s1") else {}

    def assignment_of(self, sid):
        return self.assignments.get(sid)

    def forget_session(self, sid):
        self.forgotten.append(sid)
        self.assignments[sid] = None

    def resume(self, state):
        if self.failures_left > 0:
            self.failures_left -= 1
            raise WorkerDownError("restore target died mid-resume")
        self.resumed.append(state.session_id)
        return state.session_id

    def step(self, sid, cell):
        self.stepped.append((sid, cell))

    def lost_session_ids(self):
        return []


class TestCascade:
    def test_restore_retries_past_a_dying_target(self):
        manager = make_manager()
        manager.open("s1", rng=7)
        manager.step("s1", 3)
        state = manager.suspend("s1")
        store = MemorySessionStore()
        store.put(state)
        backend = _CascadeBackend(failures_before_accept=1)
        sup = ClusterSupervisor(backend, store, retry=FAST_RETRY)
        # the journal says two steps were acked past the checkpoint
        sup._journal["s1"] = StepJournal(state.committed_t)
        sup._journal["s1"].cells.extend([2, 5])
        sup._run_recoveries(wait=True)
        assert backend.resumed == ["s1"]
        assert backend.stepped == [("s1", 2), ("s1", 5)]
        # forgotten twice: once on drain, once after the failed resume
        assert backend.forgotten.count("s1") == 2
        stats = sup.recovery_stats()
        assert stats["sessions_recovered"] == 1
        assert stats["steps_replayed"] == 2

    def test_total_fleet_death_keeps_the_checkpoint(self):
        manager = make_manager()
        manager.open("s1", rng=7)
        state = manager.suspend("s1")
        store = MemorySessionStore()
        store.put(state)
        backend = _CascadeBackend(failures_before_accept=10_000)
        sup = ClusterSupervisor(
            backend,
            store,
            retry=RetryPolicy(
                attempts=2, base_delay_s=0.001, deadline_s=1.0, seed=3
            ),
        )
        sup._run_recoveries(wait=True)
        assert sup.lost_session_ids() == ["s1"]
        assert sup.recovery_stats()["sessions_lost"] == 1
        # the checkpoint survives for restore-on-touch once capacity
        # returns
        assert store.get("s1") is not None
