"""Unit tests for delta-location set privacy."""

import numpy as np
import pytest

from repro.errors import MechanismError
from repro.lppm.delta_location_set import (
    DeltaLocationSetMechanism,
    delta_location_set,
    posterior_update,
    restrict_emission_matrix,
)
from repro.lppm.planar_laplace import planar_laplace_emission_matrix


class TestDeltaLocationSet:
    def test_keeps_high_probability_cells(self):
        prior = np.array([0.5, 0.3, 0.15, 0.05])
        assert delta_location_set(prior, 0.2) == (0, 1)
        assert delta_location_set(prior, 0.05) == (0, 1, 2)

    def test_delta_zero_keeps_support(self):
        prior = np.array([0.5, 0.5, 0.0])
        assert delta_location_set(prior, 0.0) == (0, 1)

    def test_delta_large_keeps_minimum(self):
        prior = np.array([0.9, 0.1])
        assert delta_location_set(prior, 0.95) == (0,)

    def test_minimality(self):
        prior = np.array([0.4, 0.3, 0.2, 0.1])
        cells = delta_location_set(prior, 0.25)
        # {0.4, 0.3} covers 0.7 < 0.75; need three cells.
        assert cells == (0, 1, 2)

    def test_deterministic_tie_break(self):
        prior = np.full(4, 0.25)
        assert delta_location_set(prior, 0.5) == (0, 1)


class TestRestriction:
    def test_outputs_restricted(self, grid5):
        base = planar_laplace_emission_matrix(grid5, 1.0)
        members = (0, 1, 2)
        restricted = restrict_emission_matrix(base, members, grid5)
        assert np.allclose(restricted[:, 3:], 0.0)
        assert np.allclose(restricted.sum(axis=1), 1.0)

    def test_surrogate_for_outside_rows(self, grid5):
        base = planar_laplace_emission_matrix(grid5, 1.0)
        members = (0,)
        restricted = restrict_emission_matrix(base, members, grid5)
        # Every row collapses to point mass on cell 0.
        assert np.allclose(restricted[:, 0], 1.0)

    def test_preserves_relative_probabilities_inside(self, grid5):
        base = planar_laplace_emission_matrix(grid5, 1.0)
        members = (0, 1, 5)
        restricted = restrict_emission_matrix(base, members, grid5)
        expected = base[0, 1] / base[0, 5]
        assert restricted[0, 1] / restricted[0, 5] == pytest.approx(expected)


class TestPosteriorUpdate:
    def test_eq21_manual(self):
        prior = np.array([0.5, 0.5])
        emission = np.array([[0.9, 0.1], [0.4, 0.6]])
        post = posterior_update(prior, emission, 0)
        expected = np.array([0.45, 0.2])
        expected /= expected.sum()
        assert np.allclose(post, expected)

    def test_impossible_output_rejected(self):
        prior = np.array([1.0, 0.0])
        emission = np.array([[1.0, 0.0], [0.0, 1.0]])
        with pytest.raises(MechanismError):
            posterior_update(prior, emission, 1)

    def test_posterior_sharpens_with_certainty(self):
        prior = np.array([0.5, 0.5])
        emission = np.array([[1.0, 0.0], [0.0, 1.0]])
        post = posterior_update(prior, emission, 0)
        assert post.tolist() == [1.0, 0.0]


class TestMechanism:
    def test_member_cells_from_prior(self, grid5):
        prior = np.zeros(grid5.n_cells)
        prior[3] = 0.6
        prior[7] = 0.4
        # 1 - delta = 0.55: cell 3 alone covers it.
        mech = DeltaLocationSetMechanism(grid5, 1.0, prior, delta=0.45)
        assert mech.member_cells == (3,)
        # 1 - delta = 0.7: both cells are needed.
        both = DeltaLocationSetMechanism(grid5, 1.0, prior, delta=0.3)
        assert both.member_cells == (3, 7)

    def test_emission_supported_on_set(self, grid5, uniform5):
        mech = DeltaLocationSetMechanism(grid5, 1.0, uniform5, delta=0.5)
        matrix = mech.emission_matrix()
        outside = [c for c in range(grid5.n_cells) if c not in mech.member_cells]
        assert np.allclose(matrix[:, outside], 0.0)

    def test_with_budget_keeps_set(self, grid5, uniform5):
        mech = DeltaLocationSetMechanism(grid5, 1.0, uniform5, delta=0.5)
        half = mech.with_budget(0.5)
        assert half.member_cells == mech.member_cells
        assert half.budget == 0.5

    def test_with_prior_rebuilds_set(self, grid5):
        prior_a = np.zeros(grid5.n_cells)
        prior_a[0] = 1.0
        mech = DeltaLocationSetMechanism(grid5, 1.0, prior_a, delta=0.1)
        prior_b = np.zeros(grid5.n_cells)
        prior_b[24] = 1.0
        assert mech.with_prior(prior_b).member_cells == (24,)

    def test_posterior_consistent_with_eq21(self, grid5, uniform5):
        mech = DeltaLocationSetMechanism(grid5, 1.0, uniform5, delta=0.3)
        output = mech.member_cells[0]
        post = mech.posterior(output)
        manual = posterior_update(uniform5, mech.emission_matrix(), output)
        assert np.allclose(post, manual)

    def test_larger_delta_smaller_set(self, grid5):
        rng = np.random.default_rng(0)
        prior = rng.uniform(size=grid5.n_cells)
        prior /= prior.sum()
        small = DeltaLocationSetMechanism(grid5, 1.0, prior, delta=0.1)
        large = DeltaLocationSetMechanism(grid5, 1.0, prior, delta=0.6)
        assert len(large.member_cells) <= len(small.member_cells)
