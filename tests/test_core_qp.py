"""Unit tests for the box/simplex QP solver (the CPLEX substitute)."""

import itertools

import numpy as np
import pytest

from repro.core.qp import (
    SolverOptions,
    SolverStatus,
    check_condition,
    check_conditions,
    maximize_rank_one_box,
    maximize_rank_one_simplex,
)
from repro.core.theorem import RankOneCondition
from repro.errors import SolverError


def _brute_force_simplex_max(cond: RankOneCondition, grid: int = 60) -> float:
    """Dense grid search over the simplex (3-dim instances only)."""
    best = -np.inf
    for i, j in itertools.product(range(grid + 1), repeat=2):
        if i + j > grid:
            continue
        pi = np.array([i, j, grid - i - j], dtype=np.float64) / grid
        best = max(best, cond.value(pi))
    return best


def _random_condition(rng, n=3) -> RankOneCondition:
    return RankOneCondition(
        u=rng.normal(size=n), v=rng.normal(size=n), w=rng.normal(size=n)
    )


class TestExactSimplexSolver:
    def test_matches_grid_search(self, rng):
        for _ in range(30):
            cond = _random_condition(rng)
            # exhaustive=True asks for the true global maximum (the
            # default stops at the first violation certificate).
            result = maximize_rank_one_simplex(cond, SolverOptions(exhaustive=True))
            grid_max = _brute_force_simplex_max(cond)
            # The solver is exact; the grid is a lower bound with small
            # discretization error.
            assert result.best_value >= grid_max - 1e-9
            assert result.best_value <= grid_max + 0.05

    def test_default_early_exit_agrees_with_exhaustive_status(self, rng):
        # The non-exhaustive default may stop at a smaller violation
        # witness, but the status trichotomy must never differ.
        for _ in range(30):
            cond = _random_condition(rng, n=5)
            quick = maximize_rank_one_simplex(cond, SolverOptions())
            full = maximize_rank_one_simplex(cond, SolverOptions(exhaustive=True))
            assert quick.status is full.status
            assert quick.best_value <= full.best_value + 1e-12
            if quick.status is SolverStatus.VIOLATED:
                assert cond.value(quick.best_point) > 0

    def test_best_point_achieves_value(self, rng):
        for _ in range(20):
            cond = _random_condition(rng, n=5)
            result = maximize_rank_one_simplex(cond, SolverOptions())
            assert result.best_point is not None
            assert result.best_point.sum() == pytest.approx(1.0)
            assert np.all(result.best_point >= 0)
            assert cond.value(result.best_point) == pytest.approx(
                result.best_value, abs=1e-12
            )

    def test_support_at_most_two(self, rng):
        for _ in range(20):
            cond = _random_condition(rng, n=6)
            result = maximize_rank_one_simplex(cond, SolverOptions())
            assert np.count_nonzero(result.best_point) <= 2

    def test_safe_instance(self):
        # f(pi) = -(pi.1)^2 + 0 is always -1 on the simplex.
        cond = RankOneCondition(u=np.ones(3), v=-np.ones(3), w=np.zeros(3))
        result = maximize_rank_one_simplex(cond, SolverOptions())
        assert result.status is SolverStatus.SAFE
        assert result.best_value == pytest.approx(-1.0)

    def test_violated_instance(self):
        cond = RankOneCondition(u=np.ones(2), v=np.ones(2), w=np.zeros(2))
        result = maximize_rank_one_simplex(cond, SolverOptions())
        assert result.status is SolverStatus.VIOLATED
        assert result.best_value == pytest.approx(1.0)

    def test_interior_edge_maximum_found(self):
        # u = (1, -1), v = (1, -1), w = 0: on the edge pi = (lam, 1-lam),
        # f = (2 lam - 1)^2 -> max 1 at vertices; flip v's sign to make the
        # interior lam = 1/2 the *minimum* and vertices the max.  Use a
        # concave case instead: u = (1, -1), v = (-1, 1): f = -(2lam-1)^2,
        # maximum 0 at lam = 1/2 -- an interior edge point.
        cond = RankOneCondition(
            u=np.array([1.0, -1.0]), v=np.array([-1.0, 1.0]), w=np.zeros(2)
        )
        result = maximize_rank_one_simplex(cond, SolverOptions(tolerance=1e-12))
        assert result.best_value == pytest.approx(0.0, abs=1e-12)
        assert np.allclose(result.best_point, [0.5, 0.5])

    def test_work_limit_gives_unknown(self):
        rng = np.random.default_rng(5)
        # A large safe instance that cannot be certified in one row block.
        n = 50
        cond = RankOneCondition(
            u=rng.uniform(size=n), v=-rng.uniform(0.5, 1.0, size=n), w=np.zeros(n)
        )
        options = SolverOptions(work_limit=n)  # one row only
        result = maximize_rank_one_simplex(cond, options)
        assert result.status is SolverStatus.UNKNOWN
        assert not result.exhausted

    def test_work_limit_still_reports_violation(self):
        cond = RankOneCondition(u=np.ones(50), v=np.ones(50), w=np.zeros(50))
        options = SolverOptions(work_limit=50)
        result = maximize_rank_one_simplex(cond, options)
        assert result.status is SolverStatus.VIOLATED


class TestBoxSolver:
    def test_interval_bound_certifies_negative(self):
        cond = RankOneCondition(
            u=np.array([0.5, 0.5]), v=np.array([-1.0, -1.0]), w=np.array([-0.1, -0.1])
        )
        result = maximize_rank_one_box(cond, SolverOptions(constraint="box"))
        assert result.status is SolverStatus.SAFE

    def test_finds_violation(self):
        cond = RankOneCondition(u=np.ones(3), v=np.ones(3), w=np.zeros(3))
        result = maximize_rank_one_box(cond, SolverOptions(constraint="box"))
        assert result.status is SolverStatus.VIOLATED
        # Box maximum is (3)(3) = 9 at pi = 1.
        assert result.best_value >= 8.9

    def test_unknown_when_ambiguous(self):
        # Slightly positive interval bound but actually safe: stays UNKNOWN.
        cond = RankOneCondition(
            u=np.array([1.0, -1.0]),
            v=np.array([1.0, -1.0]),
            w=np.array([-2.0, -2.0]),
        )
        result = maximize_rank_one_box(cond, SolverOptions(constraint="box"))
        assert result.status in (SolverStatus.UNKNOWN, SolverStatus.SAFE)


class TestFrontEnd:
    def test_dispatch_simplex(self):
        cond = RankOneCondition(u=np.ones(2), v=-np.ones(2), w=np.zeros(2))
        assert check_condition(cond).status is SolverStatus.SAFE

    def test_dispatch_box(self):
        cond = RankOneCondition(u=np.ones(2), v=-np.ones(2), w=-np.ones(2))
        result = check_condition(cond, SolverOptions(constraint="box"))
        assert result.status is SolverStatus.SAFE

    def test_check_conditions_combined(self):
        safe = RankOneCondition(u=np.ones(2), v=-np.ones(2), w=np.zeros(2))
        violated = RankOneCondition(u=np.ones(2), v=np.ones(2), w=np.zeros(2))
        status, results = check_conditions([safe, violated])
        assert status is SolverStatus.VIOLATED
        assert len(results) == 2

    def test_check_conditions_short_circuits(self):
        violated = RankOneCondition(u=np.ones(2), v=np.ones(2), w=np.zeros(2))
        safe = RankOneCondition(u=np.ones(2), v=-np.ones(2), w=np.zeros(2))
        status, results = check_conditions([violated, safe])
        assert status is SolverStatus.VIOLATED
        assert len(results) == 1  # stopped at the first violation

    def test_options_validation(self):
        with pytest.raises(SolverError):
            SolverOptions(constraint="polytope")
        with pytest.raises(SolverError):
            SolverOptions(work_limit=0)
        with pytest.raises(SolverError):
            SolverOptions(time_limit_s=0.0)
