"""`repro serve` as a real OS process: announce, serve, drain on SIGINT."""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.errors import SessionError
from repro.service import ServiceClient

SRC = os.path.join(os.path.dirname(__file__), os.pardir, "src")


@pytest.fixture
def serve_process(tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--port", "0", "--rows", "4", "--cols", "4", "--horizon", "6",
            "--event-window", "2", "4",
            "--store", "dir", "--store-path", str(tmp_path / "sessions"),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    try:
        line = proc.stdout.readline()
        banner = json.loads(line)
        assert banner["op"] == "serving"
        yield proc, banner
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate(timeout=10)


class TestServeProcess:
    def test_serve_announce_drive_and_drain(self, serve_process, tmp_path):
        proc, banner = serve_process
        with ServiceClient("127.0.0.1", banner["port"]) as client:
            for i in range(5):
                client.open(f"u{i}", seed=i)
            for t in range(3):
                for i in range(5):
                    record = client.step(f"u{i}", (t + i) % 16)
                    assert record["t"] == t + 1
            client.finish("u4")
            with pytest.raises(SessionError):
                client.step("u4", 0)
            stats = client.stats()
            assert stats["sessions"]["open"] == 4
            assert stats["step_latency"]["count"] == 15

        proc.send_signal(signal.SIGINT)
        out, err = proc.communicate(timeout=30)
        assert proc.returncode == 0, err
        drained = json.loads(out.strip().splitlines()[-1])
        assert drained["op"] == "drained"
        assert drained["sessions_checkpointed"] == 4
        # the open sessions really were parked on disk
        assert len(list((tmp_path / "sessions").glob("*.json"))) == 4

    def test_second_instance_resumes_from_store(self, serve_process, tmp_path):
        proc, banner = serve_process
        with ServiceClient("127.0.0.1", banner["port"]) as client:
            client.open("carry", seed=1)
            first = client.step("carry", 3)
        proc.send_signal(signal.SIGINT)
        proc.communicate(timeout=30)
        assert proc.returncode == 0

        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        proc2 = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--port", "0", "--rows", "4", "--cols", "4", "--horizon", "6",
                "--event-window", "2", "4",
                "--store", "dir", "--store-path", str(tmp_path / "sessions"),
            ],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env,
        )
        try:
            banner2 = json.loads(proc2.stdout.readline())
            with ServiceClient("127.0.0.1", banner2["port"]) as client:
                record = client.step("carry", 5)  # adopted, no open needed
                assert record["t"] == first["t"] + 1
        finally:
            proc2.send_signal(signal.SIGINT)
            proc2.communicate(timeout=30)
            assert proc2.returncode == 0


class TestShardedServeProcess:
    def test_sharded_serve_per_shard_stats_and_drain(self, tmp_path):
        """``--shards 2``: real worker processes, per-shard counters."""
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--port", "0", "--rows", "4", "--cols", "4", "--horizon", "6",
                "--event-window", "2", "4", "--shards", "2",
                "--store", "dir", "--store-path", str(tmp_path / "sessions"),
            ],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env,
        )
        try:
            banner = json.loads(proc.stdout.readline())
            assert banner["op"] == "serving"
            assert banner["shards"] == 2
            with ServiceClient("127.0.0.1", banner["port"]) as client:
                for i in range(6):
                    client.open(f"u{i}", seed=i)
                for t in range(3):
                    for i in range(6):
                        record = client.step(f"u{i}", (t + i) % 16)
                        assert record["t"] == t + 1
                stats = client.stats()
                assert stats["server"]["shards"] == 2
                shards = stats["shards"]
                assert shards["count"] == 2 and shards["alive"] == 2
                assert (
                    sum(r["metrics"]["requests"]["step"] for r in shards["per_shard"])
                    == 18
                )
                assert shards["aggregate"]["step_latency"]["count"] == 18
        finally:
            proc.send_signal(signal.SIGINT)
            out, err = proc.communicate(timeout=30)
            assert proc.returncode == 0, err
        drained = json.loads(out.strip().splitlines()[-1])
        assert drained["op"] == "drained"
        assert drained["sessions_checkpointed"] == 6
        assert drained["sessions_lost"] == 0
        # all six sessions really were parked on disk, through the shards
        assert len(list((tmp_path / "sessions").glob("*.json"))) == 6
