"""SessionManager fan-out, the shared verdict cache and suspend/resume."""

import pytest

from repro.engine import SessionBuilder, SessionManager, stack_release_logs
from repro.errors import QuantificationError, SessionError
from repro.events.events import PresenceEvent
from repro.geo.regions import Region
from repro.lppm.planar_laplace import PlanarLaplaceMechanism
from repro.markov.simulate import sample_trajectory


@pytest.fixture
def setting(grid5, chain5, uniform5):
    event = PresenceEvent(Region.from_range(grid5.n_cells, 0, 4), start=3, end=5)
    return grid5, chain5, uniform5, event


def builder_for(grid, chain, pi, event, record=False):
    builder = (
        SessionBuilder()
        .with_grid(grid)
        .with_chain(chain)
        .protecting(event)
        .with_mechanism(PlanarLaplaceMechanism(grid, 0.8))
        .with_epsilon(0.4)
        .with_fixed_prior(pi)
        .with_horizon(8)
    )
    return builder.recording_emissions() if record else builder


def strip(records):
    return [
        (r.t, r.true_cell, r.released_cell, r.budget, r.n_attempts,
         r.conservative, r.forced_uniform)
        for r in records
    ]


class TestFanOut:
    def test_manager_matches_standalone_sessions(self, setting):
        grid, chain, pi, event = setting
        builder = builder_for(grid, chain, pi, event)
        trajectories = {
            f"u{i}": sample_trajectory(chain, 8, initial=pi, rng=100 + i)
            for i in range(4)
        }

        manager = SessionManager(builder)
        for name in trajectories:
            manager.open(name, rng=hash(name) % 1000)
        for t in range(8):
            manager.step_all({n: traj[t] for n, traj in trajectories.items()})
        managed = manager.finish_all()

        for name, trajectory in trajectories.items():
            solo = builder.build(rng=hash(name) % 1000)
            for cell in trajectory:
                solo.step(cell)
            assert strip(solo.finish().records) == strip(managed[name].records)

    def test_cache_accumulates_hits_without_changing_releases(self, setting):
        grid, chain, pi, event = setting
        builder = builder_for(grid, chain, pi, event)
        trajectory = sample_trajectory(chain, 8, initial=pi, rng=0)

        cached = SessionManager(builder, cache_size=4096)
        uncached = SessionManager(builder, cache_size=0)
        assert uncached.cache_stats() is None
        # Identical sessions stepped in lockstep: every verdict after the
        # first session's is a cache hit.
        for manager in (cached, uncached):
            for i in range(3):
                manager.open(f"u{i}", rng=7)
        for t in range(8):
            step = {f"u{i}": trajectory[t] for i in range(3)}
            cached.step_all(step)
            uncached.step_all(step)
        stats = cached.cache_stats()
        assert stats.hits > 0
        assert stats.hit_rate > 0.5
        cached_logs = cached.finish_all()
        uncached_logs = uncached.finish_all()
        for name in cached_logs:
            assert strip(cached_logs[name].records) == strip(
                uncached_logs[name].records
            )

    def test_released_columns_tracks_latest(self, setting):
        grid, chain, pi, event = setting
        manager = SessionManager(builder_for(grid, chain, pi, event))
        manager.open("a", rng=1)
        manager.open("b", rng=2)
        latest = manager.released_columns()
        assert latest.tolist() == [-1, -1]
        record = manager.step("a", 3)
        latest = manager.released_columns(["a", "b"])
        assert latest.tolist() == [record.released_cell, -1]

    def test_stacked_logs(self, setting):
        grid, chain, pi, event = setting
        manager = SessionManager(builder_for(grid, chain, pi, event, record=True))
        for i in range(3):
            manager.open(f"u{i}", rng=i)
        for t in range(4):
            manager.step_all({f"u{i}": (t + i) % grid.n_cells for i in range(3)})
        logs = manager.finish_all()
        stacked = stack_release_logs(list(logs.values()))
        assert stacked.shape == (3, 4, grid.n_cells, grid.n_cells)


class TestLifecycle:
    def test_open_requires_unique_id(self, setting):
        grid, chain, pi, event = setting
        manager = SessionManager(builder_for(grid, chain, pi, event))
        manager.open("dup", rng=0)
        with pytest.raises(SessionError):
            manager.open("dup", rng=1)

    def test_unknown_session_raises(self, setting):
        grid, chain, pi, event = setting
        manager = SessionManager(builder_for(grid, chain, pi, event))
        for operation in (
            lambda: manager.step("ghost", 0),
            lambda: manager.finish("ghost"),
            lambda: manager.peek_budget("ghost"),
            lambda: manager.checkpoint("ghost"),
        ):
            with pytest.raises(SessionError):
                operation()

    def test_finish_evicts(self, setting):
        grid, chain, pi, event = setting
        manager = SessionManager(builder_for(grid, chain, pi, event))
        manager.open("one", rng=0)
        manager.step("one", 0)
        log = manager.finish("one")
        assert len(log) == 1
        assert "one" not in manager
        assert len(manager) == 0

    def test_suspend_resume_round_trip(self, setting):
        grid, chain, pi, event = setting
        builder = builder_for(grid, chain, pi, event)
        trajectory = sample_trajectory(chain, 8, initial=pi, rng=5)

        reference = builder.build(rng=5)
        for cell in trajectory:
            reference.step(cell)

        manager = SessionManager(builder)
        manager.open("user", rng=5)
        for cell in trajectory[:4]:
            manager.step("user", cell)
        state = manager.suspend("user")
        assert "user" not in manager
        manager.resume(state)
        for cell in trajectory[4:]:
            manager.step("user", cell)
        assert strip(manager.finish("user").records) == strip(
            reference.finish().records
        )

    def test_resume_conflicts_with_open_session(self, setting):
        grid, chain, pi, event = setting
        manager = SessionManager(builder_for(grid, chain, pi, event))
        manager.open("user", rng=0)
        state = manager.checkpoint("user")
        with pytest.raises(SessionError):
            manager.resume(state)

    def test_step_errors_propagate(self, setting):
        grid, chain, pi, event = setting
        manager = SessionManager(builder_for(grid, chain, pi, event))
        manager.open("user", rng=0)
        with pytest.raises(QuantificationError):
            manager.step("user", grid.n_cells + 5)

    def test_step_all_is_atomic_on_bad_batch(self, setting):
        grid, chain, pi, event = setting
        manager = SessionManager(builder_for(grid, chain, pi, event))
        manager.open("good", rng=0)
        # Unknown id after a valid entry: nobody steps, safe to retry.
        with pytest.raises(SessionError):
            manager.step_all({"good": 1, "ghost": 2})
        assert manager.session("good").t == 1
        # Out-of-range cell after a valid entry: same guarantee.
        manager.open("good2", rng=1)
        with pytest.raises(SessionError):
            manager.step_all({"good": 1, "good2": grid.n_cells})
        assert manager.session("good").t == 1
        assert manager.session("good2").t == 1
        record = manager.step_all({"good": 1})["good"]
        assert record.t == 1
