"""Unit tests for the exponential and cloaking mechanisms."""

import numpy as np
import pytest

from repro.errors import MechanismError
from repro.geo.grid import GridMap
from repro.lppm.cloaking import CloakingMechanism, grid_blocks
from repro.lppm.exponential import ExponentialMechanism
from repro.lppm.planar_laplace import planar_laplace_emission_matrix


class TestExponentialMechanism:
    def test_rows_stochastic(self, grid5):
        mech = ExponentialMechanism.from_distance(grid5, budget=1.0)
        matrix = mech.emission_matrix()
        assert np.allclose(matrix.sum(axis=1), 1.0)

    def test_distance_score_matches_plm_at_half_budget(self, grid5):
        """exp(budget * (-d) / 2) == exp(-(budget/2) d): PLM with alpha = b/2."""
        mech = ExponentialMechanism.from_distance(grid5, budget=1.0)
        plm = planar_laplace_emission_matrix(grid5, 0.5)
        assert np.allclose(mech.emission_matrix(), plm)

    def test_zero_budget_uniform(self, grid5):
        mech = ExponentialMechanism.from_distance(grid5, budget=0.0)
        assert np.allclose(mech.emission_matrix(), 1.0 / grid5.n_cells)

    def test_custom_score_prefers_high_quality(self):
        scores = np.array([[1.0, 0.0], [0.0, 1.0]])
        mech = ExponentialMechanism(scores, budget=4.0)
        matrix = mech.emission_matrix()
        assert matrix[0, 0] > matrix[0, 1]
        assert matrix[1, 1] > matrix[1, 0]

    def test_rectangular_outputs(self):
        scores = np.zeros((3, 5))
        mech = ExponentialMechanism(scores, budget=1.0)
        assert mech.n_states == 3
        assert mech.n_outputs == 5

    def test_sensitivity(self):
        scores = np.array([[0.0, 2.0], [1.0, 0.0]])
        assert ExponentialMechanism(scores, 1.0).sensitivity == pytest.approx(2.0)

    def test_with_budget(self, grid5):
        mech = ExponentialMechanism.from_distance(grid5, budget=2.0)
        assert mech.halved().budget == pytest.approx(1.0)

    def test_rejects_negative_budget(self, grid5):
        with pytest.raises(MechanismError):
            ExponentialMechanism.from_distance(grid5, budget=-1.0)


class TestGridBlocks:
    def test_partition_exact(self):
        grid = GridMap(4, 4)
        blocks = grid_blocks(grid, 2, 2)
        assert len(blocks) == 4
        flat = sorted(cell for block in blocks for cell in block)
        assert flat == list(range(16))

    def test_uneven_blocks_absorb_remainder(self):
        grid = GridMap(5, 5)
        blocks = grid_blocks(grid, 2, 2)
        flat = sorted(cell for block in blocks for cell in block)
        assert flat == list(range(25))
        assert max(len(block) for block in blocks) >= 4


class TestCloaking:
    def test_deterministic_emission(self):
        grid = GridMap(4, 4)
        mech = CloakingMechanism(grid, grid_blocks(grid, 2, 2))
        matrix = mech.emission_matrix()
        assert matrix.shape == (16, 4)
        assert np.allclose(matrix.sum(axis=1), 1.0)
        assert set(np.unique(matrix)) == {0.0, 1.0}

    def test_block_of(self):
        grid = GridMap(4, 4)
        mech = CloakingMechanism(grid, grid_blocks(grid, 2, 2))
        assert mech.block_of(0) == mech.block_of(1) == mech.block_of(4)
        assert mech.block_of(0) != mech.block_of(2)

    def test_k_anonymous_sizes(self):
        grid = GridMap(6, 6)
        mech = CloakingMechanism.k_anonymous(grid, k=4)
        assert all(len(block) >= 4 for block in mech.blocks)

    def test_k_too_large_rejected(self):
        grid = GridMap(2, 2)
        with pytest.raises(MechanismError):
            CloakingMechanism.k_anonymous(grid, k=9)

    def test_noisy_cloaking_budget_roundtrip(self):
        grid = GridMap(4, 4)
        mech = CloakingMechanism(
            grid, grid_blocks(grid, 2, 2), flip_probability=0.3
        )
        rescaled = mech.with_budget(1.0)
        assert rescaled.budget == pytest.approx(1.0)

    def test_deterministic_budget_is_infinite(self):
        grid = GridMap(4, 4)
        mech = CloakingMechanism(grid, grid_blocks(grid, 2, 2))
        assert mech.budget == float("inf")

    def test_rejects_non_partition(self):
        grid = GridMap(2, 2)
        with pytest.raises(MechanismError):
            CloakingMechanism(grid, [(0, 1), (1, 2, 3)])  # overlap

    def test_deterministic_cloaking_fails_event_privacy(self, rng):
        """The paper's motivation: cloaking leaks aligned events exactly."""
        from repro.core.quantify import quantify_fixed_prior
        from repro.events.events import PresenceEvent
        from repro.geo.regions import Region
        from repro.markov.synthetic import gaussian_kernel_transitions

        grid = GridMap(4, 4)
        chain = gaussian_kernel_transitions(grid, 1.0)
        mech = CloakingMechanism(grid, grid_blocks(grid, 2, 2))
        # The event region IS block 0 -- cloaking reveals it verbatim.
        event = PresenceEvent(Region.from_cells(16, [0, 1, 4, 5]), start=1, end=1)
        pi = np.full(16, 1 / 16)
        released = [mech.block_of(0)]
        result = quantify_fixed_prior(chain, event, mech.emission_matrix(), released, pi)
        assert result.epsilon == float("inf")

    def test_noisy_cloaking_bounded_loss(self, rng):
        from repro.core.quantify import quantify_fixed_prior
        from repro.events.events import PresenceEvent
        from repro.geo.regions import Region
        from repro.markov.synthetic import gaussian_kernel_transitions

        grid = GridMap(4, 4)
        chain = gaussian_kernel_transitions(grid, 1.0)
        mech = CloakingMechanism(
            grid, grid_blocks(grid, 2, 2), flip_probability=0.4
        )
        event = PresenceEvent(Region.from_cells(16, [0, 1, 4, 5]), start=1, end=1)
        pi = np.full(16, 1 / 16)
        result = quantify_fixed_prior(
            chain, event, mech.emission_matrix(), [mech.block_of(0)], pi
        )
        assert np.isfinite(result.epsilon)
