"""Unit tests for synthetic transition generators."""

import numpy as np
import pytest

from repro.errors import MarkovError
from repro.geo.grid import GridMap
from repro.markov.synthetic import (
    biased_commute_transitions,
    gaussian_kernel_transitions,
    lazy_random_walk_transitions,
)


class TestGaussianKernel:
    def test_rows_stochastic(self):
        grid = GridMap(4, 4)
        chain = gaussian_kernel_transitions(grid, sigma=1.0)
        assert np.allclose(chain.matrix.sum(axis=1), 1.0)

    def test_small_sigma_concentrates(self):
        grid = GridMap(5, 5)
        tight = gaussian_kernel_transitions(grid, sigma=0.3)
        loose = gaussian_kernel_transitions(grid, sigma=10.0)
        # From the centre, a tight kernel keeps more mass on itself.
        assert tight.matrix[12, 12] > loose.matrix[12, 12]

    def test_sigma_order_matches_pattern_strength(self):
        grid = GridMap(5, 5)
        strengths = [
            gaussian_kernel_transitions(grid, sigma).pattern_strength()
            for sigma in (0.1, 1.0, 10.0)
        ]
        assert strengths[0] > strengths[1] > strengths[2]

    def test_large_sigma_near_uniform(self):
        grid = GridMap(3, 3)
        chain = gaussian_kernel_transitions(grid, sigma=1000.0)
        assert np.allclose(chain.matrix, 1.0 / 9.0, atol=1e-4)

    def test_tiny_sigma_no_underflow(self):
        grid = GridMap(5, 5)
        chain = gaussian_kernel_transitions(grid, sigma=0.01)
        assert np.all(np.isfinite(chain.matrix))
        assert np.allclose(chain.matrix.sum(axis=1), 1.0)
        # Essentially a self-loop chain.
        assert chain.matrix[12, 12] == pytest.approx(1.0, abs=1e-6)

    def test_ergodic(self):
        grid = GridMap(4, 4)
        assert gaussian_kernel_transitions(grid, 1.0).is_ergodic

    def test_km_distance_unit(self):
        grid = GridMap(3, 3, cell_size_km=2.0)
        by_cells = gaussian_kernel_transitions(grid, 1.0, distance_unit="cells")
        by_km = gaussian_kernel_transitions(grid, 2.0, distance_unit="km")
        assert np.allclose(by_cells.matrix, by_km.matrix)

    def test_rejects_bad_unit(self):
        grid = GridMap(2, 2)
        with pytest.raises(MarkovError):
            gaussian_kernel_transitions(grid, 1.0, distance_unit="miles")

    def test_rejects_non_positive_sigma(self):
        grid = GridMap(2, 2)
        with pytest.raises(Exception):
            gaussian_kernel_transitions(grid, 0.0)


class TestLazyRandomWalk:
    def test_rows_stochastic(self):
        grid = GridMap(4, 4)
        chain = lazy_random_walk_transitions(grid, stay_probability=0.3)
        assert np.allclose(chain.matrix.sum(axis=1), 1.0)

    def test_stay_probability(self):
        grid = GridMap(3, 3)
        chain = lazy_random_walk_transitions(grid, stay_probability=0.4)
        assert chain.matrix[4, 4] == pytest.approx(0.4)

    def test_support_is_neighborhood(self):
        grid = GridMap(3, 3)
        chain = lazy_random_walk_transitions(grid, 0.2, diagonal=False)
        assert chain.matrix[0, 8] == 0.0
        assert chain.matrix[0, 1] > 0.0

    def test_single_cell_grid(self):
        grid = GridMap(1, 1)
        chain = lazy_random_walk_transitions(grid)
        assert chain.matrix[0, 0] == pytest.approx(1.0)


class TestBiasedCommute:
    def test_rows_stochastic(self):
        grid = GridMap(4, 4)
        chain = biased_commute_transitions(grid, anchors=(0, 15), anchor_pull=0.5)
        assert np.allclose(chain.matrix.sum(axis=1), 1.0)

    def test_anchor_is_absorbing_ish(self):
        grid = GridMap(4, 4)
        chain = biased_commute_transitions(grid, anchors=(0,), anchor_pull=1.0)
        assert chain.matrix[0, 0] == pytest.approx(1.0)

    def test_pull_moves_toward_anchor(self):
        grid = GridMap(1, 5, cell_size_km=1.0)
        chain = biased_commute_transitions(grid, anchors=(0,), anchor_pull=1.0, sigma=1.0)
        # From cell 4, the pull step moves strictly left.
        assert chain.matrix[4, 3] == pytest.approx(1.0)

    def test_rejects_no_anchor(self):
        grid = GridMap(2, 2)
        with pytest.raises(MarkovError):
            biased_commute_transitions(grid, anchors=())
