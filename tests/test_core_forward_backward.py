"""Unit tests for the generic forward-backward substrate."""

import numpy as np
import pytest

from repro.core.forward_backward import (
    backward_messages,
    filtered_posteriors,
    forward_messages,
    sequence_likelihood,
    smoothed_posteriors,
)
from repro.errors import QuantificationError

from conftest import random_chain, random_emission


def _columns(emission, observations):
    return np.stack([emission[:, o] for o in observations])


class TestForward:
    def test_first_message(self, paper_chain, rng):
        emission = random_emission(3, rng)
        pi = np.array([0.2, 0.5, 0.3])
        alphas = forward_messages(paper_chain, pi, _columns(emission, [1]))
        assert np.allclose(alphas[0], pi * emission[:, 1])

    def test_likelihood_matches_enumeration(self, rng):
        chain = random_chain(3, rng)
        emission = random_emission(3, rng)
        pi = np.array([0.3, 0.3, 0.4])
        observations = [0, 2, 1]
        cols = _columns(emission, observations)
        total = 0.0
        import itertools

        for cells in itertools.product(range(3), repeat=3):
            p = pi[cells[0]]
            for a, b in zip(cells[:-1], cells[1:]):
                p *= chain.matrix[a, b]
            for t, cell in enumerate(cells):
                p *= emission[cell, observations[t]]
            total += p
        assert sequence_likelihood(chain, pi, cols) == pytest.approx(total)

    def test_emission_shape_checked(self, paper_chain):
        with pytest.raises(QuantificationError):
            forward_messages(paper_chain, [0.5, 0.25, 0.25], np.ones((2, 4)))


class TestBackward:
    def test_final_is_ones(self, rng):
        chain = random_chain(3, rng)
        emission = random_emission(3, rng)
        betas = backward_messages(chain, _columns(emission, [0, 1, 2]))
        assert np.allclose(betas[-1], 1.0)

    def test_alpha_beta_product_constant(self, rng):
        """sum_k alpha_t[k] beta_t[k] = Pr(o_1..o_T) for every t."""
        chain = random_chain(4, rng)
        emission = random_emission(4, rng)
        pi = np.full(4, 0.25)
        cols = _columns(emission, [0, 3, 1, 2, 0])
        alphas = forward_messages(chain, pi, cols)
        betas = backward_messages(chain, cols)
        products = (alphas * betas).sum(axis=1)
        assert np.allclose(products, products[0])
        assert products[0] == pytest.approx(sequence_likelihood(chain, pi, cols))


class TestPosteriors:
    def test_rows_are_distributions(self, rng):
        chain = random_chain(3, rng)
        emission = random_emission(3, rng)
        pi = np.array([0.2, 0.3, 0.5])
        cols = _columns(emission, [0, 1, 2, 1])
        smoothed = smoothed_posteriors(chain, pi, cols)
        filtered = filtered_posteriors(chain, pi, cols)
        assert np.allclose(smoothed.sum(axis=1), 1.0)
        assert np.allclose(filtered.sum(axis=1), 1.0)

    def test_final_smoothed_equals_filtered(self, rng):
        chain = random_chain(3, rng)
        emission = random_emission(3, rng)
        pi = np.array([0.2, 0.3, 0.5])
        cols = _columns(emission, [0, 1, 2])
        smoothed = smoothed_posteriors(chain, pi, cols)
        filtered = filtered_posteriors(chain, pi, cols)
        assert np.allclose(smoothed[-1], filtered[-1])

    def test_noiseless_emission_recovers_truth(self, paper_chain):
        identity = np.eye(3)
        pi = np.array([1 / 3, 1 / 3, 1 / 3])
        observations = [0, 2, 2]
        cols = _columns(identity, observations)
        smoothed = smoothed_posteriors(paper_chain, pi, cols)
        for t, cell in enumerate(observations):
            assert smoothed[t, cell] == pytest.approx(1.0)

    def test_impossible_sequence_rejected(self, paper_chain):
        identity = np.eye(3)
        # Transition 2 -> 0 has probability 0 in the paper chain.
        cols = _columns(identity, [2, 0])
        with pytest.raises(QuantificationError):
            smoothed_posteriors(paper_chain, [1 / 3, 1 / 3, 1 / 3], cols)

    def test_time_varying_chain_supported(self, paper_chain, rng):
        from repro.markov.transition import TimeVaryingChain, TransitionMatrix

        chain = TimeVaryingChain([paper_chain, TransitionMatrix(np.eye(3))])
        emission = random_emission(3, rng)
        cols = _columns(emission, [0, 1, 2])
        smoothed = smoothed_posteriors(chain, [0.4, 0.3, 0.3], cols)
        assert smoothed.shape == (3, 3)
