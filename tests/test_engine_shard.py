"""The sharded execution backend: routing, identity, crash containment.

The load-bearing guarantees of :mod:`repro.engine.shard`:

* session->shard routing is a *stable* hash -- identical across
  processes, runs and machines, never salted;
* a :class:`ShardPool` produces release streams bit-identical to a
  single in-process :class:`SessionManager` under the same seeds, for
  solo steps and for batched waves alike;
* one worker's death surfaces as typed ``ShardDownError`` for exactly
  its sessions while the other shards keep serving;
* checkpoints round-trip through the owning shard and restore correctly
  into a pool with a *different* shard count (routing re-derives from
  the id alone).
"""

import numpy as np
import pytest

from repro.engine import (
    InProcessBackend,
    SessionBuilder,
    SessionManager,
    ShardPool,
    shard_for,
)
from repro.engine.backend import as_backend
from repro.errors import ServiceError, SessionError, ShardDownError
from repro.events.events import PresenceEvent
from repro.geo.grid import GridMap
from repro.geo.regions import Region
from repro.lppm.planar_laplace import PlanarLaplaceMechanism
from repro.markov.simulate import sample_trajectory
from repro.markov.synthetic import gaussian_kernel_transitions

HORIZON = 6
N_CELLS = 16


def make_builder() -> SessionBuilder:
    grid = GridMap(4, 4, cell_size_km=1.0)
    chain = gaussian_kernel_transitions(grid, sigma=1.0)
    initial = np.full(N_CELLS, 1.0 / N_CELLS)
    return (
        SessionBuilder()
        .with_grid(grid)
        .with_chain(chain)
        .protecting(PresenceEvent(Region.from_range(N_CELLS, 0, 5), start=2, end=4))
        .with_mechanism(PlanarLaplaceMechanism(grid, 0.5))
        .with_epsilon(0.5)
        .with_fixed_prior(initial)
        .with_horizon(HORIZON)
    )


def make_manager() -> SessionManager:
    return SessionManager(make_builder())


def make_trajectories(n_sessions: int, seed: int = 7) -> dict[str, list[int]]:
    chain = make_builder().build_config().chain
    initial = np.full(N_CELLS, 1.0 / N_CELLS)
    rng = np.random.default_rng(seed)
    return {
        f"u{i}": [
            int(c)
            for c in sample_trajectory(chain, HORIZON, initial=initial, rng=rng)
        ]
        for i in range(n_sessions)
    }


def reference_records(trajectories: dict[str, list[int]]) -> dict[str, list[tuple]]:
    """The same streams driven on one in-process manager."""
    manager = make_manager()
    for i, name in enumerate(trajectories):
        manager.open(name, rng=1000 + i)
    out = {
        name: [strip(manager.step(name, cell)) for cell in trajectory]
        for name, trajectory in trajectories.items()
    }
    manager.finish_all()
    return out


def strip(record) -> tuple:
    """A release record minus wall-clock (identical math, not time)."""
    return (
        record.t,
        record.true_cell,
        record.released_cell,
        record.budget,
        record.n_attempts,
        record.conservative,
        record.forced_uniform,
    )


@pytest.fixture
def pool():
    with ShardPool(make_manager, 2) as pool:
        yield pool


class TestRouting:
    def test_shard_for_is_stable_across_calls_and_processes(self):
        # blake2b, not hash(): these values must never change, or
        # checkpoints taken by one server version would re-route under
        # the next.  (Frozen expectations, deliberately.)
        assert [shard_for(f"u{i}", 4) for i in range(6)] == [3, 2, 2, 3, 2, 0]
        assert shard_for("session-with-a-long-id", 7) == shard_for(
            "session-with-a-long-id", 7
        )

    def test_shard_for_spreads_sessions(self):
        counts = [0] * 4
        for i in range(1000):
            counts[shard_for(f"user-{i}", 4)] += 1
        assert min(counts) > 150  # roughly uniform, no starved shard

    def test_shard_for_rejects_bad_count(self):
        with pytest.raises(ServiceError):
            shard_for("u1", 0)

    def test_pool_routes_where_shard_for_says(self, pool):
        for i in range(8):
            pool.open(f"u{i}", seed=i)
        rows = pool.shard_stats()
        expected = [0, 0]
        for i in range(8):
            expected[shard_for(f"u{i}", 2)] += 1
        assert [row["sessions"] for row in rows] == expected


class TestBitIdentity:
    def test_solo_steps_match_in_process_manager(self, pool):
        trajectories = make_trajectories(6)
        reference = reference_records(trajectories)
        for i, name in enumerate(trajectories):
            pool.open(name, seed=1000 + i)
        for name, trajectory in trajectories.items():
            sharded = [strip(pool.step(name, cell)) for cell in trajectory]
            assert sharded == reference[name]

    def test_step_batch_matches_in_process_manager(self, pool):
        trajectories = make_trajectories(6)
        reference = reference_records(trajectories)
        for i, name in enumerate(trajectories):
            pool.open(name, seed=1000 + i)
        streams = {name: [] for name in trajectories}
        for t in range(HORIZON):
            records, errors = pool.step_batch(
                {name: trajectory[t] for name, trajectory in trajectories.items()}
            )
            assert errors == {}
            for name, record in records.items():
                streams[name].append(strip(record))
        assert streams == reference

    def test_finish_log_and_peek_match(self, pool):
        trajectory = make_trajectories(1)["u0"]
        pool.open("u0", seed=1000)
        manager = make_manager()
        manager.open("u0", rng=1000)
        for cell in trajectory[:3]:
            assert pool.peek_budget("u0") == manager.peek_budget("u0")
            pool.step("u0", cell)
            manager.step("u0", cell)
        sharded_log = pool.finish("u0")
        direct_log = manager.finish("u0")
        assert [strip(r) for r in sharded_log.records] == [
            strip(r) for r in direct_log.records
        ]
        assert sharded_log.average_budget == direct_log.average_budget
        assert not pool.contains("u0")

    def test_batch_isolates_bad_members(self, pool):
        pool.open("u0", seed=1)
        pool.open("u1", seed=2)
        records, errors = pool.step_batch({"u0": 3, "u1": 999, "ghost": 0})
        assert set(records) == {"u0"}
        assert isinstance(errors["u1"], SessionError)
        assert isinstance(errors["ghost"], SessionError)


class TestCheckpointRestore:
    @pytest.mark.parametrize("restore_shards", [1, 3])
    def test_restore_into_different_shard_count(self, restore_shards):
        """Suspend under 2 shards, resume under N != 2, bit-identical."""
        trajectories = make_trajectories(5)
        reference = reference_records(trajectories)
        split = HORIZON // 2
        with ShardPool(make_manager, 2) as first:
            for i, name in enumerate(trajectories):
                first.open(name, seed=1000 + i)
            streams = {
                name: [strip(first.step(name, cell)) for cell in trajectory[:split]]
                for name, trajectory in trajectories.items()
            }
            states, lost = first.suspend_all()
            assert lost == []
            assert sorted(s.session_id for s in states) == sorted(trajectories)
            assert first.resident_count() == 0
        with ShardPool(make_manager, restore_shards) as second:
            for state in states:
                assert second.resume(state) == state.session_id
            for name, trajectory in trajectories.items():
                streams[name].extend(
                    strip(second.step(name, cell)) for cell in trajectory[split:]
                )
        assert streams == reference

    def test_checkpoint_roundtrips_through_owning_shard(self, pool):
        pool.open("u0", seed=5)
        pool.step("u0", 3)
        state = pool.checkpoint("u0")
        assert state.session_id == "u0"
        assert state.committed_t == 1
        assert pool.contains("u0")  # checkpoint does not evict
        # a suspend does evict, and the state resumes elsewhere
        state = pool.suspend("u0")
        assert not pool.contains("u0")
        manager = make_manager()
        manager.resume(state)
        manager.step("u0", 4)  # continues without error


class TestCrashContainment:
    def test_dead_shard_raises_typed_error_others_serve(self, pool):
        # Find two sessions on different shards.
        on_zero = next(f"s{i}" for i in range(100) if shard_for(f"s{i}", 2) == 0)
        on_one = next(f"s{i}" for i in range(100) if shard_for(f"s{i}", 2) == 1)
        pool.open(on_zero, seed=1)
        pool.open(on_one, seed=2)
        pool._handles[0]._process.kill()
        pool._handles[0]._process.join(10)

        with pytest.raises(ShardDownError):
            pool.step(on_zero, 3)
        # ... and keeps raising: the loss is never silent
        with pytest.raises(ShardDownError):
            pool.peek_budget(on_zero)
        assert pool.lost_session_ids() == [on_zero]
        # the surviving shard is unaffected
        record = pool.step(on_one, 3)
        assert record.t == 1

        rows = pool.shard_stats()
        assert rows[0]["alive"] is False
        assert rows[0]["lost_sessions"] == 1
        assert rows[1]["alive"] is True

    def test_batch_with_dead_shard_fails_only_its_members(self, pool):
        members = {}
        for i in range(100):
            sid = f"s{i}"
            members.setdefault(shard_for(sid, 2), []).append(sid)
            if all(len(v) >= 2 for v in members.values()) and len(members) == 2:
                break
        cells = {}
        for shard, sids in members.items():
            for sid in sids[:2]:
                pool.open(sid, seed=hash(sid) % 1000)
                cells[sid] = 3
        pool._handles[1]._process.kill()
        pool._handles[1]._process.join(10)
        records, errors = pool.step_batch(cells)
        assert set(records) == set(members[0][:2])
        assert set(errors) == set(members[1][:2])
        assert all(isinstance(e, ShardDownError) for e in errors.values())

    def test_suspend_all_reports_lost_sessions(self, pool):
        on_zero = next(f"s{i}" for i in range(100) if shard_for(f"s{i}", 2) == 0)
        on_one = next(f"s{i}" for i in range(100) if shard_for(f"s{i}", 2) == 1)
        pool.open(on_zero, seed=1)
        pool.open(on_one, seed=2)
        pool._handles[1]._process.kill()
        pool._handles[1]._process.join(10)
        states, lost = pool.suspend_all()
        assert [s.session_id for s in states] == [on_zero]
        assert lost == [on_one]

    def test_factory_failure_surfaces_at_spawn(self):
        def bad_factory():
            raise ValueError("no engine for you")

        with pytest.raises(ValueError, match="no engine for you"):
            ShardPool(bad_factory, 2)


class TestBackendAdapter:
    def test_as_backend_wraps_manager_and_passes_backends(self):
        manager = make_manager()
        backend = as_backend(manager)
        assert isinstance(backend, InProcessBackend)
        assert as_backend(backend) is backend
        assert backend.n_shards == 0
        assert backend.remote is False
        assert backend.horizon == HORIZON
        assert backend.n_states == N_CELLS

    def test_as_backend_rejects_other_types(self):
        with pytest.raises(SessionError):
            as_backend(object())

    def test_in_process_backend_round_trip(self):
        backend = as_backend(make_manager())
        backend.open("u0", seed=3)
        assert backend.contains("u0")
        record = backend.step("u0", 2)
        assert record.t == 1
        states, lost = backend.suspend_all()
        assert lost == [] and len(states) == 1
        assert backend.resident_count() == 0
        backend.resume(states[0])
        assert backend.session_ids() == ["u0"]
        assert len(backend.finish("u0")) == 1
