"""Unit tests for Theorem IV.1 conditions and certificates."""

import numpy as np
import pytest

from repro.core.theorem import (
    RankOneCondition,
    condition_value,
    likelihood_ratio,
    privacy_conditions,
    sufficient_safe,
)
from repro.errors import QuantificationError


class TestRankOneCondition:
    def test_value(self):
        cond = RankOneCondition(
            u=np.array([1.0, 0.0]), v=np.array([0.0, 1.0]), w=np.array([0.1, -0.1])
        )
        pi = np.array([0.5, 0.5])
        # (0.5)(0.5) + 0 = 0.25
        assert cond.value(pi) == pytest.approx(0.25)

    def test_quadratic_matrix(self):
        cond = RankOneCondition(
            u=np.array([1.0, 2.0]), v=np.array([3.0, 4.0]), w=np.zeros(2)
        )
        assert np.allclose(cond.quadratic_matrix(), [[3.0, 4.0], [6.0, 8.0]])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(QuantificationError):
            RankOneCondition(u=np.ones(2), v=np.ones(3), w=np.ones(2))

    def test_value_shape_checked(self):
        cond = RankOneCondition(u=np.ones(2), v=np.ones(2), w=np.ones(2))
        with pytest.raises(QuantificationError):
            cond.value(np.ones(3))


class TestPrivacyConditions:
    def test_sign_matches_ratio(self):
        """Condition <= 0 at a pi iff the Definition II.4 ratio holds there."""
        rng = np.random.default_rng(0)
        for _ in range(50):
            a = rng.uniform(0.05, 0.95, size=4)
            c = rng.uniform(0.1, 1.0, size=4)
            b = c * a * rng.uniform(0.3, 1.0, size=4)
            epsilon = rng.uniform(0.1, 1.5)
            pi = rng.dirichlet(np.ones(4))
            forward, backward = privacy_conditions(a, b, c, epsilon)
            ratio = likelihood_ratio(a, b, c, pi)
            bound = np.exp(epsilon)
            assert (forward.value(pi) <= 1e-12) == (ratio <= bound * (1 + 1e-9))
            assert (backward.value(pi) <= 1e-12) == (
                1.0 / ratio <= bound * (1 + 1e-9)
            )

    def test_scale_invariance_of_sign(self):
        a = np.array([0.3, 0.6, 0.1])
        b = np.array([0.02, 0.05, 0.01])
        c = np.array([0.08, 0.07, 0.09])
        pi = np.array([0.2, 0.3, 0.5])
        for scale in (1.0, 1e-30, 1e30):
            forward, backward = privacy_conditions(a, b * scale, c * scale, 0.5)
            f, g = forward.value(pi), backward.value(pi)
            base_f, base_g = condition_value(a, b, c, 0.5, pi)
            assert np.sign(f) == np.sign(base_f)
            assert np.sign(g) == np.sign(base_g)

    def test_rejects_non_positive_epsilon(self):
        vec = np.array([0.5, 0.5])
        with pytest.raises(Exception):
            privacy_conditions(vec, vec, vec, 0.0)


class TestLikelihoodRatio:
    def test_uniform_mechanism_ratio_one(self):
        a = np.array([0.4, 0.2, 0.7])
        kappa = 0.1
        b = kappa * a
        c = np.full(3, kappa)
        pi = np.array([0.3, 0.3, 0.4])
        assert likelihood_ratio(a, b, c, pi) == pytest.approx(1.0)

    def test_degenerate_prior_rejected(self):
        a = np.zeros(3)
        with pytest.raises(QuantificationError):
            likelihood_ratio(a, a, np.ones(3), np.array([1 / 3, 1 / 3, 1 / 3]))

    def test_infinite_ratio(self):
        a = np.array([0.5, 0.5])
        b = np.array([0.1, 0.1])
        c = b.copy()  # no mass on the negation side
        assert likelihood_ratio(a, b, c, np.array([0.5, 0.5])) == float("inf")


class TestSufficientSafe:
    def test_uniform_mechanism_certified(self):
        a = np.array([0.4, 0.2, 0.7])
        kappa = 0.3
        assert sufficient_safe(a, kappa * a, np.full(3, kappa), epsilon=0.1)

    def test_spread_conditionals_not_certified(self):
        a = np.array([0.5, 0.5])
        b = np.array([0.05, 0.30])  # r = 0.1 vs 0.6
        c = np.array([0.30, 0.40])  # q = 0.5 vs 0.2
        assert not sufficient_safe(a, b, c, epsilon=0.5)
        assert sufficient_safe(a, b, c, epsilon=2.0)

    def test_certificate_implies_ratio_bound(self):
        """Whenever the certificate passes, every pi satisfies the bound."""
        rng = np.random.default_rng(1)
        certified = 0
        for _ in range(200):
            a = rng.uniform(0.05, 0.95, size=3)
            c = rng.uniform(0.2, 1.0, size=3)
            b = c * a * rng.uniform(0.7, 1.0, size=3)
            epsilon = rng.uniform(0.3, 2.0)
            if not sufficient_safe(a, b, c, epsilon):
                continue
            certified += 1
            for _ in range(20):
                pi = rng.dirichlet(np.ones(3))
                ratio = likelihood_ratio(a, b, c, pi)
                assert ratio <= np.exp(epsilon) * (1 + 1e-6)
                assert 1.0 / ratio <= np.exp(epsilon) * (1 + 1e-6)
        assert certified > 0  # the test exercised the certified branch

    def test_degenerate_event_certified(self):
        # Pr(EVENT) = 0 under every pi: vacuous, certified.
        a = np.zeros(3)
        b = np.zeros(3)
        c = np.array([0.5, 0.5, 0.5])
        assert sufficient_safe(a, b, c, epsilon=0.1)

    def test_certain_event_certified(self):
        a = np.ones(3)
        b = np.array([0.5, 0.5, 0.5])
        c = b.copy()
        assert sufficient_safe(a, b, c, epsilon=0.1)
