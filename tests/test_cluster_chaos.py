"""Deterministic fault injection: plans, injectors, armed workers.

The chaos layer's contract: a :class:`FaultPlan` is strict JSON (typos
fail loudly, never vacuously pass a drill), a :class:`FaultInjector`
counts steps *before* execution (a worker killed "at step N" never
acknowledges step N), and an armed worker misbehaves exactly as
scripted -- kill, hang, heartbeat blackhole, seeded delays -- while a
SIGTERM drain announces an orderly ``leave``.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.cluster.backend import WorkerHandle
from repro.cluster.chaos import ChaosChannel, FaultInjector, FaultPlan
from repro.cluster.worker import spawn_local_worker
from repro.errors import ValidationError, WorkerDownError

from test_engine_shard import make_manager


class TestFaultPlan:
    def test_round_trip(self):
        plan = FaultPlan(
            seed=7,
            kill_at_step=5,
            rpc_delay_ms=1.5,
            rpc_jitter_ms=0.5,
            blackhole_after_step=3,
        )
        assert FaultPlan.from_json(plan.to_json()) == plan
        # and through actual JSON text, as --fault-plan would carry it
        assert FaultPlan.from_json(json.loads(json.dumps(plan.to_json()))) == plan

    def test_unknown_keys_are_rejected(self):
        with pytest.raises(ValidationError, match="unknown fault plan keys"):
            FaultPlan.from_json({"kill_at_stpe": 5})
        with pytest.raises(ValidationError, match="JSON object"):
            FaultPlan.from_json([1, 2])

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"kill_at_step": 0},
            {"kill_at_step": -1},
            {"kill_at_step": 1.5},
            {"hang_at_step": 0},
            {"blackhole_after_step": -1},
            {"rpc_delay_ms": -0.1},
            {"rpc_jitter_ms": "fast"},
        ],
    )
    def test_invalid_thresholds_are_rejected(self, kwargs):
        with pytest.raises(ValidationError):
            FaultPlan(**kwargs)

    def test_from_file(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps({"seed": 3, "kill_at_step": 9}))
        plan = FaultPlan.from_file(str(path))
        assert plan == FaultPlan(seed=3, kill_at_step=9)
        with pytest.raises(ValidationError, match="cannot read"):
            FaultPlan.from_file(str(tmp_path / "missing.json"))
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ValidationError, match="not valid JSON"):
            FaultPlan.from_file(str(bad))


class TestFaultInjector:
    def test_counting_and_kill_threshold(self):
        injector = FaultInjector(FaultPlan(kill_at_step=3))
        assert injector.on_engine_op("open", ("s", None, None)) is None
        assert injector.steps == 0  # only step ops advance the counter
        assert injector.on_engine_op("step", ("s", 1)) is None
        assert injector.on_engine_op("step", ("s", 2)) is None
        assert injector.on_engine_op("step", ("s", 3)) == "kill"
        assert injector.steps == 3

    def test_batch_crossing_triggers_kill(self):
        # A batched wave of 4 crosses kill_at_step=3 in one op: the
        # whole wave dies unacknowledged, exactly like a real crash
        # mid-batch.
        injector = FaultInjector(FaultPlan(kill_at_step=3))
        assert injector.on_engine_op("step_batch", {"a": 1}) is None
        assert injector.on_engine_op(
            "step_batch", {"a": 1, "b": 2, "c": 3, "d": 4}
        ) == "kill"
        assert injector.steps == 5

    def test_hang_persists_past_the_threshold(self):
        injector = FaultInjector(FaultPlan(hang_at_step=2))
        assert injector.on_engine_op("step", ("s", 1)) is None
        assert injector.on_engine_op("step", ("s", 2)) == "hang"
        assert injector.on_engine_op("step", ("s", 3)) == "hang"
        assert injector.on_engine_op("finish", ("s",)) is None  # non-step op

    def test_blackhole_after_step(self):
        injector = FaultInjector(FaultPlan(blackhole_after_step=1))
        assert injector.blackholed() is False
        injector.on_engine_op("step", ("s", 1))
        assert injector.blackholed() is True
        # blackhole_after_step=0 is dark from the start
        assert FaultInjector(FaultPlan(blackhole_after_step=0)).blackholed()

    def test_delays_are_seeded(self):
        plan = FaultPlan(seed=11, rpc_delay_ms=2.0, rpc_jitter_ms=4.0)
        first = FaultInjector(plan)
        second = FaultInjector(plan)
        seq_a = [first.delay_s() for _ in range(5)]
        seq_b = [second.delay_s() for _ in range(5)]
        assert seq_a == seq_b  # same plan, same schedule
        assert all(0.002 <= d <= 0.006 for d in seq_a)
        assert FaultInjector(FaultPlan()).delay_s() == 0.0


class _RecordingChannel:
    max_frame_bytes = 1 << 20

    def __init__(self):
        self.sent = []
        self.closed = False

    def send(self, payload):
        self.sent.append(payload)

    def recv(self, timeout_s=None):
        return b"pong"

    def poll(self, timeout_s=0.0):
        return True

    def close(self):
        self.closed = True


class TestChaosChannel:
    def test_delegates_and_delays_deterministically(self):
        inner = _RecordingChannel()
        plan = FaultPlan(seed=5, rpc_delay_ms=1.0)
        channel = ChaosChannel(inner, plan)
        assert channel.max_frame_bytes == inner.max_frame_bytes
        start = time.monotonic()
        channel.send(b"hello")
        assert time.monotonic() - start >= 0.001
        assert inner.sent == [b"hello"]
        assert channel.recv() == b"pong"
        assert channel.poll() is True
        channel.close()
        assert inner.closed is True

    def test_zero_delay_plan_does_not_sleep(self):
        inner = _RecordingChannel()
        channel = ChaosChannel(inner, FaultPlan())
        start = time.monotonic()
        for _ in range(100):
            channel.send(b"x")
        assert time.monotonic() - start < 0.5
        assert len(inner.sent) == 100


class TestArmedWorker:
    """Integration: a real worker process armed with a plan."""

    def test_kill_at_step_dies_unacknowledged(self):
        process, address = spawn_local_worker(
            make_manager, fault_plan=FaultPlan(kill_at_step=5)
        )
        try:
            handle = WorkerHandle(address, rpc_timeout_s=30.0)
            handle.call("open", ("u", 1, None))
            for cell in (1, 2, 3, 4):
                handle.call("step", ("u", cell))  # steps 1..4 acknowledged
            with pytest.raises(WorkerDownError):
                handle.call("step", ("u", 5))  # the 5th never answers
            process.join(10)
            assert process.exitcode == 137
        finally:
            process.terminate()
            process.join(10)

    def test_hang_at_step_trips_the_rpc_deadline(self):
        process, address = spawn_local_worker(
            make_manager, fault_plan=FaultPlan(hang_at_step=2)
        )
        try:
            handle = WorkerHandle(address, rpc_timeout_s=1.0)
            handle.call("open", ("u", 1, None))
            handle.call("step", ("u", 1))
            with pytest.raises(WorkerDownError):
                handle.call("step", ("u", 2))
            assert process.is_alive()  # hung, not dead -- only the
            # deadline told them apart
        finally:
            process.terminate()
            process.join(10)

    def test_blackhole_swallows_pings_but_serves_ops(self):
        process, address = spawn_local_worker(
            make_manager, fault_plan=FaultPlan(blackhole_after_step=1)
        )
        try:
            handle = WorkerHandle(address, rpc_timeout_s=30.0)
            assert handle.ping(2.0) is True
            handle.call("open", ("u", 1, None))
            handle.call("step", ("u", 1))
            # The partition begins: the ping times out, and (by design)
            # the silent worker is now dead as far as this handle is
            # concerned -- a blackholed worker and a dead one look the
            # same to the router's heartbeats.
            assert handle.ping(1.0) is False
            assert handle.alive is False
            # ...while the engine underneath keeps serving: a fresh
            # connection (no pings) steps the same session onward.
            probe = WorkerHandle(address, rpc_timeout_s=30.0)
            record = probe.call("step", ("u", 2))
            assert record.t == 2
            probe.close()
        finally:
            process.terminate()
            process.join(10)


class TestSigtermDrain:
    def test_sigterm_announces_leave(self, tmp_path):
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "worker",
                "--listen", "127.0.0.1:0", "--horizon", "6",
                "--rows", "4", "--cols", "4", "--event-window", "2", "4",
            ],
            stdout=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            ready = json.loads(process.stdout.readline())
            assert ready["op"] == "worker" and ready["port"] > 0
            process.send_signal(signal.SIGTERM)
            lines = [json.loads(line) for line in process.stdout]
            assert process.wait(30) == 0
            ops = [line["op"] for line in lines]
            assert ops == ["leave", "worker-stopped"]
            assert lines[0]["port"] == ready["port"]
            assert lines[0]["sessions"] == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(10)

    def test_fault_plan_flag_validates(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"kill_at_step": 0}))
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        result = subprocess.run(
            [
                sys.executable, "-m", "repro.cli", "worker",
                "--fault-plan", str(bad),
            ],
            capture_output=True,
            text=True,
            env=env,
            timeout=60,
        )
        assert result.returncode == 2
        assert "kill_at_step" in result.stderr
