"""Fig. 12: Geolife with delta-location set privacy, delta sweep.

0.5-PLM, delta in {0.1, 0.3, 0.5, 0.7}, epsilon in {0.1, 1, 2, 3}.
Expected shapes: larger delta (weaker location-privacy metric) forces a
smaller average budget, yet can *improve* Euclidean utility because the
restricted output domain keeps releases near the true location -- the
paper's headline observation for this figure.
"""

from repro.experiments.runners import run_utility_sweep

EPSILONS = (0.1, 1.0, 2.0, 3.0)
DELTAS = (0.1, 0.3, 0.5, 0.7)


def test_fig12_geolife_delta_sweep(paper_geolife, n_runs, save_result, benchmark):
    scenario = paper_geolife

    def run():
        return run_utility_sweep(
            scenario_for=lambda params: scenario,
            events_for=lambda sc, params: [sc.presence_event(0, 9, 4, 8)],
            curve_settings=[
                (f"delta={d}", {"alpha": 0.5, "mechanism": "delta", "delta": d})
                for d in DELTAS
            ],
            epsilons=EPSILONS,
            n_runs=n_runs,
            seed=12,
            label=(
                f"Fig. 12 Geolife 0.5-PLM with delta-location set privacy, "
                f"{n_runs} runs ({scenario.source})"
            ),
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("fig12_geolife_delta_location_set", result.to_text())

    # The restricted output domain keeps errors bounded by the map size.
    diameter = scenario.grid.distance_matrix_km.max()
    for errors in result.error_series.values():
        assert max(errors) <= diameter

    # Across the epsilon sweep, the tightest-delta curve (0.1) never has
    # *smaller* average budget than the loosest one (0.7) by a large
    # margin -- the paper's "larger delta => smaller budget" trend.
    mean = lambda name: sum(result.budget_series[name]) / len(EPSILONS)
    assert mean("delta=0.1") >= mean("delta=0.7") - 0.1
