"""Shared infrastructure for the experiment benchmarks.

Each ``bench_*`` module regenerates one of the paper's tables/figures
(DESIGN.md §3 maps them).  The reproduced series are printed to stdout
*and* written under ``benchmarks/results/`` so the textual figures
survive pytest's output capture; the ``benchmark`` fixture additionally
times a representative unit of each experiment.

Run counts here are deliberately smaller than the paper's 100 (recorded
in every result header); pass ``--paper-scale`` for full-size runs.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.experiments.scenarios import geolife_scenario, synthetic_scenario

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def pytest_addoption(parser):
    parser.addoption(
        "--paper-scale",
        action="store_true",
        default=False,
        help="use the paper's run counts (slow) instead of quick defaults",
    )
    parser.addoption(
        "--mixed-scenarios",
        type=int,
        default=4,
        help="distinct ScenarioSpecs in the mixed-tenant service load "
        "benchmark (bench_service_load.py::test_bench_service_load_mixed)",
    )
    parser.addoption(
        "--open-loop",
        action="store_true",
        default=False,
        help="run only the open-loop arrival benchmark in "
        "bench_service_load.py (the closed-loop load tests skip)",
    )
    parser.addoption(
        "--rate",
        type=float,
        default=None,
        help="offered Poisson arrival rate (steps/s) for the open-loop "
        "benchmark; default sweeps 0.5x / 1x / 2x the measured capacity",
    )


@pytest.fixture(scope="session")
def n_runs(request) -> int:
    """Runs per curve: 100 at paper scale, 5 for a quick pass."""
    return 100 if request.config.getoption("--paper-scale") else 5


@pytest.fixture(scope="session")
def save_result():
    """Persist a rendered experiment table and echo it to stdout."""
    os.makedirs(RESULTS_DIR, exist_ok=True)

    def _save(name: str, text: str) -> str:
        path = os.path.join(RESULTS_DIR, f"{name}.txt")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"\n{text}\n[saved to {path}]")
        return path

    return _save


#: The one JSON shape every bench writes, so the perf trajectory across
#: PRs stays machine-readable: {"benchmark", "schema", "params", "rows"}
#: with rows a list of flat dicts sharing one key set.
RESULTS_JSON_SCHEMA = 1


@pytest.fixture(scope="session")
def save_json():
    """Persist a benchmark's machine-readable results.

    ``_save(name, params, rows)`` writes ``results/<name>.json`` as
    ``{"benchmark": name, "schema": RESULTS_JSON_SCHEMA, "params": ...,
    "rows": [...]}`` -- flat JSON-safe dicts only.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)

    def _save(name: str, params: dict, rows: list[dict]) -> str:
        payload = {
            "benchmark": name,
            "schema": RESULTS_JSON_SCHEMA,
            "params": params,
            "rows": rows,
        }
        path = os.path.join(RESULTS_DIR, f"{name}.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"[json results saved to {path}]")
        return path

    return _save


@pytest.fixture(scope="session")
def paper_synthetic():
    """The paper's synthetic setting: 20x20 Gaussian map, T = 50."""
    return synthetic_scenario(n_rows=20, n_cols=20, sigma=1.0, horizon=50)


@pytest.fixture(scope="session")
def paper_geolife():
    """The Geolife-substitute setting (DESIGN.md §4), T = 50."""
    return geolife_scenario(n_users=6, n_days=3, cell_size_km=1.0, horizon=50, rng=0)
