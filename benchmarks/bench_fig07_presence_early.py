"""Fig. 7: budget per timestamp, PRESENCE(S={1:10}, T={4:8}), synthetic.

Panel (a): 0.2-PLM under epsilon in {0.1, 0.5, 1}; panel (b): PLM alpha in
{0.1, 0.5, 1} at epsilon = 0.5.  Expected shape: smaller epsilon forces
lower budgets; budget dips concentrate in/after the event window; a
strict PLM (alpha = 0.1) needs little calibration.
"""

import numpy as np

from repro.experiments.runners import run_budget_over_time


def _event(scenario):
    return scenario.presence_event(0, 9, 4, 8)


def test_fig07a_budget_vs_epsilon(paper_synthetic, n_runs, save_result, benchmark):
    scenario = paper_synthetic
    event = _event(scenario)

    def run():
        return run_budget_over_time(
            scenario,
            event,
            settings=[(f"eps={e}", 0.2, e) for e in (0.1, 0.5, 1.0)],
            n_runs=n_runs,
            seed=7,
            label=f"Fig. 7(a) 0.2-PLM, PRESENCE(S={{1:10}}, T={{4:8}}), {n_runs} runs",
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("fig07a_presence_early_budget_vs_epsilon", result.to_text())

    # Shape assertions (the paper's qualitative findings).
    means = {name: curve.mean() for name, curve in result.curves.items()}
    assert means["eps=0.1"] <= means["eps=0.5"] + 1e-9
    assert means["eps=0.5"] <= means["eps=1.0"] + 1e-9
    # Budgets never exceed the base mechanism's alpha.
    for curve in result.curves.values():
        assert np.all(curve <= 0.2 + 1e-12)


def test_fig07b_budget_vs_plm(paper_synthetic, n_runs, save_result, benchmark):
    scenario = paper_synthetic
    event = _event(scenario)

    def run():
        return run_budget_over_time(
            scenario,
            event,
            settings=[(f"alpha={a}", a, 0.5) for a in (0.1, 0.5, 1.0)],
            n_runs=n_runs,
            seed=7,
            label=f"Fig. 7(b) eps=0.5, varying PLM, {n_runs} runs",
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("fig07b_presence_early_budget_vs_plm", result.to_text())

    # A stricter PLM needs proportionally less calibration: the retained
    # fraction of its budget is at least that of the loosest PLM.
    retained = {
        name: result.curves[name].mean() / alpha
        for name, alpha in (("alpha=0.1", 0.1), ("alpha=1.0", 1.0))
    }
    assert retained["alpha=0.1"] >= retained["alpha=1.0"] - 1e-9
