"""Fig. 13: utility vs mobility-pattern strength (synthetic sigma sweep).

1-PLM with geo-indistinguishability; sigma in {0.01, 0.1, 1, 10}.
Expected shape: a significant mobility pattern (small sigma) makes the
event harder to protect, forcing smaller budgets; and "there is no best
LPPM for all epsilon in terms of Euclidean distance".
"""

from repro.experiments.runners import run_utility_sweep
from repro.experiments.scenarios import synthetic_scenario

EPSILONS = (0.1, 0.5, 1.0, 2.0)
SIGMAS = (0.01, 0.1, 1.0, 10.0)


def test_fig13_sigma_sweep(n_runs, save_result, benchmark):
    def run():
        return run_utility_sweep(
            scenario_for=lambda params: synthetic_scenario(
                n_rows=20, n_cols=20, sigma=params["sigma"], horizon=50
            ),
            events_for=lambda sc, params: [sc.presence_event(0, 9, 4, 8)],
            curve_settings=[
                (f"sigma={s}", {"alpha": 1.0, "sigma": s}) for s in SIGMAS
            ],
            epsilons=EPSILONS,
            n_runs=n_runs,
            seed=13,
            label=f"Fig. 13 synthetic, 1-PLM, sigma sweep, {n_runs} runs",
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("fig13_utility_vs_sigma", result.to_text())

    # Strong pattern (sigma = 0.01) retains no more budget than the
    # near-memoryless chain (sigma = 10) on average over the sweep.
    mean = lambda name: sum(result.budget_series[name]) / len(EPSILONS)
    assert mean("sigma=0.01") <= mean("sigma=10.0") + 0.1
