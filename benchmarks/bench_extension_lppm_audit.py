"""Extension experiment: event-privacy audit across LPPM families.

Not a paper table -- it substantiates the paper's *introduction*: LPPMs
tuned for location privacy provide wildly different (and sometimes zero)
spatiotemporal event privacy.  For one PRESENCE secret we measure the
realized Definition II.4 loss of four mechanism families plus the
adversary's localization quality, on the same walks.
"""

import numpy as np

from repro.attacks.inference import location_posteriors
from repro.core.quantify import quantify_fixed_prior
from repro.errors import ReproError
from repro.events.events import PresenceEvent
from repro.experiments.report import format_table
from repro.experiments.scenarios import synthetic_scenario
from repro.geo.regions import Region
from repro.lppm.cloaking import CloakingMechanism
from repro.lppm.exponential import ExponentialMechanism
from repro.lppm.planar_laplace import PlanarLaplaceMechanism
from repro.lppm.randomized_response import RandomizedResponseMechanism
from repro.metrics.privacy import expected_inference_error_km, top1_accuracy

HORIZON = 20


def test_extension_lppm_event_privacy_audit(n_runs, save_result, benchmark):
    scenario = synthetic_scenario(n_rows=8, n_cols=8, sigma=1.0, horizon=HORIZON)
    grid, chain, pi = scenario.grid, scenario.chain, scenario.initial
    event = PresenceEvent(
        Region.rectangle(grid, (0, 1), (0, 1)), start=5, end=8
    )
    mechanisms = {
        "1.0-PLM": PlanarLaplaceMechanism(grid, 1.0),
        "2.0-exponential": ExponentialMechanism.from_distance(grid, 2.0),
        "ln(8)-kRR": RandomizedResponseMechanism(grid.n_cells, float(np.log(8.0))),
        "cloaking-det": CloakingMechanism.k_anonymous(grid, k=4),
        "cloaking-noisy": CloakingMechanism.k_anonymous(
            grid, k=4, flip_probability=0.35
        ),
    }

    def audit():
        rng = np.random.default_rng(30)
        walks = [scenario.sample_trajectory(rng) for _ in range(max(5, n_runs))]
        rows = []
        for name, mechanism in mechanisms.items():
            losses, errors, hits = [], [], []
            for truth in walks:
                released = [mechanism.perturb(u, rng) for u in truth]
                try:
                    result = quantify_fixed_prior(
                        chain, event, mechanism, released, pi, horizon=HORIZON
                    )
                    losses.append(result.epsilon)
                except ReproError:
                    losses.append(float("inf"))
                posteriors = location_posteriors(chain, pi, mechanism, released)
                errors.append(expected_inference_error_km(posteriors, truth, grid))
                hits.append(top1_accuracy(posteriors, truth))
            worst = max(losses)
            rows.append(
                {
                    "mechanism": name,
                    "event eps (worst)": "inf" if np.isinf(worst) else round(worst, 2),
                    "adv. err km": round(float(np.mean(errors)), 3),
                    "adv. top-1": round(float(np.mean(hits)), 3),
                }
            )
        return rows

    rows = benchmark.pedantic(audit, rounds=1, iterations=1)
    headers = list(rows[0].keys())
    save_result(
        "extension_lppm_event_privacy_audit",
        format_table(
            headers,
            [[row[h] for h in headers] for row in rows],
            title="Extension: event-privacy audit of LPPM families",
        ),
    )

    by_name = {row["mechanism"]: row for row in rows}
    # The paper's motivating gap: deterministic cloaking localizes well
    # AND leaks the aligned event completely.
    assert by_name["cloaking-det"]["event eps (worst)"] == "inf"
    # Every randomized mechanism keeps the loss finite.
    for name in ("1.0-PLM", "2.0-exponential", "ln(8)-kRR", "cloaking-noisy"):
        assert by_name[name]["event eps (worst)"] != "inf"
    # k-RR is distance-oblivious: worst localization error of the family.
    errs = {name: row["adv. err km"] for name, row in by_name.items()}
    assert errs["ln(8)-kRR"] == max(errs.values())
