"""Table III: the conservative-release threshold trade-off.

The paper limits CPLEX's per-check time and refuses to release unless the
Eq. (15)/(16) conditions are *proven*; sweeping the threshold trades
runtime for utility.  Our exact solver is orders of magnitude faster than
CPLEX on these rank-one programs, so thresholds additionally map to
work limits (edge evaluations) to exercise the same regime -- see
``run_conservative_release_table``.

Expected shape: threshold up => conservative releases down, total runtime
up, calibrated budgets (weakly) up.
"""

from repro.experiments.runners import run_conservative_release_table
from repro.experiments.scenarios import synthetic_scenario

THRESHOLDS = (0.01, 0.1, 1.0, 2.0, 5.0, None)


def test_table3_threshold_tradeoff(n_runs, save_result, benchmark):
    scenario = synthetic_scenario(n_rows=20, n_cols=20, sigma=1.0, horizon=20)
    event = scenario.presence_event(0, 9, 4, 8)

    def run():
        return run_conservative_release_table(
            scenario,
            event,
            thresholds=THRESHOLDS,
            alpha=0.5,
            epsilon=0.5,
            n_runs=max(2, n_runs // 2),
            seed=15,
        )

    table, rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("table3_conservative_release", table)

    by_threshold = {row["threshold"]: row for row in rows}
    # The unlimited solver never needs a conservative fallback.
    assert by_threshold["none"]["# conservative release"] == 0
    # The tightest threshold produces at least as many conservative
    # releases as the loosest finite one.
    assert (
        by_threshold["0.01"]["# conservative release"]
        >= by_threshold["5.0"]["# conservative release"]
    )
    # Work-limited runs cannot retain more budget than exact solving.
    assert (
        by_threshold["0.01"]["ave. privacy budget"]
        <= by_threshold["none"]["ave. privacy budget"] + 0.05
    )
