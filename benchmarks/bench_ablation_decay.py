"""Ablation: the budget decay rate of Algorithm 2.

The paper (Section IV-C): "decay rate 1/2 for the privacy budget in line
10 of Algorithm 2 is a tunable parameter that provides a trade-off
between efficiency and utility.  Setting a small value allows the
algorithm converge faster, but at the cost of over-perturbing ...; using
a large value is less efficient but allows better utility."

This ablation sweeps the decay and checks exactly that trade-off:
smaller decay => fewer calibration attempts (efficiency), lower kept
budget (utility).
"""

import numpy as np

from repro.core.priste import PriSTE, PriSTEConfig
from repro.experiments.report import format_table
from repro.experiments.scenarios import synthetic_scenario
from repro.lppm.planar_laplace import PlanarLaplaceMechanism

DECAYS = (0.2, 0.5, 0.8)


def test_ablation_decay_tradeoff(n_runs, save_result, benchmark):
    scenario = synthetic_scenario(n_rows=10, n_cols=10, sigma=1.0, horizon=20)
    event = scenario.presence_event(0, 9, 4, 8)
    rng = np.random.default_rng(20)
    trajectories = [scenario.sample_trajectory(rng) for _ in range(max(3, n_runs))]

    def sweep():
        rows = []
        for decay in DECAYS:
            config = PriSTEConfig(
                epsilon=0.3,
                decay=decay,
                prior_mode="fixed",
                prior=scenario.initial,
            )
            priste = PriSTE(
                scenario.chain,
                event,
                PlanarLaplaceMechanism(scenario.grid, 1.0),
                config,
                scenario.horizon,
            )
            logs = [priste.run(trajectory, rng) for trajectory in trajectories]
            attempts = np.mean(
                [r.n_attempts for log in logs for r in log.records]
            )
            rows.append(
                {
                    "decay": decay,
                    "ave. attempts per t": round(float(attempts), 3),
                    "ave. kept budget": round(
                        float(np.mean([log.average_budget for log in logs])), 4
                    ),
                    "ave. error km": round(
                        float(
                            np.mean(
                                [
                                    log.euclidean_error_km(scenario.grid, truth)
                                    for log, truth in zip(logs, trajectories)
                                ]
                            )
                        ),
                        3,
                    ),
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    headers = list(rows[0].keys())
    table = format_table(
        headers,
        [[row[h] for h in headers] for row in rows],
        title="Ablation: Algorithm 2 decay rate (epsilon=0.3, 1.0-PLM)",
    )
    save_result("ablation_decay_rate", table)

    by_decay = {row["decay"]: row for row in rows}
    # Aggressive decay converges in fewer attempts...
    assert (
        by_decay[0.2]["ave. attempts per t"]
        <= by_decay[0.8]["ave. attempts per t"] + 1e-9
    )
    # ...but over-perturbs (keeps less budget).
    assert (
        by_decay[0.2]["ave. kept budget"]
        <= by_decay[0.8]["ave. kept budget"] + 1e-9
    )
