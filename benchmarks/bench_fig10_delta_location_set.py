"""Fig. 10: PriSTE with delta-location set privacy (Algorithm 3).

Same event as Fig. 7 on a T = 20 horizon.  Expected shape: because the
delta-location set restricts the output domain (a weaker location-privacy
guarantee), the same alpha-PLM must reduce its budget *more* than under
plain geo-indistinguishability to reach the same epsilon.
"""

from repro.experiments.runners import run_budget_over_time
from repro.experiments.scenarios import synthetic_scenario


def test_fig10a_delta_budget_vs_epsilon(n_runs, save_result, benchmark):
    scenario = synthetic_scenario(n_rows=20, n_cols=20, sigma=1.0, horizon=20)
    event = scenario.presence_event(0, 9, 4, 8)

    def run():
        return run_budget_over_time(
            scenario,
            event,
            settings=[(f"eps={e}", 0.2, e) for e in (0.1, 0.5, 1.0)],
            n_runs=n_runs,
            mechanism="delta",
            delta=0.2,
            seed=10,
            label=(
                f"Fig. 10(a) 0.2-PLM with delta-location set (delta=0.2), "
                f"{n_runs} runs"
            ),
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("fig10a_delta_location_set_vs_epsilon", result.to_text())

    means = {name: curve.mean() for name, curve in result.curves.items()}
    assert means["eps=0.1"] <= means["eps=1.0"] + 1e-9

    # Comparison with Fig. 7's geo-ind variant: the delta-restricted
    # mechanism retains at most as much budget.
    geoind = run_budget_over_time(
        scenario,
        event,
        settings=[("eps=0.5", 0.2, 0.5)],
        n_runs=n_runs,
        mechanism="geoind",
        seed=10,
        label="geo-ind comparator",
    )
    assert (
        result.curves["eps=0.5"].mean()
        <= geoind.curves["eps=0.5"].mean() + 0.02
    )


def test_fig10b_delta_budget_vs_plm(n_runs, save_result, benchmark):
    scenario = synthetic_scenario(n_rows=20, n_cols=20, sigma=1.0, horizon=20)
    event = scenario.presence_event(0, 9, 4, 8)

    def run():
        return run_budget_over_time(
            scenario,
            event,
            settings=[(f"alpha={a}", a, 0.5) for a in (0.1, 0.5, 1.0)],
            n_runs=n_runs,
            mechanism="delta",
            delta=0.2,
            seed=10,
            label=(
                f"Fig. 10(b) varying PLM with delta-location set, eps=0.5, "
                f"{n_runs} runs"
            ),
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("fig10b_delta_location_set_vs_plm", result.to_text())
    assert set(result.curves) == {"alpha=0.1", "alpha=0.5", "alpha=1.0"}
