"""Appendix: PATTERN-event analogues of the PRESENCE experiments.

The paper's main text reports PRESENCE results and defers PATTERN to the
appendix ("Due to space limitation, the results of protecting PATTERN
event are included in Appendices").  Same setup as Figs. 7/11 with a
PATTERN event: the user passes through region {1:10} and then {11:20} on
consecutive timestamps.
"""

from repro.experiments.runners import run_budget_over_time, run_utility_sweep


def _pattern(scenario):
    return scenario.pattern_event([(0, 9), (10, 19)] * 2, start=4)


def test_appendix_pattern_budget_over_time(
    paper_synthetic, n_runs, save_result, benchmark
):
    scenario = paper_synthetic
    event = _pattern(scenario)
    assert event.window == (4, 7)

    def run():
        return run_budget_over_time(
            scenario,
            event,
            settings=[(f"eps={e}", 0.2, e) for e in (0.1, 0.5, 1.0)],
            n_runs=n_runs,
            seed=16,
            label=f"Appendix: PATTERN({{1:10}} -> {{11:20}} x2, T={{4:7}}), {n_runs} runs",
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("appendix_pattern_budget_over_time", result.to_text())

    means = {name: curve.mean() for name, curve in result.curves.items()}
    assert means["eps=0.1"] <= means["eps=1.0"] + 1e-9


def test_appendix_pattern_utility_sweep(
    paper_synthetic, n_runs, save_result, benchmark
):
    scenario = paper_synthetic

    def run():
        return run_utility_sweep(
            scenario_for=lambda params: scenario,
            events_for=lambda sc, params: [_pattern(sc)],
            curve_settings=[(f"{a}-PLM", {"alpha": a}) for a in (0.5, 1.0, 3.0)],
            epsilons=(0.1, 0.5, 1.0, 2.0),
            n_runs=n_runs,
            seed=16,
            label=f"Appendix: PATTERN utility vs epsilon, {n_runs} runs",
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("appendix_pattern_utility_sweep", result.to_text())
    for budgets in result.budget_series.values():
        assert budgets[-1] >= budgets[0] - 0.05
