"""Fig. 11: Geolife -- average budget and Euclidean error vs epsilon.

PLM family alpha in {0.5, 1, 3, 5}, epsilon in {0.1, 0.5, 1, 2}.
Expected shapes: average budget grows with epsilon; larger-alpha PLMs are
calibrated more heavily at strict epsilon; and crucially the budget
ordering need NOT match the Euclidean-distance ordering ("PLMs who have
larger average budgets may not necessarily have better utility").
"""

import numpy as np

from repro.experiments.runners import run_utility_sweep

EPSILONS = (0.1, 0.5, 1.0, 2.0)
ALPHAS = (0.5, 1.0, 3.0, 5.0)


def test_fig11_geolife_utility(paper_geolife, n_runs, save_result, benchmark):
    scenario = paper_geolife

    def run():
        return run_utility_sweep(
            scenario_for=lambda params: scenario,
            events_for=lambda sc, params: [sc.presence_event(0, 9, 4, 8)],
            curve_settings=[(f"{a}-PLM", {"alpha": a}) for a in ALPHAS],
            epsilons=EPSILONS,
            n_runs=n_runs,
            seed=11,
            label=(
                f"Fig. 11 Geolife PRESENCE(S={{1:10}}, T={{4:8}}), "
                f"{n_runs} runs ({scenario.source})"
            ),
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("fig11_geolife_utility_vs_epsilon", result.to_text())

    # Budget grows (weakly) with epsilon for every PLM family.
    for name, budgets in result.budget_series.items():
        assert budgets[-1] >= budgets[0] - 0.05, name

    # Errors stay within the map scale (sanity on the km geometry).
    for errors in result.error_series.values():
        assert np.all(np.asarray(errors) >= 0)
