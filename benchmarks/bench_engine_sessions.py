"""SessionManager throughput: the streaming engine's hot path.

Not a paper figure: tracks the multi-session fan-out added by
``repro.engine`` -- sessions/sec and steps/sec at 10 / 100 / 1000
concurrent sessions, plus the shared verdict-cache hit rate.  The
trajectories are chain samples, so sessions overlap statistically and
the cache sees realistic (not adversarial, not identical) traffic.
"""

import time

import numpy as np
import pytest

from repro.engine import SessionBuilder, SessionManager
from repro.experiments.report import format_table
from repro.lppm.planar_laplace import PlanarLaplaceMechanism
from repro.markov.simulate import sample_trajectory

HORIZON = 12
SESSION_COUNTS = (10, 100, 1000)


@pytest.fixture(scope="module")
def engine_setting():
    from repro.experiments.scenarios import synthetic_scenario

    scenario = synthetic_scenario(n_rows=8, n_cols=8, sigma=1.0, horizon=HORIZON)
    event = scenario.presence_event(0, 9, 4, 8)
    builder = (
        SessionBuilder()
        .with_grid(scenario.grid)
        .with_chain(scenario.chain)
        .protecting(event)
        .with_mechanism(PlanarLaplaceMechanism(scenario.grid, 0.5))
        .with_epsilon(0.4)
        .with_fixed_prior(scenario.initial)
        .with_horizon(HORIZON)
    )
    return scenario, builder


def _drive_fleet(scenario, builder, n_sessions: int, seed: int):
    """Open, fully step and finish ``n_sessions`` sessions; return stats."""
    rng = np.random.default_rng(seed)
    trajectories = {
        f"u{i}": sample_trajectory(
            scenario.chain, HORIZON, initial=scenario.initial, rng=rng
        )
        for i in range(n_sessions)
    }
    manager = SessionManager(builder)
    t0 = time.perf_counter()
    for i, name in enumerate(trajectories):
        manager.open(name, rng=seed + i)
    for t in range(HORIZON):
        manager.step_all({name: traj[t] for name, traj in trajectories.items()})
    logs = manager.finish_all()
    elapsed = time.perf_counter() - t0
    stats = manager.cache_stats()
    assert len(logs) == n_sessions
    assert all(len(log) == HORIZON for log in logs.values())
    return elapsed, stats


def test_bench_session_manager_throughput(engine_setting, save_result, benchmark):
    scenario, builder = engine_setting
    rows = []
    for n_sessions in SESSION_COUNTS:
        elapsed, stats = _drive_fleet(scenario, builder, n_sessions, seed=0)
        steps = n_sessions * HORIZON
        rows.append(
            [
                n_sessions,
                round(elapsed, 4),
                round(n_sessions / elapsed, 1),
                round(steps / elapsed, 1),
                round(stats.hit_rate, 4) if stats else "off",
            ]
        )
    table = format_table(
        ["sessions", "wall s", "sessions/s", "steps/s", "cache hit rate"],
        rows,
        title=(
            f"SessionManager throughput (8x8 map, T={HORIZON}, "
            "0.5-PLM, eps=0.4 fixed prior)"
        ),
    )
    save_result("bench_engine_sessions", table)

    # The timed representative unit: one full 100-session fleet.
    benchmark(lambda: _drive_fleet(scenario, builder, 100, seed=1))
