"""SessionManager throughput: the streaming engine's hot path.

Not a paper figure: tracks the multi-session fan-out added by
``repro.engine`` -- sessions/sec and steps/sec at 10 / 100 / 1000
concurrent sessions, plus the shared verdict-cache hit rate.  The
trajectories are chain samples, so sessions overlap statistically and
the cache sees realistic (not adversarial, not identical) traffic.

The batched mode (``test_bench_session_manager_batched``) compares
``step_all`` (per-session sequential loop) against ``step_many`` (the
vectorized batch pipeline: stacked front propagation, lockstep
calibration rounds, batched Theorem IV.1 solver calls) on one large map
(16x16, m=256) with 100+ concurrent sessions, asserting the release
logs are bit-identical before trusting either timing.
"""

import time

import numpy as np
import pytest

from repro.engine import SessionBuilder, SessionManager
from repro.experiments.report import format_table
from repro.lppm.planar_laplace import PlanarLaplaceMechanism
from repro.markov.simulate import sample_trajectory

HORIZON = 12
SESSION_COUNTS = (10, 100, 1000)

#: Batched-mode workload: m >= 256 map with >= 100 concurrent sessions.
BATCHED_GRID = 16
BATCHED_HORIZON = 4
BATCHED_SESSIONS = 100


@pytest.fixture(scope="module")
def engine_setting():
    from repro.experiments.scenarios import synthetic_scenario

    scenario = synthetic_scenario(n_rows=8, n_cols=8, sigma=1.0, horizon=HORIZON)
    event = scenario.presence_event(0, 9, 4, 8)
    builder = (
        SessionBuilder()
        .with_grid(scenario.grid)
        .with_chain(scenario.chain)
        .protecting(event)
        .with_mechanism(PlanarLaplaceMechanism(scenario.grid, 0.5))
        .with_epsilon(0.4)
        .with_fixed_prior(scenario.initial)
        .with_horizon(HORIZON)
    )
    return scenario, builder


def _drive_fleet(scenario, builder, n_sessions: int, seed: int):
    """Open, fully step and finish ``n_sessions`` sessions; return stats."""
    rng = np.random.default_rng(seed)
    trajectories = {
        f"u{i}": sample_trajectory(
            scenario.chain, HORIZON, initial=scenario.initial, rng=rng
        )
        for i in range(n_sessions)
    }
    manager = SessionManager(builder)
    t0 = time.perf_counter()
    for i, name in enumerate(trajectories):
        manager.open(name, rng=seed + i)
    for t in range(HORIZON):
        manager.step_all({name: traj[t] for name, traj in trajectories.items()})
    logs = manager.finish_all()
    elapsed = time.perf_counter() - t0
    stats = manager.cache_stats()
    assert len(logs) == n_sessions
    assert all(len(log) == HORIZON for log in logs.values())
    return elapsed, stats


def test_bench_session_manager_throughput(engine_setting, save_result, benchmark):
    scenario, builder = engine_setting
    rows = []
    for n_sessions in SESSION_COUNTS:
        elapsed, stats = _drive_fleet(scenario, builder, n_sessions, seed=0)
        steps = n_sessions * HORIZON
        rows.append(
            [
                n_sessions,
                round(elapsed, 4),
                round(n_sessions / elapsed, 1),
                round(steps / elapsed, 1),
                round(stats.hit_rate, 4) if stats else "off",
            ]
        )
    table = format_table(
        ["sessions", "wall s", "sessions/s", "steps/s", "cache hit rate"],
        rows,
        title=(
            f"SessionManager throughput (8x8 map, T={HORIZON}, "
            "0.5-PLM, eps=0.4 fixed prior)"
        ),
    )
    save_result("bench_engine_sessions", table)

    # The timed representative unit: one full 100-session fleet.
    benchmark(lambda: _drive_fleet(scenario, builder, 100, seed=1))


# ----------------------------------------------------------------------
# batched mode: step_many vs step_all at m = 256
# ----------------------------------------------------------------------
def _strip(records):
    return [
        (
            r.t,
            r.true_cell,
            r.released_cell,
            r.budget,
            r.n_attempts,
            r.conservative,
            r.forced_uniform,
        )
        for r in records
    ]


def _drive_mode(scenario, builder, trajectories, horizon, batched):
    manager = SessionManager(builder)
    for index, name in enumerate(trajectories):
        manager.open(name, rng=1000 + index)
    step = manager.step_many if batched else manager.step_all
    t0 = time.perf_counter()
    for t in range(horizon):
        step({name: trajectory[t] for name, trajectory in trajectories.items()})
    elapsed = time.perf_counter() - t0
    logs = {
        sid: _strip(log.records) for sid, log in manager.finish_all().items()
    }
    return elapsed, logs


def test_bench_session_manager_batched(save_result, save_json, request):
    from repro.experiments.scenarios import synthetic_scenario

    n_sessions = (
        200 if request.config.getoption("--paper-scale") else BATCHED_SESSIONS
    )
    horizon = 8 if request.config.getoption("--paper-scale") else BATCHED_HORIZON
    scenario = synthetic_scenario(
        n_rows=BATCHED_GRID, n_cols=BATCHED_GRID, sigma=1.0, horizon=horizon
    )
    event = scenario.presence_event(0, 9, 2, 3)
    rng = np.random.default_rng(0)
    trajectories = {
        f"u{i}": sample_trajectory(
            scenario.chain, horizon, initial=scenario.initial, rng=rng
        )
        for i in range(n_sessions)
    }

    rows = []
    logs_by_mode: dict[tuple[str, bool], dict] = {}
    for prior in ("worst_case", "fixed"):
        builder = (
            SessionBuilder()
            .with_grid(scenario.grid)
            .with_chain(scenario.chain)
            .protecting(event)
            .with_mechanism(PlanarLaplaceMechanism(scenario.grid, 0.5))
            .with_epsilon(0.4)
            .with_horizon(horizon)
        )
        if prior == "fixed":
            builder.with_fixed_prior(scenario.initial)
        timings = {}
        for batched in (False, True):
            # Best of two runs: single-core CI boxes are noisy and the
            # first run also pays the mechanism-ladder warm-up.
            best, logs = None, None
            for _ in range(2):
                elapsed, run_logs = _drive_mode(
                    scenario, builder, trajectories, horizon, batched
                )
                if best is None or elapsed < best:
                    best, logs = elapsed, run_logs
            timings[batched] = best
            logs_by_mode[(prior, batched)] = logs
        # The point of the pipeline: identical streams, faster wall.
        assert logs_by_mode[(prior, True)] == logs_by_mode[(prior, False)]
        steps = n_sessions * horizon
        for batched in (False, True):
            rows.append(
                {
                    "prior": prior,
                    "mode": "step_many" if batched else "step_all",
                    "sessions": n_sessions,
                    "m": BATCHED_GRID * BATCHED_GRID,
                    "steps": steps,
                    "wall_s": round(timings[batched], 4),
                    "steps_per_s": round(steps / timings[batched], 1),
                    "speedup_vs_sequential": round(
                        timings[False] / timings[batched], 2
                    ),
                }
            )

    columns = [
        "prior", "mode", "sessions", "m", "steps",
        "wall_s", "steps_per_s", "speedup_vs_sequential",
    ]
    table = format_table(
        columns,
        [[row[c] for c in columns] for row in rows],
        title=(
            f"step_many vs step_all ({BATCHED_GRID}x{BATCHED_GRID} map, "
            f"m={BATCHED_GRID * BATCHED_GRID}, {n_sessions} sessions, "
            f"T={horizon}, 0.5-PLM, eps=0.4; logs asserted bit-identical)"
        ),
    )
    save_result("bench_engine_sessions_batched", table)
    save_json(
        "bench_engine_sessions_batched",
        params={
            "grid": [BATCHED_GRID, BATCHED_GRID],
            "sessions": n_sessions,
            "horizon": horizon,
            "epsilon": 0.4,
            "alpha": 0.5,
            # Context for the recorded speedups: measured on the PR's
            # dev box (1 CPU), the seed per-session pipeline (dense-pair
            # solver, per-event check loop) ran this worst-case workload
            # at ~57 steps/s; the batched pipeline exceeds 3x that.
            # Re-measure locally with `git worktree` on the pre-PR
            # commit to reproduce; speedup_vs_sequential compares
            # today's two modes on the same machine.
            "seed_pipeline_reference_steps_per_s": 57.0,
        },
        rows=rows,
    )
    for row in rows:
        if row["mode"] == "step_many":
            assert row["speedup_vs_sequential"] >= 0.9, row


# ----------------------------------------------------------------------
# sparse-chain mode: CSR vs dense front propagation on a lazy walk
# ----------------------------------------------------------------------

#: Sparse-mode workload: 12x12 lazy walk (m = 144, density ~0.056) --
#: the banded-chain regime the CSR front-propagation path targets.
SPARSE_GRID = 12
SPARSE_HORIZON = 4
SPARSE_SESSIONS = 60


def test_bench_session_manager_sparse_chain(
    save_result, save_json, monkeypatch
):
    """Dense vs CSR front propagation on a banded lazy-walk chain.

    ``REPRO_SPARSE_FRONT`` is resolved once per model at construction,
    so each mode builds its own manager; the release streams must agree
    before either timing counts (the two backends differ by ulps in the
    propagated fronts, which the verdict margins absorb).
    """
    from repro.geo.grid import GridMap
    from repro.geo.regions import Region
    from repro.events.events import PresenceEvent
    from repro.markov.synthetic import lazy_random_walk_transitions

    grid = GridMap(SPARSE_GRID, SPARSE_GRID, cell_size_km=1.0)
    m = grid.n_cells
    chain = lazy_random_walk_transitions(grid, stay_probability=0.3)
    initial = np.full(m, 1.0 / m)
    rng = np.random.default_rng(2)
    trajectories = {
        f"u{i}": sample_trajectory(
            chain, SPARSE_HORIZON, initial=initial, rng=rng
        )
        for i in range(SPARSE_SESSIONS)
    }

    def build():
        return (
            SessionBuilder()
            .with_grid(grid)
            .with_chain(chain)
            .protecting(
                PresenceEvent(Region.from_range(m, 0, 18), start=2, end=3)
            )
            .with_mechanism(PlanarLaplaceMechanism(grid, 0.5))
            .with_epsilon(0.4)
            .with_worst_case_prior()
            .with_horizon(SPARSE_HORIZON)
        )

    rows = []
    logs_by_mode = {}
    timings = {}
    for mode in ("never", "always"):
        monkeypatch.setenv("REPRO_SPARSE_FRONT", mode)
        best, logs = None, None
        for _ in range(2):
            elapsed, run_logs = _drive_mode(
                None, build(), trajectories, SPARSE_HORIZON, batched=True
            )
            if best is None or elapsed < best:
                best, logs = elapsed, run_logs
        timings[mode] = best
        logs_by_mode[mode] = logs
    assert logs_by_mode["always"] == logs_by_mode["never"]

    steps = SPARSE_SESSIONS * SPARSE_HORIZON
    for mode in ("never", "always"):
        rows.append(
            {
                "front": "sparse" if mode == "always" else "dense",
                "sessions": SPARSE_SESSIONS,
                "m": m,
                "steps": steps,
                "wall_s": round(timings[mode], 4),
                "steps_per_s": round(steps / timings[mode], 1),
                "speedup_vs_dense": round(timings["never"] / timings[mode], 2),
            }
        )

    columns = [
        "front", "sessions", "m", "steps",
        "wall_s", "steps_per_s", "speedup_vs_dense",
    ]
    table = format_table(
        columns,
        [[row[c] for c in columns] for row in rows],
        title=(
            f"Sparse front propagation ({SPARSE_GRID}x{SPARSE_GRID} lazy "
            f"walk, m={m}, {SPARSE_SESSIONS} sessions, worst-case prior; "
            "release streams asserted identical)"
        ),
    )
    save_result("bench_engine_sessions_sparse", table)
    save_json(
        "bench_engine_sessions_sparse",
        params={
            "grid": [SPARSE_GRID, SPARSE_GRID],
            "sessions": SPARSE_SESSIONS,
            "horizon": SPARSE_HORIZON,
            "stay_probability": 0.3,
            "epsilon": 0.4,
            "alpha": 0.5,
        },
        rows=rows,
    )
    # CSR routing must never cost more than a small constant factor.
    assert timings["always"] <= timings["never"] * 1.3, timings
