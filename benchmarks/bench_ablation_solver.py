"""Ablation: solver design choices (DESIGN.md §4-5).

1. The O(m) sufficient certificate vs the exact O(m^2) edge solver:
   how often the cheap path already certifies safety, and its speedup.
2. The simplex feasible set vs the paper's literal box formulation:
   the box heuristic must never call VIOLATED on a simplex-safe
   condition with a negative interval bound, and is strictly weaker at
   certifying.
"""

import time

import numpy as np

from repro.core.joint import EventQuantifier
from repro.core.qp import SolverOptions, SolverStatus, check_condition
from repro.core.theorem import privacy_conditions, sufficient_safe
from repro.core.two_world import TwoWorldModel
from repro.experiments.report import format_table
from repro.experiments.scenarios import synthetic_scenario
from repro.lppm.planar_laplace import PlanarLaplaceMechanism


def _condition_stream(n_alphas=6, horizon=10):
    """Realistic (a, b, c, eps) instances from PriSTE-like runs."""
    scenario = synthetic_scenario(n_rows=8, n_cols=8, sigma=1.0, horizon=horizon)
    event = scenario.presence_event(0, 7, 3, 6)
    model = TwoWorldModel(scenario.chain, event, horizon)
    rng = np.random.default_rng(21)
    stream = []
    for alpha in np.linspace(0.05, 1.5, n_alphas):
        lppm = PlanarLaplaceMechanism(scenario.grid, float(alpha))
        quantifier = EventQuantifier(model)
        a = quantifier.a_vector()
        for t in range(1, horizon + 1):
            quantifier.prepare(t)
            output = int(rng.integers(scenario.grid.n_cells))
            column = lppm.emission_column(output)
            b, c = quantifier.candidate_bc(t, column)
            stream.append((a, b, c, 0.5))
            quantifier.commit(t, column)
    return stream


def test_ablation_certificate_vs_exact(save_result, benchmark):
    stream = _condition_stream()

    def evaluate():
        certified = exact_safe = agree = 0
        cert_time = exact_time = 0.0
        for a, b, c, eps in stream:
            t0 = time.perf_counter()
            quick = sufficient_safe(a, b, c, eps)
            cert_time += time.perf_counter() - t0
            t0 = time.perf_counter()
            statuses = [
                check_condition(cond, SolverOptions()).status
                for cond in privacy_conditions(a, b, c, eps)
            ]
            exact_time += time.perf_counter() - t0
            exact = all(s is SolverStatus.SAFE for s in statuses)
            certified += quick
            exact_safe += exact
            agree += quick <= exact  # certificate is sound: quick => exact
        return certified, exact_safe, agree, cert_time, exact_time

    certified, exact_safe, agree, cert_time, exact_time = benchmark.pedantic(
        evaluate, rounds=1, iterations=1
    )
    n = len(_condition_stream())
    table = format_table(
        ["metric", "value"],
        [
            ["conditions checked", n],
            ["certified by O(m) fast path", certified],
            ["safe per exact solver", exact_safe],
            ["soundness violations (must be 0)", n - agree],
            ["fast-path time (s)", round(cert_time, 4)],
            ["exact-solver time (s)", round(exact_time, 4)],
            ["speedup of fast path", round(exact_time / max(cert_time, 1e-9), 1)],
        ],
        title="Ablation: sufficient certificate vs exact edge solver",
    )
    save_result("ablation_certificate_vs_exact", table)
    assert n - agree == 0  # the certificate never contradicts the solver
    assert certified <= exact_safe  # strictly conservative


def test_ablation_simplex_vs_box(save_result, benchmark):
    stream = _condition_stream(n_alphas=4, horizon=8)

    def evaluate():
        counts = {"simplex": {}, "box": {}}
        unsound = 0
        for a, b, c, eps in stream:
            for cond in privacy_conditions(a, b, c, eps):
                simplex = check_condition(cond, SolverOptions()).status
                box = check_condition(
                    cond, SolverOptions(constraint="box")
                ).status
                counts["simplex"][simplex.value] = (
                    counts["simplex"].get(simplex.value, 0) + 1
                )
                counts["box"][box.value] = counts["box"].get(box.value, 0) + 1
                # The box relaxation may flag more violations (its
                # feasible set is a superset when sum != 1 is allowed),
                # but a box-SAFE verdict must never contradict an exact
                # simplex violation.
                if box is SolverStatus.SAFE and simplex is SolverStatus.VIOLATED:
                    unsound += 1
        return counts, unsound

    counts, unsound = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    rows = []
    for status in ("safe", "violated", "unknown"):
        rows.append(
            [status, counts["simplex"].get(status, 0), counts["box"].get(status, 0)]
        )
    table = format_table(
        ["status", "simplex (exact)", "box (heuristic)"],
        rows,
        title="Ablation: feasible-set choice for Theorem IV.1",
    )
    save_result("ablation_simplex_vs_box", table)
    assert unsound == 0
