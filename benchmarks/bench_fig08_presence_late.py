"""Fig. 8: as Fig. 7 but the event window is late (T = {16:20}).

Comparing with Fig. 7 shows budget reductions tracking the event window
("privacy budgets trend to be reduced during the defined time periods"),
the observation that motivates PriSTE's local-model requirement.
"""

import numpy as np

from repro.experiments.runners import run_budget_over_time


def test_fig08a_budget_vs_epsilon(paper_synthetic, n_runs, save_result, benchmark):
    scenario = paper_synthetic
    event = scenario.presence_event(0, 9, 16, 20)

    def run():
        return run_budget_over_time(
            scenario,
            event,
            settings=[(f"eps={e}", 0.2, e) for e in (0.1, 0.5, 1.0)],
            n_runs=n_runs,
            seed=8,
            label=f"Fig. 8(a) 0.2-PLM, PRESENCE(S={{1:10}}, T={{16:20}}), {n_runs} runs",
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("fig08a_presence_late_budget_vs_epsilon", result.to_text())

    means = {name: curve.mean() for name, curve in result.curves.items()}
    assert means["eps=0.1"] <= means["eps=0.5"] + 1e-9
    assert means["eps=0.5"] <= means["eps=1.0"] + 1e-9
    # (The paper's window-tracking observation -- dips concentrating in
    # the {16:20} window -- is visible in the saved series but too noisy
    # to assert at quick-pass run counts.)


def test_fig08b_budget_vs_plm(paper_synthetic, n_runs, save_result, benchmark):
    scenario = paper_synthetic
    event = scenario.presence_event(0, 9, 16, 20)

    def run():
        return run_budget_over_time(
            scenario,
            event,
            settings=[(f"alpha={a}", a, 0.5) for a in (0.1, 0.5, 1.0)],
            n_runs=n_runs,
            seed=8,
            label=f"Fig. 8(b) eps=0.5, varying PLM, late window, {n_runs} runs",
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("fig08b_presence_late_budget_vs_plm", result.to_text())
    for name, alpha in (("alpha=0.1", 0.1), ("alpha=0.5", 0.5), ("alpha=1.0", 1.0)):
        assert np.all(result.curves[name] <= alpha + 1e-12)
