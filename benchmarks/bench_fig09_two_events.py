"""Fig. 9: protecting two PRESENCE events simultaneously.

The calibration must satisfy the epsilon conditions of both events at
every timestamp, so utility is strictly worse than protecting either
event alone ("the utility is much worse than protecting each single
event").
"""


from repro.experiments.runners import run_budget_over_time


def test_fig09_two_events_cost(paper_synthetic, n_runs, save_result, benchmark):
    scenario = paper_synthetic
    early = scenario.presence_event(0, 9, 4, 8)
    late = scenario.presence_event(0, 9, 16, 20)

    def run_two():
        return run_budget_over_time(
            scenario,
            [early, late],
            settings=[(f"eps={e}", 0.2, e) for e in (0.1, 0.5, 1.0)],
            n_runs=n_runs,
            seed=9,
            label=f"Fig. 9 two PRESENCE events, 0.2-PLM, {n_runs} runs",
        )

    two = benchmark.pedantic(run_two, rounds=1, iterations=1)
    save_result("fig09_two_events_budget_vs_epsilon", two.to_text())

    single = run_budget_over_time(
        scenario,
        early,
        settings=[("eps=0.5", 0.2, 0.5)],
        n_runs=n_runs,
        seed=9,
        label="single-event comparator",
    )
    # Protecting both events cannot beat protecting one of them.
    assert (
        two.curves["eps=0.5"].mean()
        <= single.curves["eps=0.5"].mean() + 1e-9
    )


def test_fig09b_two_events_vs_plm(paper_synthetic, n_runs, save_result, benchmark):
    scenario = paper_synthetic
    events = [
        scenario.presence_event(0, 9, 4, 8),
        scenario.presence_event(0, 9, 16, 20),
    ]

    def run():
        return run_budget_over_time(
            scenario,
            events,
            settings=[(f"alpha={a}", a, 0.5) for a in (0.1, 0.5, 1.0)],
            n_runs=n_runs,
            seed=9,
            label=f"Fig. 9(b) two events, eps=0.5, varying PLM, {n_runs} runs",
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("fig09b_two_events_budget_vs_plm", result.to_text())
    assert set(result.curves) == {"alpha=0.1", "alpha=0.5", "alpha=1.0"}
