"""`repro serve` under load: sustained steps/sec and latency percentiles.

Not a paper figure: tracks the serving layer added over the session
engine.  A load generator opens 10 / 100 / 1000 / 5000 concurrent
sessions against an in-process :class:`~repro.service.ReleaseServer`
(real localhost TCP, worker pool on), drives every session with
chain-sampled fixes, and reports

* sustained steps/sec across the whole fleet,
* client-observed per-step latency p50/p99,
* the event loop's worst scheduling lag during the run (a direct
  starvation probe: offloaded steps should leave the loop responsive),
* the shared verdict-cache hit rate.

A second test sweeps the sharded backend (``--shards {0,2,4,8}``) at
the 1000-session point with micro-batching on, recording how served
throughput scales with shard processes over the single-process batched
path.

Results go to ``results/bench_service_load{,_sharded}.txt`` (human
tables) and ``results/bench_service_load{,_sharded}.json`` (the shared
machine-readable schema, uploaded as CI artifacts).
"""

import asyncio
import functools
import os
import time
import urllib.request

import numpy as np
import pytest

from repro.engine import SessionBuilder, SessionManager, ShardPool
from repro.experiments.report import format_table
from repro.experiments.scenarios import synthetic_scenario
from repro.lppm.planar_laplace import PlanarLaplaceMechanism
from repro.markov.simulate import sample_trajectory
from repro.scenario import (
    ChainSpec,
    EventSpec,
    GridSpec,
    MechanismSpec,
    ScenarioSpec,
)
from repro.service import AsyncServiceClient, ReleaseServer, ServerConfig

HORIZON = 12
#: (concurrent sessions, steps per session) -- quick mode
LOADS = ((10, 12), (100, 12), (1000, 4), (5000, 2))
#: full-size steps at paper scale
LOADS_PAPER = ((10, 12), (100, 12), (1000, 12), (5000, 6))
#: load points re-run with the micro-batching window enabled
BATCHED_LOADS = ((100, 12), (1000, 4))
BATCH_WINDOW_MS = 2.0
MAX_CONNECTIONS = 32
#: the shard sweep: 1000 concurrent sessions served by 0/2/4/8 shard
#: processes (0 = the PR 3 in-process batched path, the baseline).
#: Shard counts beyond the machine's cores are skipped -- they can only
#: measure oversubscription.
SHARD_SWEEP = (0, 2, 4, 8)
SHARDED_SESSIONS, SHARDED_STEPS = 1000, 4
#: the mixed-tenant point: 1000 sessions spread over K distinct specs
#: (--mixed-scenarios K) vs the same fleet on one spec.
MIXED_SESSIONS, MIXED_STEPS = 1000, 4
#: the cluster sweep: 1000 sessions over 1 / 2 localhost `repro worker`
#: TCP processes, against the 2-shard pipe-RPC pool as the baseline.
CLUSTER_SESSIONS, CLUSTER_STEPS = 1000, 4
CLUSTER_SWEEP = (1, 2)
#: the tracing A/B point: the 100-session load served with tracing +
#: /metrics exposition on (scraped mid-run) vs tracing compiled out.
TRACED_SESSIONS, TRACED_STEPS = 100, 12
#: span-derived latency breakdown reads this many recent spans.
SPAN_SAMPLE = 2000
#: families the mid-run scrape must find (the CI smoke greps the same).
SCRAPE_FAMILIES = (
    "repro_requests_total",
    "repro_step_latency_seconds_bucket",
    "repro_sessions_open",
    "repro_spans_total",
    "repro_event_loop_lag_seconds",
)


@pytest.fixture(scope="module")
def service_setting():
    scenario = synthetic_scenario(n_rows=6, n_cols=6, sigma=1.0, horizon=HORIZON)
    event = scenario.presence_event(0, 9, 4, 8)
    builder = (
        SessionBuilder()
        .with_grid(scenario.grid)
        .with_chain(scenario.chain)
        .protecting(event)
        .with_mechanism(PlanarLaplaceMechanism(scenario.grid, 0.5))
        .with_epsilon(0.4)
        .with_fixed_prior(scenario.initial)
        .with_horizon(HORIZON)
    )
    return scenario, builder


async def _loop_lag_probe(interval: float, out: dict):
    """Measure worst event-loop scheduling lag until cancelled."""
    loop = asyncio.get_running_loop()
    while True:
        before = loop.time()
        await asyncio.sleep(interval)
        lag = loop.time() - before - interval
        if lag > out["max_lag_s"]:
            out["max_lag_s"] = lag


def _scrape_metrics(port: int) -> str:
    """Blocking /metrics fetch; call via ``run_in_executor`` only."""
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}/metrics", timeout=30
    ) as response:
        return response.read().decode()


def _span_breakdown(spans: list[dict]) -> dict:
    """Mean/total milliseconds per span name (queue_wait vs solve vs rpc)."""
    sums: dict[str, float] = {}
    counts: dict[str, int] = {}
    for span in spans:
        sums[span["name"]] = sums.get(span["name"], 0.0) + span["ms"]
        counts[span["name"]] = counts.get(span["name"], 0) + 1
    return {
        name: {
            "count": counts[name],
            "mean_ms": round(sums[name] / counts[name], 4),
            "total_ms": round(sums[name], 3),
        }
        for name in sorted(sums)
    }


async def _drive_load(
    scenario,
    builder,
    n_sessions: int,
    n_steps: int,
    seed: int,
    batch_window_ms: float = 0.0,
    shards: int = 0,
    cluster_workers: int = 0,
    trace: bool = True,
    scrape: bool = False,
):
    """One load point: open, step concurrently, finish, drain.

    ``scrape=True`` additionally binds the observability listener on an
    ephemeral port, scrapes ``/metrics`` halfway through the run (off
    the loop thread, like a real Prometheus would), and attaches a
    span-derived latency breakdown (queue-wait vs solve vs rpc) read
    back through the ``stats`` op.
    """
    rng = np.random.default_rng(seed)
    trajectories = [
        sample_trajectory(
            scenario.chain, n_steps, initial=scenario.initial, rng=rng
        )
        for _ in range(n_sessions)
    ]
    worker_procs = []
    if cluster_workers > 0:
        from repro.cluster import ClusterBackend, spawn_local_worker

        addresses = []
        for _ in range(cluster_workers):
            process, address = spawn_local_worker(
                functools.partial(SessionManager, builder)
            )
            worker_procs.append(process)
            addresses.append(address)
        engine = ClusterBackend(addresses)
    elif shards > 0:
        engine = ShardPool(lambda: SessionManager(builder), shards)
    else:
        engine = SessionManager(builder)
    server = ReleaseServer(
        engine,
        config=ServerConfig(
            max_sessions=n_sessions + 8,
            max_resident=n_sessions + 8,
            batch_window_ms=batch_window_ms,
            trace=trace,
            metrics_port=0 if scrape else None,
        ),
    )
    await server.start()
    clients = [
        await AsyncServiceClient.connect("127.0.0.1", server.port)
        for _ in range(min(n_sessions, MAX_CONNECTIONS))
    ]
    by_session = [clients[i % len(clients)] for i in range(n_sessions)]

    lag = {"max_lag_s": 0.0}
    probe = asyncio.get_running_loop().create_task(_loop_lag_probe(0.02, lag))
    latencies: list[float] = []

    async def open_one(i: int):
        await by_session[i].open(f"u{i}", seed=seed + i)

    async def step_one(i: int, t: int):
        start = time.perf_counter()
        await by_session[i].step(f"u{i}", int(trajectories[i][t]))
        latencies.append(time.perf_counter() - start)

    await asyncio.gather(*[open_one(i) for i in range(n_sessions)])
    scraped = None
    wall_start = time.perf_counter()
    for t in range(n_steps):
        await asyncio.gather(*[step_one(i, t) for i in range(n_sessions)])
        if scrape and scraped is None and t >= n_steps // 2:
            # Scrape mid-run, while steps are still flowing, so the
            # exposition is exercised under load rather than at rest.
            scraped = await asyncio.get_running_loop().run_in_executor(
                None, _scrape_metrics, server.metrics_port
            )
    wall = time.perf_counter() - wall_start
    probe.cancel()

    stats = await clients[0].stats(spans=SPAN_SAMPLE if scrape else 0)
    await asyncio.gather(*[c.finish(f"u{i}") for i, c in enumerate(by_session)])
    for client in clients:
        await client.close()
    await server.drain()
    for process in worker_procs:
        process.terminate()
    for process in worker_procs:
        process.join(10)

    assert stats["sessions"]["open"] == n_sessions
    assert len(latencies) == n_sessions * n_steps
    samples = np.asarray(latencies)
    cache = stats["verdict_cache"]
    batching = stats.get("batching")
    mode = "batched" if batch_window_ms > 0 else "direct"
    if shards > 0:
        mode = f"sharded-{shards}"
    if cluster_workers > 0:
        mode = f"cluster-{cluster_workers}"
    extra = {}
    if scrape:
        for family in SCRAPE_FAMILIES:
            assert family in scraped, f"mid-run scrape missing {family}"
        extra["scraped_families"] = len(SCRAPE_FAMILIES)
        extra["span_breakdown"] = _span_breakdown(stats["spans"]["recent"])
        extra["spans_recorded"] = stats["tracing"]["count"]
    if not trace:
        assert stats["tracing"]["enabled"] is False
    return {
        **extra,
        "mode": mode,
        "shards": shards if cluster_workers == 0 else cluster_workers,
        "sessions": n_sessions,
        "steps": int(samples.size),
        "wall_s": round(wall, 4),
        "steps_per_s": round(samples.size / wall, 1),
        "p50_ms": round(float(np.percentile(samples, 50)) * 1e3, 3),
        "p99_ms": round(float(np.percentile(samples, 99)) * 1e3, 3),
        "max_loop_lag_ms": round(lag["max_lag_s"] * 1e3, 3),
        "cache_hit_rate": cache["hit_rate"] if cache else None,
        "mean_batch": batching["mean_batch"] if batching else None,
    }


def test_bench_service_load(service_setting, save_result, save_json, request):
    scenario, builder = service_setting
    loads = (
        LOADS_PAPER if request.config.getoption("--paper-scale") else LOADS
    )
    rows = []
    for n_sessions, n_steps in loads:
        rows.append(
            asyncio.run(
                _drive_load(scenario, builder, n_sessions, n_steps, seed=0)
            )
        )
    for n_sessions, n_steps in BATCHED_LOADS:
        rows.append(
            asyncio.run(
                _drive_load(
                    scenario,
                    builder,
                    n_sessions,
                    n_steps,
                    seed=0,
                    batch_window_ms=BATCH_WINDOW_MS,
                )
            )
        )

    # the acceptance bar: 1000+ concurrent sessions, loop never starved
    big = [row for row in rows if row["sessions"] >= 1000]
    assert big, "load points must include >= 1000 concurrent sessions"
    for row in big:
        assert row["steps_per_s"] > 0
        # "no starvation": the loop was schedulable well under a step's
        # p99 while thousands of sessions were in flight
        assert row["max_loop_lag_ms"] < 1000.0

    columns = [
        "mode", "shards", "sessions", "steps", "wall_s", "steps_per_s",
        "p50_ms", "p99_ms", "max_loop_lag_ms", "cache_hit_rate", "mean_batch",
    ]
    table = format_table(
        columns,
        [[row[c] for c in columns] for row in rows],
        title=(
            f"repro serve load (6x6 map, T={HORIZON}, 0.5-PLM, eps=0.4 "
            "fixed prior, worker pool, localhost TCP; batched = "
            f"--batch-window-ms {BATCH_WINDOW_MS})"
        ),
    )
    save_result("bench_service_load", table)
    save_json(
        "bench_service_load",
        params={
            "rows_cols": [6, 6],
            "horizon": HORIZON,
            "epsilon": 0.4,
            "alpha": 0.5,
            "prior_mode": "fixed",
            "connections_max": MAX_CONNECTIONS,
            "loads": [list(load) for load in loads],
            "batched_loads": [list(load) for load in BATCHED_LOADS],
            "batch_window_ms": BATCH_WINDOW_MS,
        },
        rows=rows,
    )


def test_bench_service_load_traced(service_setting, save_result, save_json):
    """The tracing A/B: full observability rig on vs tracing disabled.

    The traced point serves with span recording *and* the ``/metrics``
    listener bound, scrapes the exposition mid-run, and reads the
    span-derived breakdown (queue-wait vs solve vs serialize) back
    through the ``stats`` op -- observability measured under the same
    load it observes.  The untraced point (``--no-trace``, no listener)
    is the zero-cost claim: span recording guards every perf-counter
    read behind ``tracer.enabled``, so disabling it must cost nothing.
    The committed JSON records the real traced/untraced ratio (the ~2%
    band on a quiet machine); the assertion bound stays looser for
    noisy CI runners.
    """
    scenario, builder = service_setting
    traced = asyncio.run(
        _drive_load(
            scenario, builder, TRACED_SESSIONS, TRACED_STEPS, seed=0,
            trace=True, scrape=True,
        )
    )
    untraced = asyncio.run(
        _drive_load(
            scenario, builder, TRACED_SESSIONS, TRACED_STEPS, seed=0,
            trace=False,
        )
    )
    traced["mode"], untraced["mode"] = "traced+scraped", "untraced"
    rows = [traced, untraced]

    breakdown = traced["span_breakdown"]
    for name in ("queue_wait", "solve", "serialize", "request"):
        assert name in breakdown, f"span breakdown missing {name!r}"
        assert breakdown[name]["count"] > 0
    assert traced["spans_recorded"] > 0

    ratio = round(traced["steps_per_s"] / untraced["steps_per_s"], 3)
    assert ratio >= 0.8, (
        f"tracing + exposition cost {(1 - ratio) * 100:.1f}% throughput "
        f"({traced['steps_per_s']} vs {untraced['steps_per_s']} steps/s)"
    )

    columns = [
        "mode", "sessions", "steps", "wall_s", "steps_per_s",
        "p50_ms", "p99_ms", "max_loop_lag_ms",
    ]
    breakdown_lines = "\n".join(
        f"  {name:<12} n={row['count']:<6} mean={row['mean_ms']:>8.3f}ms"
        for name, row in breakdown.items()
    )
    comparison = (
        f"{TRACED_SESSIONS}-session throughput: traced+scraped "
        f"{traced['steps_per_s']} steps/s vs untraced "
        f"{untraced['steps_per_s']} steps/s ({ratio}x; target ~1.0 -- "
        "span recording is a few perf_counter reads per request)\n\n"
        f"span-derived latency breakdown (last {SPAN_SAMPLE} spans):\n"
        f"{breakdown_lines}"
    )
    table = format_table(
        columns,
        [[row[c] for c in columns] for row in rows],
        title=(
            f"repro serve tracing A/B (6x6 map, T={HORIZON}, "
            f"{TRACED_SESSIONS} sessions x {TRACED_STEPS} steps; traced = "
            "spans on + /metrics scraped mid-run, untraced = --no-trace)"
        ),
    )
    save_result("bench_service_load_traced", table + "\n\n" + comparison)
    save_json(
        "bench_service_load_traced",
        params={
            "rows_cols": [6, 6],
            "horizon": HORIZON,
            "epsilon": 0.4,
            "alpha": 0.5,
            "prior_mode": "fixed",
            "connections_max": MAX_CONNECTIONS,
            "sessions": TRACED_SESSIONS,
            "steps_per_session": TRACED_STEPS,
            "span_sample": SPAN_SAMPLE,
            "throughput_ratio_traced_vs_untraced": ratio,
            "span_breakdown": breakdown,
            "comparison": comparison,
        },
        rows=rows,
    )


def _tenant_spec(k: int) -> ScenarioSpec:
    """Tenant ``k``'s spec: the bench setting at a distinct epsilon.

    Epsilon steps of 0.01 keep solver work statistically identical
    across tenants while guaranteeing distinct digests, so the mixed
    point isolates the *interning* overhead (separate cores, ladders,
    caches) rather than workload differences.
    """
    return ScenarioSpec(
        grid=GridSpec(rows=6, cols=6),
        chain=ChainSpec.gaussian(sigma=1.0),
        events=(EventSpec.presence_range(0, 9, start=4, end=8),),
        mechanism=MechanismSpec("planar_laplace", {"alpha": 0.5}),
        epsilon=0.4 + 0.01 * k,
        horizon=HORIZON,
        prior_mode="fixed",
    )


async def _drive_mixed(n_sessions: int, n_steps: int, n_specs: int, seed: int):
    """One mixed-tenant load point: sessions round-robin over K specs."""
    specs = [_tenant_spec(k) for k in range(n_specs)]
    compiled = specs[0].compile()
    rng = np.random.default_rng(seed)
    trajectories = [
        sample_trajectory(
            compiled.chain, n_steps, initial=compiled.initial, rng=rng
        )
        for _ in range(n_sessions)
    ]
    server = ReleaseServer(
        SessionManager(specs[0]),
        config=ServerConfig(
            max_sessions=n_sessions + 8, max_resident=n_sessions + 8
        ),
        scenarios=specs,
    )
    await server.start()
    clients = [
        await AsyncServiceClient.connect("127.0.0.1", server.port)
        for _ in range(min(n_sessions, MAX_CONNECTIONS))
    ]
    by_session = [clients[i % len(clients)] for i in range(n_sessions)]
    spec_json = [spec.to_json() for spec in specs]
    latencies: list[float] = []

    async def open_one(i: int):
        await by_session[i].open(
            f"u{i}", seed=seed + i, scenario=spec_json[i % n_specs]
        )

    async def step_one(i: int, t: int):
        start = time.perf_counter()
        await by_session[i].step(f"u{i}", int(trajectories[i][t]))
        latencies.append(time.perf_counter() - start)

    await asyncio.gather(*[open_one(i) for i in range(n_sessions)])
    wall_start = time.perf_counter()
    for t in range(n_steps):
        await asyncio.gather(*[step_one(i, t) for i in range(n_sessions)])
    wall = time.perf_counter() - wall_start

    stats = await clients[0].stats()
    await asyncio.gather(*[c.finish(f"u{i}") for i, c in enumerate(by_session)])
    for client in clients:
        await client.close()
    await server.drain()

    counters = stats["scenarios"]["counters"]
    for k, spec in enumerate(specs):
        row = counters[spec.digest()]
        expected = len(range(k, n_sessions, n_specs))
        assert row["opened"] == expected, (k, row)
        assert row["steps"] == expected * n_steps, (k, row)
    samples = np.asarray(latencies)
    cache = stats["verdict_cache"]
    return {
        "mode": f"mixed-{n_specs}",
        "n_scenarios": n_specs,
        "sessions": n_sessions,
        "steps": int(samples.size),
        "wall_s": round(wall, 4),
        "steps_per_s": round(samples.size / wall, 1),
        "p50_ms": round(float(np.percentile(samples, 50)) * 1e3, 3),
        "p99_ms": round(float(np.percentile(samples, 99)) * 1e3, 3),
        "cache_hit_rate": cache["hit_rate"] if cache else None,
    }


def test_bench_service_load_mixed(save_result, save_json, request):
    """Mixed-tenant serving: K distinct specs across one 1000-session fleet.

    The baseline is the *same* fleet with every session on one spec
    (opened through the same inline-scenario path, so the comparison
    isolates multi-core interning, not protocol differences).  Interning
    shares models per digest, so K tenants should cost roughly K model
    builds and K separate verdict caches -- the committed JSON shows the
    throughput ratio staying near 1 (the ~10% band on a quiet machine);
    the assertion bound is looser to keep noisy CI runners green.
    """
    n_specs = int(request.config.getoption("--mixed-scenarios"))
    single = asyncio.run(_drive_mixed(MIXED_SESSIONS, MIXED_STEPS, 1, seed=0))
    mixed = asyncio.run(_drive_mixed(MIXED_SESSIONS, MIXED_STEPS, n_specs, seed=0))
    rows = [single, mixed]
    ratio = round(mixed["steps_per_s"] / single["steps_per_s"], 3)
    assert mixed["steps_per_s"] > 0
    assert ratio >= 0.5, (
        f"mixed-{n_specs} throughput collapsed to {ratio}x of single-scenario "
        f"({mixed['steps_per_s']} vs {single['steps_per_s']} steps/s)"
    )

    columns = [
        "mode", "n_scenarios", "sessions", "steps", "wall_s", "steps_per_s",
        "p50_ms", "p99_ms", "cache_hit_rate",
    ]
    comparison = (
        f"{MIXED_SESSIONS}-session throughput: single-scenario "
        f"{single['steps_per_s']} steps/s -> {n_specs} mixed scenarios "
        f"{mixed['steps_per_s']} steps/s ({ratio}x; interning shares models "
        "per digest, so the gap is per-scenario cache warm-up, not per-session cost)"
    )
    table = format_table(
        columns,
        [[row[c] for c in columns] for row in rows],
        title=(
            f"repro serve mixed scenarios (6x6 map, T={HORIZON}, 0.5-PLM, "
            f"eps=0.4+0.01k fixed prior, {MIXED_SESSIONS} sessions x "
            f"{MIXED_STEPS} steps, inline-scenario opens)"
        ),
    )
    save_result("bench_service_load_mixed", table + "\n\n" + comparison)
    save_json(
        "bench_service_load_mixed",
        params={
            "rows_cols": [6, 6],
            "horizon": HORIZON,
            "alpha": 0.5,
            "prior_mode": "fixed",
            "connections_max": MAX_CONNECTIONS,
            "sessions": MIXED_SESSIONS,
            "steps_per_session": MIXED_STEPS,
            "mixed_scenarios": n_specs,
            "throughput_ratio": ratio,
            "comparison": comparison,
        },
        rows=rows,
    )


def test_bench_service_load_sharded(service_setting, save_result, save_json):
    """The shard sweep: 1000 sessions at 0 / 2 / 4 / 8 shard processes.

    Every sharded point keeps the PR 3 micro-batching window on (that is
    the production configuration: one collection window's steps fan out
    as one RPC per shard and run on every shard in parallel), so the
    sweep isolates exactly what sharding adds over the single-process
    batched path.  On a >= 4-core runner the 4-shard point must sustain
    >= 2x the unsharded batched throughput; shard counts beyond the core
    count are skipped, not asserted.
    """
    scenario, builder = service_setting
    cores = os.cpu_count() or 1
    # Always run the 2-shard point (it exercises the RPC path even on a
    # small box); larger counts only where the cores exist to feed them.
    sweep = [n for n in SHARD_SWEEP if n <= max(cores, 2)]
    rows = []
    for shards in sweep:
        rows.append(
            asyncio.run(
                _drive_load(
                    scenario,
                    builder,
                    SHARDED_SESSIONS,
                    SHARDED_STEPS,
                    seed=0,
                    batch_window_ms=BATCH_WINDOW_MS,
                    shards=shards,
                )
            )
        )
    skipped = [n for n in SHARD_SWEEP if n not in sweep]
    if skipped:
        print(f"[skipped shard counts {skipped}: only {cores} cores]")

    by_shards = {row["shards"]: row["steps_per_s"] for row in rows}
    baseline = by_shards[0]
    # Cross-run comparison: the per-PR throughput trajectory at the
    # 1000-session point (seed's loop -> PR 3 batched -> sharded).
    sharded_points = {n: v for n, v in by_shards.items() if n > 0}
    best_shards = max(sharded_points, key=sharded_points.get)
    comparison = (
        f"1000-session throughput trajectory: PR 3 batched {baseline} steps/s"
        f" -> sharded (N={best_shards}) {by_shards[best_shards]} steps/s"
        f" ({by_shards[best_shards] / baseline:.2f}x) on {cores} cores"
        " [seed had no serving layer; its single-stream engine loop is"
        " benched in bench_engine_sessions.json]"
    )
    if cores >= 4 and 4 in by_shards:
        assert by_shards[4] >= 2.0 * baseline, (
            f"4 shards must sustain >= 2x the in-process batched path on a "
            f">= 4-core machine: {by_shards[4]} vs {baseline} steps/s"
        )

    columns = [
        "mode", "shards", "sessions", "steps", "wall_s", "steps_per_s",
        "p50_ms", "p99_ms", "max_loop_lag_ms", "cache_hit_rate", "mean_batch",
    ]
    table = format_table(
        columns,
        [[row[c] for c in columns] for row in rows],
        title=(
            f"repro serve shard sweep ({SHARDED_SESSIONS} sessions, "
            f"--batch-window-ms {BATCH_WINDOW_MS}, {cores} cores; "
            "shards=0 is the PR 3 single-process batched path)"
        ),
    )
    save_result("bench_service_load_sharded", table + "\n\n" + comparison)
    save_json(
        "bench_service_load_sharded",
        params={
            "rows_cols": [6, 6],
            "horizon": HORIZON,
            "epsilon": 0.4,
            "alpha": 0.5,
            "prior_mode": "fixed",
            "connections_max": MAX_CONNECTIONS,
            "sessions": SHARDED_SESSIONS,
            "steps_per_session": SHARDED_STEPS,
            "batch_window_ms": BATCH_WINDOW_MS,
            "shard_sweep": list(sweep),
            "cpu_count": cores,
            "comparison": comparison,
        },
        rows=rows,
    )


def test_bench_service_load_cluster(service_setting, save_result, save_json):
    """The cluster sweep: 1000 sessions over localhost TCP workers.

    The baseline is the 2-shard :class:`ShardPool` at the same load
    (pipe RPC, same typed codec), so the sweep isolates exactly what the
    TCP hop and the router's assignment map add over in-box sharding.
    On localhost the 2-worker cluster should hold >= 0.8x the 2-shard
    pool's throughput -- the wire format is identical and TCP loopback
    is cheap; the committed JSON records the real ratio while the
    assertion bound stays looser for noisy CI runners.
    """
    scenario, builder = service_setting
    cores = os.cpu_count() or 1
    rows = [
        asyncio.run(
            _drive_load(
                scenario,
                builder,
                CLUSTER_SESSIONS,
                CLUSTER_STEPS,
                seed=0,
                batch_window_ms=BATCH_WINDOW_MS,
                shards=2,
            )
        )
    ]
    for workers in CLUSTER_SWEEP:
        rows.append(
            asyncio.run(
                _drive_load(
                    scenario,
                    builder,
                    CLUSTER_SESSIONS,
                    CLUSTER_STEPS,
                    seed=0,
                    batch_window_ms=BATCH_WINDOW_MS,
                    cluster_workers=workers,
                )
            )
        )

    by_mode = {row["mode"]: row["steps_per_s"] for row in rows}
    baseline = by_mode["sharded-2"]
    ratio = round(by_mode["cluster-2"] / baseline, 3)
    comparison = (
        f"1000-session throughput: 2-shard pool {baseline} steps/s -> "
        f"2-worker TCP cluster {by_mode['cluster-2']} steps/s ({ratio}x), "
        f"1-worker cluster {by_mode['cluster-1']} steps/s, on {cores} cores "
        "(same typed codec on both; the delta is the TCP hop + router map; "
        "target >= 0.8x on a quiet machine)"
    )
    assert by_mode["cluster-1"] > 0 and by_mode["cluster-2"] > 0
    assert ratio >= 0.5, (
        f"TCP cluster throughput collapsed to {ratio}x of the 2-shard pool "
        f"({by_mode['cluster-2']} vs {baseline} steps/s)"
    )

    columns = [
        "mode", "shards", "sessions", "steps", "wall_s", "steps_per_s",
        "p50_ms", "p99_ms", "max_loop_lag_ms", "cache_hit_rate", "mean_batch",
    ]
    table = format_table(
        columns,
        [[row[c] for c in columns] for row in rows],
        title=(
            f"repro serve cluster sweep ({CLUSTER_SESSIONS} sessions, "
            f"--batch-window-ms {BATCH_WINDOW_MS}, {cores} cores; baseline "
            "= 2-shard pool, cluster-N = N localhost `repro worker` over TCP)"
        ),
    )
    save_result("bench_service_load_cluster", table + "\n\n" + comparison)
    save_json(
        "bench_service_load_cluster",
        params={
            "rows_cols": [6, 6],
            "horizon": HORIZON,
            "epsilon": 0.4,
            "alpha": 0.5,
            "prior_mode": "fixed",
            "connections_max": MAX_CONNECTIONS,
            "sessions": CLUSTER_SESSIONS,
            "steps_per_session": CLUSTER_STEPS,
            "batch_window_ms": BATCH_WINDOW_MS,
            "cluster_sweep": list(CLUSTER_SWEEP),
            "throughput_ratio_vs_2_shards": ratio,
            "cpu_count": cores,
            "comparison": comparison,
        },
        rows=rows,
    )
