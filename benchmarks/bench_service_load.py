"""`repro serve` under load: sustained steps/sec and latency percentiles.

Not a paper figure: tracks the serving layer added over the session
engine.  A load generator opens 10 / 100 / 1000 / 5000 concurrent
sessions against an in-process :class:`~repro.service.ReleaseServer`
(real localhost TCP, worker pool on), drives every session with
chain-sampled fixes, and reports

* sustained steps/sec across the whole fleet,
* client-observed per-step latency p50/p99,
* the event loop's worst scheduling lag during the run (a direct
  starvation probe: offloaded steps should leave the loop responsive),
* the shared verdict-cache hit rate.

A second test sweeps the sharded backend (``--shards {0,2,4,8}``) at
the 1000-session point with micro-batching on, recording how served
throughput scales with shard processes over the single-process batched
path.

Results go to ``results/bench_service_load{,_sharded}.txt`` (human
tables) and ``results/bench_service_load{,_sharded}.json`` (the shared
machine-readable schema, uploaded as CI artifacts).
"""

import asyncio
import functools
import os
import time
import urllib.request

import numpy as np
import pytest

from repro.engine import SessionBuilder, SessionManager, ShardPool
from repro.errors import OverloadedError
from repro.experiments.report import format_table
from repro.experiments.scenarios import synthetic_scenario
from repro.lppm.planar_laplace import PlanarLaplaceMechanism
from repro.markov.simulate import sample_trajectory
from repro.scenario import (
    ChainSpec,
    EventSpec,
    GridSpec,
    MechanismSpec,
    ScenarioSpec,
)
from repro.service import AsyncServiceClient, ReleaseServer, ServerConfig

HORIZON = 12
#: (concurrent sessions, steps per session) -- quick mode
LOADS = ((10, 12), (100, 12), (1000, 4), (5000, 2))
#: full-size steps at paper scale
LOADS_PAPER = ((10, 12), (100, 12), (1000, 12), (5000, 6))
#: load points re-run with the micro-batching window enabled
BATCHED_LOADS = ((100, 12), (1000, 4))
BATCH_WINDOW_MS = 2.0
MAX_CONNECTIONS = 32
#: the shard sweep: 1000 concurrent sessions served by 0/2/4/8 shard
#: processes (0 = the PR 3 in-process batched path, the baseline).
#: Shard counts beyond the machine's cores are skipped -- they can only
#: measure oversubscription.
SHARD_SWEEP = (0, 2, 4, 8)
SHARDED_SESSIONS, SHARDED_STEPS = 1000, 4
#: the mixed-tenant point: 1000 sessions spread over K distinct specs
#: (--mixed-scenarios K) vs the same fleet on one spec.
MIXED_SESSIONS, MIXED_STEPS = 1000, 4
#: the cluster sweep: 1000 sessions over 1 / 2 localhost `repro worker`
#: TCP processes, against the 2-shard pipe-RPC pool as the baseline.
CLUSTER_SESSIONS, CLUSTER_STEPS = 1000, 4
CLUSTER_SWEEP = (1, 2)
#: the tracing A/B point: the 100-session load served with tracing +
#: /metrics exposition on (scraped mid-run) vs tracing compiled out.
TRACED_SESSIONS, TRACED_STEPS = 100, 12
#: span-derived latency breakdown reads this many recent spans.
SPAN_SAMPLE = 2000
#: families the mid-run scrape must find (the CI smoke greps the same).
SCRAPE_FAMILIES = (
    "repro_requests_total",
    "repro_step_latency_seconds_bucket",
    "repro_sessions_open",
    "repro_spans_total",
    "repro_event_loop_lag_seconds",
)
#: open-loop arrival mode: sessions the Poisson arrivals round-robin
#: over, seconds per offered-rate point, and the rate sweep as
#: multiples of the measured closed-loop capacity.
OPEN_LOOP_SESSIONS = 64
OPEN_LOOP_DURATION_S = 4.0
OPEN_LOOP_MULTIPLIERS = (0.5, 1.0, 2.0)
#: horizon for the open-loop setting: arrivals keep stepping the same
#: sessions, so each needs room for its share of the offered load.
OPEN_LOOP_HORIZON = 2048
#: per-request latency budget carried as ``deadline_ms`` (exercises
#: deadline shedding alongside the queue-delay trigger).
OPEN_LOOP_DEADLINE_MS = 500
#: aggressive shedder for the bench: overload must trigger within a
#: few hundred milliseconds of a sustained 2x offered rate.  The
#: target is sized so the standing queue never fully drains between
#: shed cycles (an empty queue is idle workers, i.e. lost goodput).
OPEN_LOOP_SHED_TARGET_MS = 50.0
OPEN_LOOP_SHED_INTERVAL_MS = 100.0


def _skip_unless_closed_loop(request) -> None:
    """``--open-loop`` narrows this module to the open-loop benchmark."""
    if request.config.getoption("--open-loop"):
        pytest.skip("--open-loop runs only the open-loop arrival benchmark")


@pytest.fixture(scope="module")
def service_setting():
    scenario = synthetic_scenario(n_rows=6, n_cols=6, sigma=1.0, horizon=HORIZON)
    event = scenario.presence_event(0, 9, 4, 8)
    builder = (
        SessionBuilder()
        .with_grid(scenario.grid)
        .with_chain(scenario.chain)
        .protecting(event)
        .with_mechanism(PlanarLaplaceMechanism(scenario.grid, 0.5))
        .with_epsilon(0.4)
        .with_fixed_prior(scenario.initial)
        .with_horizon(HORIZON)
    )
    return scenario, builder


async def _loop_lag_probe(interval: float, out: dict):
    """Measure worst event-loop scheduling lag until cancelled."""
    loop = asyncio.get_running_loop()
    while True:
        before = loop.time()
        await asyncio.sleep(interval)
        lag = loop.time() - before - interval
        if lag > out["max_lag_s"]:
            out["max_lag_s"] = lag


def _scrape_metrics(port: int) -> str:
    """Blocking /metrics fetch; call via ``run_in_executor`` only."""
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}/metrics", timeout=30
    ) as response:
        return response.read().decode()


def _span_breakdown(spans: list[dict]) -> dict:
    """Mean/total milliseconds per span name (queue_wait vs solve vs rpc)."""
    sums: dict[str, float] = {}
    counts: dict[str, int] = {}
    for span in spans:
        sums[span["name"]] = sums.get(span["name"], 0.0) + span["ms"]
        counts[span["name"]] = counts.get(span["name"], 0) + 1
    return {
        name: {
            "count": counts[name],
            "mean_ms": round(sums[name] / counts[name], 4),
            "total_ms": round(sums[name], 3),
        }
        for name in sorted(sums)
    }


async def _drive_load(
    scenario,
    builder,
    n_sessions: int,
    n_steps: int,
    seed: int,
    batch_window_ms: float = 0.0,
    shards: int = 0,
    cluster_workers: int = 0,
    trace: bool = True,
    scrape: bool = False,
):
    """One load point: open, step concurrently, finish, drain.

    ``scrape=True`` additionally binds the observability listener on an
    ephemeral port, scrapes ``/metrics`` halfway through the run (off
    the loop thread, like a real Prometheus would), and attaches a
    span-derived latency breakdown (queue-wait vs solve vs rpc) read
    back through the ``stats`` op.
    """
    rng = np.random.default_rng(seed)
    trajectories = [
        sample_trajectory(
            scenario.chain, n_steps, initial=scenario.initial, rng=rng
        )
        for _ in range(n_sessions)
    ]
    worker_procs = []
    if cluster_workers > 0:
        from repro.cluster import ClusterBackend, spawn_local_worker

        addresses = []
        for _ in range(cluster_workers):
            process, address = spawn_local_worker(
                functools.partial(SessionManager, builder)
            )
            worker_procs.append(process)
            addresses.append(address)
        engine = ClusterBackend(addresses)
    elif shards > 0:
        engine = ShardPool(lambda: SessionManager(builder), shards)
    else:
        engine = SessionManager(builder)
    server = ReleaseServer(
        engine,
        config=ServerConfig(
            max_sessions=n_sessions + 8,
            max_resident=n_sessions + 8,
            batch_window_ms=batch_window_ms,
            trace=trace,
            metrics_port=0 if scrape else None,
        ),
    )
    await server.start()
    clients = [
        await AsyncServiceClient.connect("127.0.0.1", server.port)
        for _ in range(min(n_sessions, MAX_CONNECTIONS))
    ]
    by_session = [clients[i % len(clients)] for i in range(n_sessions)]

    lag = {"max_lag_s": 0.0}
    probe = asyncio.get_running_loop().create_task(_loop_lag_probe(0.02, lag))
    latencies: list[float] = []

    async def open_one(i: int):
        await by_session[i].open(f"u{i}", seed=seed + i)

    async def step_one(i: int, t: int):
        start = time.perf_counter()
        await by_session[i].step(f"u{i}", int(trajectories[i][t]))
        latencies.append(time.perf_counter() - start)

    await asyncio.gather(*[open_one(i) for i in range(n_sessions)])
    scraped = None
    wall_start = time.perf_counter()
    for t in range(n_steps):
        await asyncio.gather(*[step_one(i, t) for i in range(n_sessions)])
        if scrape and scraped is None and t >= n_steps // 2:
            # Scrape mid-run, while steps are still flowing, so the
            # exposition is exercised under load rather than at rest.
            scraped = await asyncio.get_running_loop().run_in_executor(
                None, _scrape_metrics, server.metrics_port
            )
    wall = time.perf_counter() - wall_start
    probe.cancel()

    stats = await clients[0].stats(spans=SPAN_SAMPLE if scrape else 0)
    await asyncio.gather(*[c.finish(f"u{i}") for i, c in enumerate(by_session)])
    for client in clients:
        await client.close()
    await server.drain()
    for process in worker_procs:
        process.terminate()
    for process in worker_procs:
        process.join(10)

    assert stats["sessions"]["open"] == n_sessions
    assert len(latencies) == n_sessions * n_steps
    samples = np.asarray(latencies)
    cache = stats["verdict_cache"]
    batching = stats.get("batching")
    mode = "batched" if batch_window_ms > 0 else "direct"
    if shards > 0:
        mode = f"sharded-{shards}"
    if cluster_workers > 0:
        mode = f"cluster-{cluster_workers}"
    extra = {}
    if scrape:
        for family in SCRAPE_FAMILIES:
            assert family in scraped, f"mid-run scrape missing {family}"
        extra["scraped_families"] = len(SCRAPE_FAMILIES)
        extra["span_breakdown"] = _span_breakdown(stats["spans"]["recent"])
        extra["spans_recorded"] = stats["tracing"]["count"]
    if not trace:
        assert stats["tracing"]["enabled"] is False
    return {
        **extra,
        "mode": mode,
        "shards": shards if cluster_workers == 0 else cluster_workers,
        "sessions": n_sessions,
        "steps": int(samples.size),
        "wall_s": round(wall, 4),
        "steps_per_s": round(samples.size / wall, 1),
        "p50_ms": round(float(np.percentile(samples, 50)) * 1e3, 3),
        "p99_ms": round(float(np.percentile(samples, 99)) * 1e3, 3),
        "max_loop_lag_ms": round(lag["max_lag_s"] * 1e3, 3),
        "cache_hit_rate": cache["hit_rate"] if cache else None,
        "mean_batch": batching["mean_batch"] if batching else None,
    }


def test_bench_service_load(service_setting, save_result, save_json, request):
    _skip_unless_closed_loop(request)
    scenario, builder = service_setting
    loads = (
        LOADS_PAPER if request.config.getoption("--paper-scale") else LOADS
    )
    rows = []
    for n_sessions, n_steps in loads:
        rows.append(
            asyncio.run(
                _drive_load(scenario, builder, n_sessions, n_steps, seed=0)
            )
        )
    for n_sessions, n_steps in BATCHED_LOADS:
        rows.append(
            asyncio.run(
                _drive_load(
                    scenario,
                    builder,
                    n_sessions,
                    n_steps,
                    seed=0,
                    batch_window_ms=BATCH_WINDOW_MS,
                )
            )
        )

    # the acceptance bar: 1000+ concurrent sessions, loop never starved
    big = [row for row in rows if row["sessions"] >= 1000]
    assert big, "load points must include >= 1000 concurrent sessions"
    for row in big:
        assert row["steps_per_s"] > 0
        # "no starvation": the loop was schedulable well under a step's
        # p99 while thousands of sessions were in flight
        assert row["max_loop_lag_ms"] < 1000.0

    columns = [
        "mode", "shards", "sessions", "steps", "wall_s", "steps_per_s",
        "p50_ms", "p99_ms", "max_loop_lag_ms", "cache_hit_rate", "mean_batch",
    ]
    table = format_table(
        columns,
        [[row[c] for c in columns] for row in rows],
        title=(
            f"repro serve load (6x6 map, T={HORIZON}, 0.5-PLM, eps=0.4 "
            "fixed prior, worker pool, localhost TCP; batched = "
            f"--batch-window-ms {BATCH_WINDOW_MS})"
        ),
    )
    save_result("bench_service_load", table)
    save_json(
        "bench_service_load",
        params={
            "rows_cols": [6, 6],
            "horizon": HORIZON,
            "epsilon": 0.4,
            "alpha": 0.5,
            "prior_mode": "fixed",
            "connections_max": MAX_CONNECTIONS,
            "loads": [list(load) for load in loads],
            "batched_loads": [list(load) for load in BATCHED_LOADS],
            "batch_window_ms": BATCH_WINDOW_MS,
        },
        rows=rows,
    )


def test_bench_service_load_traced(service_setting, save_result, save_json, request):
    """The tracing A/B: full observability rig on vs tracing disabled.

    The traced point serves with span recording *and* the ``/metrics``
    listener bound, scrapes the exposition mid-run, and reads the
    span-derived breakdown (queue-wait vs solve vs serialize) back
    through the ``stats`` op -- observability measured under the same
    load it observes.  The untraced point (``--no-trace``, no listener)
    is the zero-cost claim: span recording guards every perf-counter
    read behind ``tracer.enabled``, so disabling it must cost nothing.
    The committed JSON records the real traced/untraced ratio (the ~2%
    band on a quiet machine); the assertion bound stays looser for
    noisy CI runners.
    """
    _skip_unless_closed_loop(request)
    scenario, builder = service_setting
    traced = asyncio.run(
        _drive_load(
            scenario, builder, TRACED_SESSIONS, TRACED_STEPS, seed=0,
            trace=True, scrape=True,
        )
    )
    untraced = asyncio.run(
        _drive_load(
            scenario, builder, TRACED_SESSIONS, TRACED_STEPS, seed=0,
            trace=False,
        )
    )
    traced["mode"], untraced["mode"] = "traced+scraped", "untraced"
    rows = [traced, untraced]

    breakdown = traced["span_breakdown"]
    for name in ("queue_wait", "solve", "serialize", "request"):
        assert name in breakdown, f"span breakdown missing {name!r}"
        assert breakdown[name]["count"] > 0
    assert traced["spans_recorded"] > 0

    ratio = round(traced["steps_per_s"] / untraced["steps_per_s"], 3)
    assert ratio >= 0.8, (
        f"tracing + exposition cost {(1 - ratio) * 100:.1f}% throughput "
        f"({traced['steps_per_s']} vs {untraced['steps_per_s']} steps/s)"
    )

    columns = [
        "mode", "sessions", "steps", "wall_s", "steps_per_s",
        "p50_ms", "p99_ms", "max_loop_lag_ms",
    ]
    breakdown_lines = "\n".join(
        f"  {name:<12} n={row['count']:<6} mean={row['mean_ms']:>8.3f}ms"
        for name, row in breakdown.items()
    )
    comparison = (
        f"{TRACED_SESSIONS}-session throughput: traced+scraped "
        f"{traced['steps_per_s']} steps/s vs untraced "
        f"{untraced['steps_per_s']} steps/s ({ratio}x; target ~1.0 -- "
        "span recording is a few perf_counter reads per request)\n\n"
        f"span-derived latency breakdown (last {SPAN_SAMPLE} spans):\n"
        f"{breakdown_lines}"
    )
    table = format_table(
        columns,
        [[row[c] for c in columns] for row in rows],
        title=(
            f"repro serve tracing A/B (6x6 map, T={HORIZON}, "
            f"{TRACED_SESSIONS} sessions x {TRACED_STEPS} steps; traced = "
            "spans on + /metrics scraped mid-run, untraced = --no-trace)"
        ),
    )
    save_result("bench_service_load_traced", table + "\n\n" + comparison)
    save_json(
        "bench_service_load_traced",
        params={
            "rows_cols": [6, 6],
            "horizon": HORIZON,
            "epsilon": 0.4,
            "alpha": 0.5,
            "prior_mode": "fixed",
            "connections_max": MAX_CONNECTIONS,
            "sessions": TRACED_SESSIONS,
            "steps_per_session": TRACED_STEPS,
            "span_sample": SPAN_SAMPLE,
            "throughput_ratio_traced_vs_untraced": ratio,
            "span_breakdown": breakdown,
            "comparison": comparison,
        },
        rows=rows,
    )


def _tenant_spec(k: int) -> ScenarioSpec:
    """Tenant ``k``'s spec: the bench setting at a distinct epsilon.

    Epsilon steps of 0.01 keep solver work statistically identical
    across tenants while guaranteeing distinct digests, so the mixed
    point isolates the *interning* overhead (separate cores, ladders,
    caches) rather than workload differences.
    """
    return ScenarioSpec(
        grid=GridSpec(rows=6, cols=6),
        chain=ChainSpec.gaussian(sigma=1.0),
        events=(EventSpec.presence_range(0, 9, start=4, end=8),),
        mechanism=MechanismSpec("planar_laplace", {"alpha": 0.5}),
        epsilon=0.4 + 0.01 * k,
        horizon=HORIZON,
        prior_mode="fixed",
    )


async def _drive_mixed(n_sessions: int, n_steps: int, n_specs: int, seed: int):
    """One mixed-tenant load point: sessions round-robin over K specs."""
    specs = [_tenant_spec(k) for k in range(n_specs)]
    compiled = specs[0].compile()
    rng = np.random.default_rng(seed)
    trajectories = [
        sample_trajectory(
            compiled.chain, n_steps, initial=compiled.initial, rng=rng
        )
        for _ in range(n_sessions)
    ]
    server = ReleaseServer(
        SessionManager(specs[0]),
        config=ServerConfig(
            max_sessions=n_sessions + 8, max_resident=n_sessions + 8
        ),
        scenarios=specs,
    )
    await server.start()
    clients = [
        await AsyncServiceClient.connect("127.0.0.1", server.port)
        for _ in range(min(n_sessions, MAX_CONNECTIONS))
    ]
    by_session = [clients[i % len(clients)] for i in range(n_sessions)]
    spec_json = [spec.to_json() for spec in specs]
    latencies: list[float] = []

    async def open_one(i: int):
        await by_session[i].open(
            f"u{i}", seed=seed + i, scenario=spec_json[i % n_specs]
        )

    async def step_one(i: int, t: int):
        start = time.perf_counter()
        await by_session[i].step(f"u{i}", int(trajectories[i][t]))
        latencies.append(time.perf_counter() - start)

    await asyncio.gather(*[open_one(i) for i in range(n_sessions)])
    wall_start = time.perf_counter()
    for t in range(n_steps):
        await asyncio.gather(*[step_one(i, t) for i in range(n_sessions)])
    wall = time.perf_counter() - wall_start

    stats = await clients[0].stats()
    await asyncio.gather(*[c.finish(f"u{i}") for i, c in enumerate(by_session)])
    for client in clients:
        await client.close()
    await server.drain()

    counters = stats["scenarios"]["counters"]
    for k, spec in enumerate(specs):
        row = counters[spec.digest()]
        expected = len(range(k, n_sessions, n_specs))
        assert row["opened"] == expected, (k, row)
        assert row["steps"] == expected * n_steps, (k, row)
    samples = np.asarray(latencies)
    cache = stats["verdict_cache"]
    return {
        "mode": f"mixed-{n_specs}",
        "n_scenarios": n_specs,
        "sessions": n_sessions,
        "steps": int(samples.size),
        "wall_s": round(wall, 4),
        "steps_per_s": round(samples.size / wall, 1),
        "p50_ms": round(float(np.percentile(samples, 50)) * 1e3, 3),
        "p99_ms": round(float(np.percentile(samples, 99)) * 1e3, 3),
        "cache_hit_rate": cache["hit_rate"] if cache else None,
    }


def test_bench_service_load_mixed(save_result, save_json, request):
    """Mixed-tenant serving: K distinct specs across one 1000-session fleet.

    The baseline is the *same* fleet with every session on one spec
    (opened through the same inline-scenario path, so the comparison
    isolates multi-core interning, not protocol differences).  Interning
    shares models per digest, so K tenants should cost roughly K model
    builds and K separate verdict caches -- the committed JSON shows the
    throughput ratio staying near 1 (the ~10% band on a quiet machine);
    the assertion bound is looser to keep noisy CI runners green.
    """
    _skip_unless_closed_loop(request)
    n_specs = int(request.config.getoption("--mixed-scenarios"))
    single = asyncio.run(_drive_mixed(MIXED_SESSIONS, MIXED_STEPS, 1, seed=0))
    mixed = asyncio.run(_drive_mixed(MIXED_SESSIONS, MIXED_STEPS, n_specs, seed=0))
    rows = [single, mixed]
    ratio = round(mixed["steps_per_s"] / single["steps_per_s"], 3)
    assert mixed["steps_per_s"] > 0
    assert ratio >= 0.5, (
        f"mixed-{n_specs} throughput collapsed to {ratio}x of single-scenario "
        f"({mixed['steps_per_s']} vs {single['steps_per_s']} steps/s)"
    )

    columns = [
        "mode", "n_scenarios", "sessions", "steps", "wall_s", "steps_per_s",
        "p50_ms", "p99_ms", "cache_hit_rate",
    ]
    comparison = (
        f"{MIXED_SESSIONS}-session throughput: single-scenario "
        f"{single['steps_per_s']} steps/s -> {n_specs} mixed scenarios "
        f"{mixed['steps_per_s']} steps/s ({ratio}x; interning shares models "
        "per digest, so the gap is per-scenario cache warm-up, not per-session cost)"
    )
    table = format_table(
        columns,
        [[row[c] for c in columns] for row in rows],
        title=(
            f"repro serve mixed scenarios (6x6 map, T={HORIZON}, 0.5-PLM, "
            f"eps=0.4+0.01k fixed prior, {MIXED_SESSIONS} sessions x "
            f"{MIXED_STEPS} steps, inline-scenario opens)"
        ),
    )
    save_result("bench_service_load_mixed", table + "\n\n" + comparison)
    save_json(
        "bench_service_load_mixed",
        params={
            "rows_cols": [6, 6],
            "horizon": HORIZON,
            "alpha": 0.5,
            "prior_mode": "fixed",
            "connections_max": MAX_CONNECTIONS,
            "sessions": MIXED_SESSIONS,
            "steps_per_session": MIXED_STEPS,
            "mixed_scenarios": n_specs,
            "throughput_ratio": ratio,
            "comparison": comparison,
        },
        rows=rows,
    )


def test_bench_service_load_sharded(service_setting, save_result, save_json, request):
    """The shard sweep: 1000 sessions at 0 / 2 / 4 / 8 shard processes.

    Every sharded point keeps the PR 3 micro-batching window on (that is
    the production configuration: one collection window's steps fan out
    as one RPC per shard and run on every shard in parallel), so the
    sweep isolates exactly what sharding adds over the single-process
    batched path.  On a >= 4-core runner the 4-shard point must sustain
    >= 2x the unsharded batched throughput; shard counts beyond the core
    count are skipped, not asserted.
    """
    _skip_unless_closed_loop(request)
    scenario, builder = service_setting
    cores = os.cpu_count() or 1
    # Always run the 2-shard point (it exercises the RPC path even on a
    # small box); larger counts only where the cores exist to feed them.
    sweep = [n for n in SHARD_SWEEP if n <= max(cores, 2)]
    rows = []
    for shards in sweep:
        rows.append(
            asyncio.run(
                _drive_load(
                    scenario,
                    builder,
                    SHARDED_SESSIONS,
                    SHARDED_STEPS,
                    seed=0,
                    batch_window_ms=BATCH_WINDOW_MS,
                    shards=shards,
                )
            )
        )
    skipped = [n for n in SHARD_SWEEP if n not in sweep]
    if skipped:
        print(f"[skipped shard counts {skipped}: only {cores} cores]")

    by_shards = {row["shards"]: row["steps_per_s"] for row in rows}
    baseline = by_shards[0]
    # Cross-run comparison: the per-PR throughput trajectory at the
    # 1000-session point (seed's loop -> PR 3 batched -> sharded).
    sharded_points = {n: v for n, v in by_shards.items() if n > 0}
    best_shards = max(sharded_points, key=sharded_points.get)
    comparison = (
        f"1000-session throughput trajectory: PR 3 batched {baseline} steps/s"
        f" -> sharded (N={best_shards}) {by_shards[best_shards]} steps/s"
        f" ({by_shards[best_shards] / baseline:.2f}x) on {cores} cores"
        " [seed had no serving layer; its single-stream engine loop is"
        " benched in bench_engine_sessions.json]"
    )
    if cores >= 4 and 4 in by_shards:
        assert by_shards[4] >= 2.0 * baseline, (
            f"4 shards must sustain >= 2x the in-process batched path on a "
            f">= 4-core machine: {by_shards[4]} vs {baseline} steps/s"
        )

    columns = [
        "mode", "shards", "sessions", "steps", "wall_s", "steps_per_s",
        "p50_ms", "p99_ms", "max_loop_lag_ms", "cache_hit_rate", "mean_batch",
    ]
    table = format_table(
        columns,
        [[row[c] for c in columns] for row in rows],
        title=(
            f"repro serve shard sweep ({SHARDED_SESSIONS} sessions, "
            f"--batch-window-ms {BATCH_WINDOW_MS}, {cores} cores; "
            "shards=0 is the PR 3 single-process batched path)"
        ),
    )
    save_result("bench_service_load_sharded", table + "\n\n" + comparison)
    save_json(
        "bench_service_load_sharded",
        params={
            "rows_cols": [6, 6],
            "horizon": HORIZON,
            "epsilon": 0.4,
            "alpha": 0.5,
            "prior_mode": "fixed",
            "connections_max": MAX_CONNECTIONS,
            "sessions": SHARDED_SESSIONS,
            "steps_per_session": SHARDED_STEPS,
            "batch_window_ms": BATCH_WINDOW_MS,
            "shard_sweep": list(sweep),
            "cpu_count": cores,
            "comparison": comparison,
        },
        rows=rows,
    )


def test_bench_service_load_cluster(service_setting, save_result, save_json, request):
    """The cluster sweep: 1000 sessions over localhost TCP workers.

    The baseline is the 2-shard :class:`ShardPool` at the same load
    (pipe RPC, same typed codec), so the sweep isolates exactly what the
    TCP hop and the router's assignment map add over in-box sharding.
    On localhost the 2-worker cluster should hold >= 0.8x the 2-shard
    pool's throughput -- the wire format is identical and TCP loopback
    is cheap; the committed JSON records the real ratio while the
    assertion bound stays looser for noisy CI runners.
    """
    _skip_unless_closed_loop(request)
    scenario, builder = service_setting
    cores = os.cpu_count() or 1
    rows = [
        asyncio.run(
            _drive_load(
                scenario,
                builder,
                CLUSTER_SESSIONS,
                CLUSTER_STEPS,
                seed=0,
                batch_window_ms=BATCH_WINDOW_MS,
                shards=2,
            )
        )
    ]
    for workers in CLUSTER_SWEEP:
        rows.append(
            asyncio.run(
                _drive_load(
                    scenario,
                    builder,
                    CLUSTER_SESSIONS,
                    CLUSTER_STEPS,
                    seed=0,
                    batch_window_ms=BATCH_WINDOW_MS,
                    cluster_workers=workers,
                )
            )
        )

    by_mode = {row["mode"]: row["steps_per_s"] for row in rows}
    baseline = by_mode["sharded-2"]
    ratio = round(by_mode["cluster-2"] / baseline, 3)
    comparison = (
        f"1000-session throughput: 2-shard pool {baseline} steps/s -> "
        f"2-worker TCP cluster {by_mode['cluster-2']} steps/s ({ratio}x), "
        f"1-worker cluster {by_mode['cluster-1']} steps/s, on {cores} cores "
        "(same typed codec on both; the delta is the TCP hop + router map; "
        "target >= 0.8x on a quiet machine)"
    )
    assert by_mode["cluster-1"] > 0 and by_mode["cluster-2"] > 0
    assert ratio >= 0.5, (
        f"TCP cluster throughput collapsed to {ratio}x of the 2-shard pool "
        f"({by_mode['cluster-2']} vs {baseline} steps/s)"
    )

    columns = [
        "mode", "shards", "sessions", "steps", "wall_s", "steps_per_s",
        "p50_ms", "p99_ms", "max_loop_lag_ms", "cache_hit_rate", "mean_batch",
    ]
    table = format_table(
        columns,
        [[row[c] for c in columns] for row in rows],
        title=(
            f"repro serve cluster sweep ({CLUSTER_SESSIONS} sessions, "
            f"--batch-window-ms {BATCH_WINDOW_MS}, {cores} cores; baseline "
            "= 2-shard pool, cluster-N = N localhost `repro worker` over TCP)"
        ),
    )
    save_result("bench_service_load_cluster", table + "\n\n" + comparison)
    save_json(
        "bench_service_load_cluster",
        params={
            "rows_cols": [6, 6],
            "horizon": HORIZON,
            "epsilon": 0.4,
            "alpha": 0.5,
            "prior_mode": "fixed",
            "connections_max": MAX_CONNECTIONS,
            "sessions": CLUSTER_SESSIONS,
            "steps_per_session": CLUSTER_STEPS,
            "batch_window_ms": BATCH_WINDOW_MS,
            "cluster_sweep": list(CLUSTER_SWEEP),
            "throughput_ratio_vs_2_shards": ratio,
            "cpu_count": cores,
            "comparison": comparison,
        },
        rows=rows,
    )


async def _measure_capacity(builder, workers: int, seed: int) -> float:
    """Closed-loop steps/s of the open-loop server configuration.

    Eight concurrent steppers per session lock would serialize, so the
    probe hammers every session round-robin from a handful of
    connections -- the executor stays saturated, which is exactly the
    capacity the open-loop sweep offers multiples of.
    """
    server = ReleaseServer(
        SessionManager(builder, cache_size=0),
        config=ServerConfig(
            max_sessions=OPEN_LOOP_SESSIONS + 8,
            max_resident=OPEN_LOOP_SESSIONS + 8,
            workers=workers,
            trace=False,
            shed_target_ms=0.0,  # capacity probe: never shed
        ),
    )
    await server.start()
    clients = [
        await AsyncServiceClient.connect("127.0.0.1", server.port)
        for _ in range(8)
    ]
    rng = np.random.default_rng(seed)
    cells = rng.integers(0, 36, size=OPEN_LOOP_SESSIONS * 64)
    await asyncio.gather(
        *[
            clients[i % len(clients)].open(f"c{i}", seed=seed + i)
            for i in range(OPEN_LOOP_SESSIONS)
        ]
    )
    done = 0
    wall_start = time.perf_counter()

    async def hammer(worker_index: int):
        nonlocal done
        t = worker_index
        while time.perf_counter() - wall_start < 1.5:
            i = t % OPEN_LOOP_SESSIONS
            await clients[i % len(clients)].step(
                f"c{i}", int(cells[t % cells.size])
            )
            done += 1
            t += 16
    await asyncio.gather(*[hammer(k) for k in range(16)])
    wall = time.perf_counter() - wall_start
    for client in clients:
        await client.close()
    await server.drain()
    return done / wall


async def _drive_open_loop(
    builder, rate_hz: float, duration_s: float, workers: int, seed: int
):
    """One open-loop point: Poisson arrivals at ``rate_hz`` steps/s.

    Unlike the closed-loop driver, arrivals do not wait for replies:
    each fires as its exponential gap elapses, so offered load is
    independent of service time and a saturated server faces a growing
    queue -- the regime load shedding exists for.  Every request
    carries ``deadline_ms``; sheds (typed ``overloaded`` errors) are
    counted, never retried, so goodput is accepted work only.
    """
    server = ReleaseServer(
        SessionManager(builder, cache_size=0),
        config=ServerConfig(
            max_sessions=OPEN_LOOP_SESSIONS + 8,
            max_resident=OPEN_LOOP_SESSIONS + 8,
            max_pending_per_connection=512,
            workers=workers,
            trace=False,
            shed_target_ms=OPEN_LOOP_SHED_TARGET_MS,
            shed_interval_ms=OPEN_LOOP_SHED_INTERVAL_MS,
        ),
    )
    await server.start()
    clients = [
        await AsyncServiceClient.connect("127.0.0.1", server.port)
        for _ in range(16)
    ]
    await asyncio.gather(
        *[
            clients[i % len(clients)].open(f"u{i}", seed=seed + i)
            for i in range(OPEN_LOOP_SESSIONS)
        ]
    )
    rng = np.random.default_rng(seed)
    n_offered = int(rate_hz * duration_s)
    gaps = rng.exponential(1.0 / rate_hz, size=n_offered)
    cells = rng.integers(0, 36, size=n_offered)
    accepted_lat: list[float] = []
    shed = 0
    other_errors = 0
    tasks = []

    async def arrival(k: int):
        nonlocal shed, other_errors
        i = k % OPEN_LOOP_SESSIONS
        start = time.perf_counter()
        try:
            await clients[i % len(clients)].step(
                f"u{i}", int(cells[k]), deadline_ms=OPEN_LOOP_DEADLINE_MS
            )
        except OverloadedError:
            shed += 1
            return
        except Exception:
            other_errors += 1
            return
        accepted_lat.append(time.perf_counter() - start)

    wall_start = time.perf_counter()
    next_at = wall_start
    for k in range(n_offered):
        next_at += gaps[k]
        delay = next_at - time.perf_counter()
        if delay > 0:
            await asyncio.sleep(delay)
        tasks.append(asyncio.get_running_loop().create_task(arrival(k)))
    await asyncio.gather(*tasks)
    wall = time.perf_counter() - wall_start

    stats = await clients[0].stats()
    for client in clients:
        await client.close()
    await server.drain()

    samples = np.asarray(accepted_lat) if accepted_lat else np.zeros(1)
    accepted = len(accepted_lat)
    return {
        "offered_per_s": round(n_offered / wall, 1),
        "offered": n_offered,
        "accepted": accepted,
        "shed": shed,
        "errors": other_errors,
        "shed_rate": round(shed / n_offered, 4) if n_offered else 0.0,
        "goodput_per_s": round(accepted / wall, 1),
        "p50_ms": round(float(np.percentile(samples, 50)) * 1e3, 3),
        "p95_ms": round(float(np.percentile(samples, 95)) * 1e3, 3),
        "p99_ms": round(float(np.percentile(samples, 99)) * 1e3, 3),
        "shed_by_trigger": dict(stats.get("shed", {})),
        "overload_level_final": stats["shedding"]["overload_level"],
    }


def test_bench_service_load_open_loop(save_result, save_json, request):
    """Open-loop overload: offered load vs goodput under load shedding.

    Closed-loop drivers (everything above) can never overload a server:
    each in-flight request gates the next, so offered load self-limits
    at capacity.  This point generates *Poisson arrivals* at fixed
    offered rates -- 0.5x / 1x / 2x the measured closed-loop capacity
    (or exactly ``--rate R``) -- against a deliberately small server
    (2 worker threads, aggressive shedder) and records the graceful
    degradation story: past capacity the server sheds with the typed
    retryable ``overloaded`` code instead of queueing without bound,
    goodput holds near capacity, and the latency percentiles of
    *accepted* requests stay bounded by the shedder's delay target
    rather than growing with the backlog.
    """
    # A 14x14 map with the verdict cache *disabled*: every step pays a
    # real calibration solve (milliseconds), so capacity is bound by
    # the worker pool -- the resource the shedder governs -- and the 2x
    # offered rate stays low enough that protocol handling on the
    # shared event loop is nowhere near its own limit.  (On a small
    # map the pool is so fast that 2x capacity saturates the *loop*,
    # whose congestion admission control cannot relieve.)
    scenario = synthetic_scenario(
        n_rows=14, n_cols=14, sigma=1.0, horizon=OPEN_LOOP_HORIZON
    )
    builder = (
        SessionBuilder()
        .with_grid(scenario.grid)
        .with_chain(scenario.chain)
        .protecting(scenario.presence_event(0, 13, 4, 8))
        .with_mechanism(PlanarLaplaceMechanism(scenario.grid, 0.5))
        .with_epsilon(0.4)
        .with_fixed_prior(scenario.initial)
        .with_horizon(OPEN_LOOP_HORIZON)
    )
    workers = 2
    capacity = asyncio.run(_measure_capacity(builder, workers, seed=0))
    rate_option = request.config.getoption("--rate")
    if rate_option is not None:
        points = [("fixed", float(rate_option))]
    else:
        points = [
            (f"{m}x", m * capacity) for m in OPEN_LOOP_MULTIPLIERS
        ]
    rows = []
    for label, rate_hz in points:
        row = asyncio.run(
            _drive_open_loop(
                builder, rate_hz, OPEN_LOOP_DURATION_S, workers, seed=1
            )
        )
        rows.append({"offered_x": label, **row})

    by_label = {row["offered_x"]: row for row in rows}
    if rate_option is None:
        under, over = by_label["0.5x"], by_label["2.0x"]
        # Under capacity nothing sheds and latency sits at service time.
        assert under["shed_rate"] < 0.01, under
        # Past capacity the server must shed (typed, counted) ...
        assert over["shed"] > 0, over
        assert sum(over["shed_by_trigger"].values()) >= over["shed"]
        # ... while goodput holds near capacity (the graceful part; the
        # committed JSON records the real ratio, the bound absorbs CI
        # noise) and accepted-request p99 stays bounded by the shedder,
        # far below the seconds a 2x backlog would otherwise grow to.
        assert over["goodput_per_s"] >= 0.6 * capacity, (
            over["goodput_per_s"],
            capacity,
        )
        assert over["p99_ms"] < 20 * OPEN_LOOP_DEADLINE_MS, over["p99_ms"]

    columns = [
        "offered_x", "offered_per_s", "goodput_per_s", "shed_rate",
        "accepted", "shed", "errors", "p50_ms", "p95_ms", "p99_ms",
    ]
    table = format_table(
        columns,
        [[row[c] for c in columns] for row in rows],
        title=(
            f"repro serve open-loop arrivals (14x14 map, {OPEN_LOOP_SESSIONS} "
            f"sessions, {workers} worker threads, capacity "
            f"{capacity:.0f} steps/s; shed target "
            f"{OPEN_LOOP_SHED_TARGET_MS}ms over "
            f"{OPEN_LOOP_SHED_INTERVAL_MS}ms, deadline "
            f"{OPEN_LOOP_DEADLINE_MS}ms)"
        ),
    )
    save_result("bench_service_load_open_loop", table)
    save_json(
        "bench_service_load_open_loop",
        params={
            "rows_cols": [14, 14],
            "horizon": OPEN_LOOP_HORIZON,
            "epsilon": 0.4,
            "alpha": 0.5,
            "prior_mode": "fixed",
            "sessions": OPEN_LOOP_SESSIONS,
            "workers": workers,
            "duration_s": OPEN_LOOP_DURATION_S,
            "capacity_steps_per_s": round(capacity, 1),
            "multipliers": list(OPEN_LOOP_MULTIPLIERS),
            "deadline_ms": OPEN_LOOP_DEADLINE_MS,
            "shed_target_ms": OPEN_LOOP_SHED_TARGET_MS,
            "shed_interval_ms": OPEN_LOOP_SHED_INTERVAL_MS,
            "rate_override": rate_option,
        },
        rows=rows,
    )
