"""Stacked solver kernel: batched condition checks vs the scalar loop.

Not a paper figure: quantifies the batched verdict pipeline's bottom
layer (``solve_conditions_batch`` packing K rank-one conditions into one
blocked ``(K, rows, m)`` edge enumeration) against looping the scalar
``check_condition`` over the same conditions, and asserts the two are
*identical* -- statuses, best values and evaluation counts -- which is
the property the engine's bit-identical batched stepping rests on.

Three workload mixes per size:

* ``safe``     -- every condition needs the full vertex+edge sweep (the
  worst case for batching: element-bound, little call overhead to
  amortize);
* ``violated`` -- most conditions exit early at the vertex scan or the
  first edge blocks (the common calibration-loop case: per-call
  overhead dominates and batching shines);
* ``mixed``    -- half and half.

Results go to ``results/bench_solver_batch.{txt,json}``.
"""

import time

import numpy as np
import pytest

from repro.core import native
from repro.core.qp import (
    SolverOptions,
    check_condition,
    solve_conditions_batch,
)
from repro.core.theorem import RankOneCondition
from repro.experiments.report import format_table

SIZES = (64, 256)
BATCH = 64

#: Kernel-comparison sweep (native vs NumPy): sizes x coefficient
#: structures.  "banded" conditions concentrate their non-zeros in a
#: narrow window, the shape Theorem IV.1 produces on lazy-walk and
#: trace-trained chains.
SWEEP_SIZES = (16, 64, 256)
STRUCTURES = ("dense", "banded")
BAND_WIDTH = 5


def _conditions(rng, k, m, mix):
    conditions = []
    for index in range(k):
        safe = mix == "safe" or (mix == "mixed" and index % 2 == 0)
        shift = -4.0 if safe else 0.5
        conditions.append(
            RankOneCondition(
                u=rng.uniform(size=m),
                v=rng.normal(size=m),
                w=rng.normal(size=m) + shift,
            )
        )
    return conditions


def _time(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _banded_vector(rng, m, shift=0.0):
    vec = np.zeros(m)
    center = int(rng.integers(0, m))
    lo = max(0, center - BAND_WIDTH // 2)
    hi = min(m, lo + BAND_WIDTH)
    vec[lo:hi] = rng.normal(size=hi - lo) + shift
    return vec


def _sweep_conditions(rng, k, m, structure, mix):
    conditions = []
    for index in range(k):
        safe = mix == "safe" or (mix == "mixed" and index % 2 == 0)
        shift = -4.0 if safe else 0.5
        if structure == "dense":
            u = rng.uniform(size=m)
            v = rng.normal(size=m)
            w = rng.normal(size=m) + shift
        else:
            u = np.abs(_banded_vector(rng, m))
            v = _banded_vector(rng, m)
            w = _banded_vector(rng, m, shift=shift)
        conditions.append(RankOneCondition(u=u, v=v, w=w))
    return conditions


def _results_fingerprint(results):
    return [
        (r.status, repr(r.best_value), r.n_evaluations, r.exhausted)
        for r in results
    ]


@pytest.mark.parametrize("m", SIZES)
def test_batch_identical_to_scalar_loop(m):
    rng = np.random.default_rng(m)
    options = SolverOptions()
    for mix in ("safe", "violated", "mixed"):
        conditions = _conditions(rng, 24, m, mix)
        batch = solve_conditions_batch(conditions, options)
        for result, condition in zip(batch, conditions):
            scalar = check_condition(condition, options)
            assert result.status is scalar.status
            assert result.best_value == scalar.best_value
            assert result.n_evaluations == scalar.n_evaluations
            assert result.exhausted == scalar.exhausted
            np.testing.assert_array_equal(result.best_point, scalar.best_point)


def test_bench_solver_batch(save_result, save_json):
    options = SolverOptions()
    rows = []
    for m in SIZES:
        rng = np.random.default_rng(m)
        for mix in ("safe", "violated", "mixed"):
            conditions = _conditions(rng, BATCH, m, mix)

            def loop():
                return [check_condition(c, options) for c in conditions]

            def batch():
                return solve_conditions_batch(conditions, options)

            assert [r.status for r in loop()] == [r.status for r in batch()]
            t_loop = _time(loop)
            t_batch = _time(batch)
            rows.append(
                {
                    "m": m,
                    "mix": mix,
                    "k": BATCH,
                    "loop_ms": round(t_loop * 1e3, 2),
                    "batch_ms": round(t_batch * 1e3, 2),
                    "conditions_per_s_batch": round(BATCH / t_batch, 1),
                    "speedup": round(t_loop / t_batch, 2),
                }
            )

    columns = ["m", "mix", "k", "loop_ms", "batch_ms", "conditions_per_s_batch", "speedup"]
    table = format_table(
        columns,
        [[row[c] for c in columns] for row in rows],
        title="Stacked solver kernel: scalar loop vs solve_conditions_batch",
    )
    save_result("bench_solver_batch", table)
    save_json(
        "bench_solver_batch",
        params={"sizes": list(SIZES), "batch": BATCH, "mixes": ["safe", "violated", "mixed"]},
        rows=rows,
    )
    # Batching must never lose, and early-exit mixes must win clearly.
    for row in rows:
        assert row["speedup"] > 0.8, row
    assert max(row["speedup"] for row in rows) >= 1.5


def test_bench_solver_kernels(save_result, save_json):
    """Native vs NumPy kernel over the m x structure x mix sweep.

    The committed pre-PR NumPy baseline lives in
    ``results/bench_solver_batch_pre_pr_baseline.json``; the in-run
    ``numpy_ms`` column re-measures the same code path on the current
    machine, so ``speedup = numpy_ms / native_ms`` is the
    apples-to-apples number the >= 3x acceptance bar is asserted on.
    """
    available = native.native_available()
    rows = []
    for m in SWEEP_SIZES:
        for structure in STRUCTURES:
            for mix in ("safe", "violated"):
                rng = np.random.default_rng(100 * m + len(structure))
                conditions = _sweep_conditions(rng, BATCH, m, structure, mix)
                numpy_opts = SolverOptions(kernel="numpy")
                reference = solve_conditions_batch(conditions, numpy_opts)
                t_numpy = _time(
                    lambda: solve_conditions_batch(conditions, numpy_opts),
                    repeats=5,
                )
                row = {
                    "m": m,
                    "structure": structure,
                    "mix": mix,
                    "k": BATCH,
                    "numpy_ms": round(t_numpy * 1e3, 3),
                    "native_ms": None,
                    "speedup_native": None,
                }
                if available:
                    native_opts = SolverOptions(kernel="native")
                    # bit-identity gate before trusting any timing
                    assert _results_fingerprint(
                        solve_conditions_batch(conditions, native_opts)
                    ) == _results_fingerprint(reference)
                    t_native = _time(
                        lambda: solve_conditions_batch(conditions, native_opts),
                        repeats=5,
                    )
                    row["native_ms"] = round(t_native * 1e3, 3)
                    row["speedup_native"] = round(t_numpy / t_native, 2)
                rows.append(row)

    columns = [
        "m", "structure", "mix", "k", "numpy_ms", "native_ms", "speedup_native",
    ]
    table = format_table(
        columns,
        [[row[c] for c in columns] for row in rows],
        title=(
            "Solver kernels: NumPy vs native "
            f"(native {'available' if available else 'UNAVAILABLE'})"
        ),
    )
    save_result("bench_solver_kernels", table)
    save_json(
        "bench_solver_kernels",
        params={
            "sizes": list(SWEEP_SIZES),
            "structures": list(STRUCTURES),
            "batch": BATCH,
            "native_available": available,
        },
        rows=rows,
    )
    if available:
        # Acceptance bar: >= 3x on at least one swept shape; full-sweep
        # batches must never regress behind the NumPy kernel.
        speedups = [row["speedup_native"] for row in rows]
        assert max(speedups) >= 3.0, rows
        for row in rows:
            if row["mix"] == "safe":
                assert row["speedup_native"] >= 0.9, row
