"""Stacked solver kernel: batched condition checks vs the scalar loop.

Not a paper figure: quantifies the batched verdict pipeline's bottom
layer (``solve_conditions_batch`` packing K rank-one conditions into one
blocked ``(K, rows, m)`` edge enumeration) against looping the scalar
``check_condition`` over the same conditions, and asserts the two are
*identical* -- statuses, best values and evaluation counts -- which is
the property the engine's bit-identical batched stepping rests on.

Three workload mixes per size:

* ``safe``     -- every condition needs the full vertex+edge sweep (the
  worst case for batching: element-bound, little call overhead to
  amortize);
* ``violated`` -- most conditions exit early at the vertex scan or the
  first edge blocks (the common calibration-loop case: per-call
  overhead dominates and batching shines);
* ``mixed``    -- half and half.

Results go to ``results/bench_solver_batch.{txt,json}``.
"""

import time

import numpy as np
import pytest

from repro.core.qp import (
    SolverOptions,
    check_condition,
    solve_conditions_batch,
)
from repro.core.theorem import RankOneCondition
from repro.experiments.report import format_table

SIZES = (64, 256)
BATCH = 64


def _conditions(rng, k, m, mix):
    conditions = []
    for index in range(k):
        safe = mix == "safe" or (mix == "mixed" and index % 2 == 0)
        shift = -4.0 if safe else 0.5
        conditions.append(
            RankOneCondition(
                u=rng.uniform(size=m),
                v=rng.normal(size=m),
                w=rng.normal(size=m) + shift,
            )
        )
    return conditions


def _time(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


@pytest.mark.parametrize("m", SIZES)
def test_batch_identical_to_scalar_loop(m):
    rng = np.random.default_rng(m)
    options = SolverOptions()
    for mix in ("safe", "violated", "mixed"):
        conditions = _conditions(rng, 24, m, mix)
        batch = solve_conditions_batch(conditions, options)
        for result, condition in zip(batch, conditions):
            scalar = check_condition(condition, options)
            assert result.status is scalar.status
            assert result.best_value == scalar.best_value
            assert result.n_evaluations == scalar.n_evaluations
            assert result.exhausted == scalar.exhausted
            np.testing.assert_array_equal(result.best_point, scalar.best_point)


def test_bench_solver_batch(save_result, save_json):
    options = SolverOptions()
    rows = []
    for m in SIZES:
        rng = np.random.default_rng(m)
        for mix in ("safe", "violated", "mixed"):
            conditions = _conditions(rng, BATCH, m, mix)

            def loop():
                return [check_condition(c, options) for c in conditions]

            def batch():
                return solve_conditions_batch(conditions, options)

            assert [r.status for r in loop()] == [r.status for r in batch()]
            t_loop = _time(loop)
            t_batch = _time(batch)
            rows.append(
                {
                    "m": m,
                    "mix": mix,
                    "k": BATCH,
                    "loop_ms": round(t_loop * 1e3, 2),
                    "batch_ms": round(t_batch * 1e3, 2),
                    "conditions_per_s_batch": round(BATCH / t_batch, 1),
                    "speedup": round(t_loop / t_batch, 2),
                }
            )

    columns = ["m", "mix", "k", "loop_ms", "batch_ms", "conditions_per_s_batch", "speedup"]
    table = format_table(
        columns,
        [[row[c] for c in columns] for row in rows],
        title="Stacked solver kernel: scalar loop vs solve_conditions_batch",
    )
    save_result("bench_solver_batch", table)
    save_json(
        "bench_solver_batch",
        params={"sizes": list(SIZES), "batch": BATCH, "mixes": ["safe", "violated", "mixed"]},
        rows=rows,
    )
    # Batching must never lose, and early-exit mixes must win clearly.
    for row in rows:
        assert row["speedup"] > 0.8, row
    assert max(row["speedup"] for row in rows) >= 1.5
