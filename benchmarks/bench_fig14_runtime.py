"""Fig. 14: runtime of PriSTE's two-world method vs the naive baseline.

Left panel: event length 5..15 at width 5 -- the baseline (Appendix B
enumeration) is exponential in length, PriSTE linear.  Right panel: event
width 5..15 at length 5 -- baseline exponential, PriSTE polynomial.

The baseline is cut off once it exceeds a wall-clock guard (the paper's
log-scale plot tops out around 10^4 s); axis ranges here default to the
small end so a quick pass stays under a minute.
"""

import math

from repro.experiments.runners import run_runtime_scaling
from repro.experiments.scenarios import synthetic_scenario


def _scenario():
    # Width sweeps need enough cells; runtime depends on event size, not
    # the map, so a compact 8x8 map keeps the baseline affordable.
    return synthetic_scenario(n_rows=8, n_cols=8, sigma=1.0, horizon=20)


def test_fig14_runtime_vs_length(save_result, benchmark, request):
    values = (5, 7, 9, 11) if request.config.getoption("--paper-scale") else (3, 5, 7)
    scenario = _scenario()

    def run():
        return run_runtime_scaling(
            scenario, axis="length", values=values, fixed=5, n_events=3, seed=14
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("fig14_runtime_vs_event_length", result.to_text())

    # Exponential vs linear: the speedup grows with event length.
    speedups = [
        b / p
        for b, p in zip(result.baseline_s, result.priste_s)
        if not math.isnan(b)
    ]
    assert speedups[-1] > speedups[0]
    # PriSTE's runtime stays near-linear: the largest/smallest ratio is
    # far below the baseline's blowup.
    priste_growth = result.priste_s[-1] / max(result.priste_s[0], 1e-9)
    baseline_growth = result.baseline_s[-1] / max(result.baseline_s[0], 1e-9)
    assert baseline_growth > priste_growth


def test_fig14_runtime_vs_width(save_result, benchmark, request):
    values = (5, 7, 9, 11) if request.config.getoption("--paper-scale") else (3, 5, 7)
    scenario = _scenario()

    def run():
        return run_runtime_scaling(
            scenario, axis="width", values=values, fixed=5, n_events=3, seed=14
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("fig14_runtime_vs_event_width", result.to_text())

    speedups = [
        b / p
        for b, p in zip(result.baseline_s, result.priste_s)
        if not math.isnan(b)
    ]
    assert speedups[-1] > speedups[0]
