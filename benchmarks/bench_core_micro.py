"""Microbenchmarks of the core primitives.

Not a paper figure: these time the building blocks so regressions in the
hot paths (lifted propagation, per-candidate b/c, the exact QP solve, PLM
construction) are visible in isolation.  All on the paper-scale 20x20
map (m = 400).
"""

import numpy as np
import pytest

from repro.core.joint import EventQuantifier
from repro.core.qp import SolverOptions, maximize_rank_one_simplex
from repro.core.theorem import RankOneCondition, privacy_conditions
from repro.core.two_world import TwoWorldModel
from repro.lppm.planar_laplace import PlanarLaplaceMechanism


@pytest.fixture(scope="module")
def setting(paper_synthetic):
    scenario = paper_synthetic
    event = scenario.presence_event(0, 9, 4, 8)
    model = TwoWorldModel(scenario.chain, event, horizon=50)
    lppm = PlanarLaplaceMechanism(scenario.grid, 0.5)
    return scenario, event, model, lppm


def test_bench_prior_vector(setting, benchmark):
    _, event, _, _ = setting

    def build():
        scenario_model = TwoWorldModel(
            setting[0].chain, event, horizon=50
        )
        return scenario_model.prior_vector()

    a = benchmark(build)
    assert a.shape == (400,)
    assert np.all((a >= 0) & (a <= 1 + 1e-12))


def test_bench_quantifier_step(setting, benchmark):
    """One prepare + candidate + commit cycle at m = 400."""
    scenario, event, model, lppm = setting
    column = lppm.emission_column(17)
    state = {"q": EventQuantifier(model), "t": 0}

    def step():
        if state["t"] >= 50:
            state["q"] = EventQuantifier(model)
            state["t"] = 0
        state["t"] += 1
        t = state["t"]
        state["q"].prepare(t)
        b, c = state["q"].candidate_bc(t, column)
        state["q"].commit(t, column)
        return b, c

    b, c = benchmark(step)
    assert b.shape == (400,)


def test_bench_candidate_only(setting, benchmark):
    """The halving loop's retry cost: candidate_bc without commit."""
    scenario, event, model, lppm = setting
    quantifier = EventQuantifier(model)
    quantifier.prepare(1)
    column = lppm.emission_column(3)
    result = benchmark(lambda: quantifier.candidate_bc(1, column))
    assert result[0].shape == (400,)


def test_bench_exact_qp_solve(setting, benchmark):
    """Full exact simplex solve of one Eq. (15) condition at m = 400."""
    scenario, event, model, lppm = setting
    quantifier = EventQuantifier(model)
    quantifier.prepare(1)
    b, c = quantifier.candidate_bc(1, lppm.emission_column(3))
    a = quantifier.a_vector()
    forward, _ = privacy_conditions(a, b, c, epsilon=0.5)
    options = SolverOptions()
    result = benchmark(lambda: maximize_rank_one_simplex(forward, options))
    assert result.best_value is not None


def test_bench_plm_emission_build(setting, benchmark):
    scenario, _, _, _ = setting
    matrix = benchmark(
        lambda: PlanarLaplaceMechanism(scenario.grid, 1.0).emission_matrix()
    )
    assert matrix.shape == (400, 400)


def test_bench_qp_scaling_in_m(benchmark):
    """The solver's O(m^2) edge enumeration at m = 1000."""
    rng = np.random.default_rng(0)
    cond = RankOneCondition(
        u=rng.uniform(size=1000), v=rng.normal(size=1000), w=rng.normal(size=1000)
    )
    options = SolverOptions()
    result = benchmark(lambda: maximize_rank_one_simplex(cond, options))
    assert result.n_evaluations >= 1000


def test_bench_batch_dispatch_small_m(benchmark):
    """Repeated small-m batched solves: the per-call dispatch floor.

    K = 64 conditions at m = 16 finish their sweeps in microseconds, so
    this isolates what `solve_conditions_batch` pays per call -- packing
    into the thread-local coefficient scratch plus one kernel dispatch
    -- the cost the engine's `_check_all` / lockstep stepping pays every
    round on small maps.
    """
    from repro.core.qp import solve_conditions_batch

    rng = np.random.default_rng(4)
    conditions = [
        RankOneCondition(
            u=rng.uniform(size=16),
            v=rng.normal(size=16),
            w=rng.normal(size=16) - 4.0,
        )
        for _ in range(64)
    ]
    options = SolverOptions()
    results = benchmark(lambda: solve_conditions_batch(conditions, options))
    assert len(results) == 64
