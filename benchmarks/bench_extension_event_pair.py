"""Extension experiment: event-pair indistinguishability vs budget.

The paper's future-work definition (Section II-C): indistinguishability
between an event and an *alternative* event rather than its negation.
For a "clinic visit vs mall visit" pair we sweep the PLM budget and
report the realized fixed-prior log-ratio and the arbitrary-prior
verdict tallies, showing the same calibration story the negation-based
definition has in Figs. 7-8: stricter mechanisms cross from VIOLATED
through UNKNOWN to certified SAFE.
"""

import numpy as np

from repro.core.event_pair import EventPairAnalyzer, PairStatus
from repro.events.events import PresenceEvent
from repro.experiments.report import format_table
from repro.experiments.scenarios import synthetic_scenario
from repro.geo.regions import Region
from repro.lppm.planar_laplace import PlanarLaplaceMechanism

HORIZON = 12
EPSILON = 0.5
ALPHAS = (2.0, 0.5, 0.1, 0.02)


def test_extension_event_pair_sweep(save_result, benchmark):
    scenario = synthetic_scenario(n_rows=8, n_cols=8, sigma=1.5, horizon=HORIZON)
    grid, chain, pi = scenario.grid, scenario.chain, scenario.initial
    clinic = PresenceEvent(Region.rectangle(grid, (0, 1), (0, 1)), start=5, end=8)
    mall = PresenceEvent(Region.rectangle(grid, (6, 7), (6, 7)), start=5, end=8)
    analyzer = EventPairAnalyzer(chain, clinic, mall, horizon=HORIZON)

    def sweep():
        rng = np.random.default_rng(40)
        truth = scenario.sample_trajectory(rng)
        rows = []
        for alpha in ALPHAS:
            lppm = PlanarLaplaceMechanism(grid, alpha)
            released = [lppm.perturb(u, rng) for u in truth]
            columns = np.stack([lppm.emission_column(o) for o in released])
            ratios = analyzer.ratio_fixed_prior(pi, columns)
            worst = max(abs(float(np.log(r))) for r in ratios)
            checks = analyzer.check_arbitrary_prior(columns, epsilon=EPSILON, seed=0)
            tally = {status: 0 for status in PairStatus}
            for check in checks:
                tally[check.status] += 1
            rows.append(
                {
                    "alpha": alpha,
                    "max |log ratio| (fixed pi)": round(worst, 3),
                    "safe": tally[PairStatus.SAFE],
                    "violated": tally[PairStatus.VIOLATED],
                    "unknown": tally[PairStatus.UNKNOWN],
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    headers = list(rows[0].keys())
    save_result(
        "extension_event_pair_sweep",
        format_table(
            headers,
            [[row[h] for h in headers] for row in rows],
            title=(
                "Extension: clinic-vs-mall event-pair indistinguishability "
                f"(eps={EPSILON})"
            ),
        ),
    )

    by_alpha = {row["alpha"]: row for row in rows}
    # Loose mechanisms leak which event happened; strict ones are
    # certified safe at every prefix.
    assert by_alpha[2.0]["violated"] > 0
    assert by_alpha[0.02]["safe"] == HORIZON
    # The fixed-prior loss shrinks monotonically with alpha.
    losses = [by_alpha[a]["max |log ratio| (fixed pi)"] for a in ALPHAS]
    assert losses == sorted(losses, reverse=True)
